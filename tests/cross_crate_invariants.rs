//! Cross-crate invariants, randomized over random graphs: the static
//! model (partition crate), the comm plan (core crate), and the runtime
//! counters (comm crate) must all tell the same story about communication.
//!
//! Cases come from the seeded `pargcn_util::qc` runner; a failure prints
//! its case seed for replay via `PARGCN_QC_SEED=<seed>`.

use pargcn_core::dist::train_full_batch;
use pargcn_core::{CommPlan, GcnConfig};
use pargcn_graph::Graph;
use pargcn_matrix::Dense;
use pargcn_partition::{metrics, Hypergraph, Partition};
use pargcn_util::qc;
use pargcn_util::rng::{Rng, SeedableRng, StdRng};

/// Random undirected graph with 10–39 vertices and n–4n candidate edges.
fn random_graph(rng: &mut StdRng) -> Graph {
    let n = rng.gen_range(10usize..40);
    let edges = qc::sized_vec_of(rng, n..4 * n, |r| {
        (r.gen_range(0..n as u32), r.gen_range(0..n as u32))
    });
    Graph::from_edges(n, false, &edges)
}

/// Hypergraph cut == comm-plan volume == metrics ground truth, and the
/// per-rank decompositions agree, for any graph and any partition.
#[test]
fn three_views_of_volume_agree() {
    qc::run(24, |rng| {
        let g = random_graph(rng);
        let seed = rng.gen_range(0u64..1000);
        let p = rng.gen_range(2usize..6);
        let a = g.normalized_adjacency();
        let part = pargcn_partition::random::partition(g.n(), p.min(g.n()), seed);
        let h = Hypergraph::column_net_model(&a);
        let plan = CommPlan::build(&a, &part);
        let stats = metrics::spmm_comm_stats(&a, &part);
        assert_eq!(h.connectivity_cut(&part), stats.total_rows);
        assert_eq!(plan.total_volume_rows(), stats.total_rows);
        assert_eq!(plan.total_messages(), stats.total_messages);
        for rp in &plan.ranks {
            assert_eq!(rp.sent_rows(), stats.sent_rows[rp.rank]);
        }
    });
}

/// Distributed and serial training agree on arbitrary random graphs and
/// partitions (not just the structured ones the curated tests use).
#[test]
fn dist_equals_serial_on_random_instances() {
    qc::run(24, |rng| {
        let g = random_graph(rng);
        if g.num_edges() == 0 {
            return;
        }
        let seed = rng.gen_range(0u64..1000);
        let n = g.n();
        let part = pargcn_partition::random::partition(n, 3.min(n), seed);
        let config = GcnConfig::two_layer(4, 5, 2);
        let mut hrng = StdRng::seed_from_u64(seed);
        let h0 = Dense::random(n, 4, &mut hrng);
        let labels: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
        let mask = vec![true; n];

        let out = train_full_batch(&g, &h0, &labels, &mask, &part, &config, 2, 11);
        let mut serial = pargcn_core::serial::SerialTrainer::new(&g, config, 11);
        let mut serial_losses = Vec::new();
        for _ in 0..2 {
            serial_losses.push(serial.train_epoch(&h0, &labels, &mask));
        }
        for (s, d) in serial_losses.iter().zip(&out.losses) {
            assert!((s - d).abs() < 1e-3 * (1.0 + s.abs()), "loss {s} vs {d}");
        }
        assert!(out.predictions.approx_eq(&serial.predict(&h0), 5e-3));
    });
}

/// The measured runtime traffic equals the plan prediction for any
/// random instance (bytes and messages, exactly).
#[test]
fn runtime_counters_equal_plan() {
    qc::run(24, |rng| {
        let g = random_graph(rng);
        let seed = rng.gen_range(0u64..1000);
        let n = g.n();
        let part = pargcn_partition::random::partition(n, 3.min(n), seed);
        let a = g.normalized_adjacency();
        let plan = CommPlan::build(&a, &part);
        let config = GcnConfig::two_layer(4, 5, 2);
        let mut hrng = StdRng::seed_from_u64(seed);
        let h0 = Dense::random(n, 4, &mut hrng);
        let labels: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
        let mask = vec![true; n];
        let out = train_full_batch(&g, &h0, &labels, &mask, &part, &config, 1, 1);

        let vol = plan.total_volume_rows();
        // One epoch: fwd layers carry widths 4 and 5; bwd layers carry 5 and
        // 2; the final prediction pass repeats the forward sweep.
        let expected = vol * 4 * (4 + 5) + vol * 4 * (5 + 2) + vol * 4 * (4 + 5);
        let measured: u64 = out.counters.iter().map(|c| c.sent_bytes).sum();
        assert_eq!(measured, expected);
    });
}

/// Partition validity under all methods for random structured inputs.
#[test]
fn partitions_valid_on_random_graphs() {
    qc::run(24, |rng| {
        let g = random_graph(rng);
        let seed = rng.gen_range(0u64..100);
        let a = g.normalized_adjacency();
        for method in [pargcn_partition::Method::Gp, pargcn_partition::Method::Hp] {
            let p = 3.min(g.n());
            let part = pargcn_partition::partition_rows(&g, &a, method, p, 0.2, seed);
            assert_eq!(part.n(), g.n());
            assert_eq!(part.p(), p);
        }
    });
}

/// Deterministic sanity outside the randomized runner: a fixed partition
/// of a fixed graph yields bit-identical training outcomes across
/// repeated runs (thread scheduling must not leak into results).
#[test]
fn repeated_runs_are_bitwise_identical() {
    let g = Graph::from_edges(
        30,
        false,
        &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (6, 7)],
    );
    let part = Partition::new((0..30).map(|i| (i % 3) as u32).collect(), 3);
    let config = GcnConfig::two_layer(3, 4, 2);
    let mut rng = StdRng::seed_from_u64(2);
    let h0 = Dense::random(30, 3, &mut rng);
    let labels: Vec<u32> = (0..30).map(|i| (i % 2) as u32).collect();
    let mask = vec![true; 30];

    let a = train_full_batch(&g, &h0, &labels, &mask, &part, &config, 3, 5);
    let b = train_full_batch(&g, &h0, &labels, &mask, &part, &config, 3, 5);
    assert_eq!(a.losses, b.losses);
    assert_eq!(a.predictions.data(), b.predictions.data());
    for (wa, wb) in a.params.weights.iter().zip(&b.params.weights) {
        assert_eq!(wa.data(), wb.data());
    }
}
