//! End-to-end integration: the full pipeline — dataset generation →
//! normalization → partitioning → comm-plan → distributed training →
//! prediction — across crates, exercised the way a downstream user would.

use pargcn_core::dist::train_full_batch;
use pargcn_core::loss::accuracy;
use pargcn_core::serial::SerialTrainer;
use pargcn_core::GcnConfig;
use pargcn_graph::{Dataset, Scale};
use pargcn_matrix::Dense;
use pargcn_partition::{partition_rows, Method, DEFAULT_EPSILON};
use pargcn_util::rng::SeedableRng;
use pargcn_util::rng::StdRng;

/// Every Table 2 dataset family survives the full pipeline at tiny scale.
#[test]
fn full_pipeline_on_every_dataset_family() {
    for ds in Dataset::TABLE2 {
        let scale = Scale(ds.default_scale().0.saturating_mul(32));
        let data = ds.generate(scale, 3);
        let a = data.graph.normalized_adjacency();
        let part = partition_rows(&data.graph, &a, Method::Hp, 4, DEFAULT_EPSILON, 1);

        let mut rng = StdRng::seed_from_u64(5);
        let h0 = Dense::random(data.graph.n(), 8, &mut rng);
        let labels: Vec<u32> = (0..data.graph.n()).map(|i| (i % 3) as u32).collect();
        let mask = vec![true; data.graph.n()];
        let config = GcnConfig::two_layer(8, 8, 3);

        let out = train_full_batch(&data.graph, &h0, &labels, &mask, &part, &config, 2, 7);
        assert_eq!(out.losses.len(), 2, "{}", ds.name());
        assert!(out.losses.iter().all(|l| l.is_finite()), "{}", ds.name());
        assert_eq!(out.predictions.rows(), data.graph.n(), "{}", ds.name());
    }
}

/// A labelled workload end to end: Cora-class data, HP partitioning,
/// distributed training, and a real accuracy bar.
#[test]
fn cora_end_to_end_learns() {
    let data = Dataset::Cora.generate(Scale(2), 11);
    let features = data.features.unwrap();
    let labels = data.labels.unwrap();
    let train_mask = data.train_mask.unwrap();
    let test_mask: Vec<bool> = train_mask.iter().map(|&m| !m).collect();
    let config = GcnConfig::two_layer(features.cols(), 16, 7);

    let a = data.graph.normalized_adjacency();
    let part = partition_rows(&data.graph, &a, Method::Hp, 6, DEFAULT_EPSILON, 2);
    let out = train_full_batch(
        &data.graph,
        &features,
        &labels,
        &train_mask,
        &part,
        &config,
        40,
        5,
    );
    let acc = accuracy(&out.predictions, &labels, &test_mask);
    assert!(
        acc > 0.55,
        "distributed GCN should learn the planted partition, got {acc}"
    );

    // And the serial oracle agrees.
    let mut serial = SerialTrainer::new(&data.graph, config, 5);
    for _ in 0..40 {
        serial.train_epoch(&features, &labels, &train_mask);
    }
    let serial_acc = accuracy(&serial.predict(&features), &labels, &test_mask);
    assert!(
        (acc - serial_acc).abs() < 0.03,
        "dist {acc} vs serial {serial_acc}"
    );
}

/// Losses must decrease under every partitioning method (training works no
/// matter how rows are distributed).
#[test]
fn training_converges_under_every_method() {
    let data = Dataset::ComAmazon.generate(Scale(128), 13);
    let a = data.graph.normalized_adjacency();
    let mut rng = StdRng::seed_from_u64(17);
    let n = data.graph.n();
    let h0 = Dense::random(n, 8, &mut rng);
    let labels: Vec<u32> = (0..n).map(|i| (i % 4) as u32).collect();
    let mask = vec![true; n];
    let config = GcnConfig::two_layer(8, 12, 4);

    for method in [Method::Rp, Method::Gp, Method::Hp] {
        let part = partition_rows(&data.graph, &a, method, 3, DEFAULT_EPSILON, 4);
        let out = train_full_batch(&data.graph, &h0, &labels, &mask, &part, &config, 15, 9);
        let first = out.losses[0];
        let last = *out.losses.last().unwrap();
        assert!(
            last < first,
            "{}: loss did not decrease ({first} → {last})",
            method.name()
        );
    }
}
