//! Scaling-shape smoke tests: cheap versions of the headline claims of
//! Figures 3–5, run on every `cargo test`, so a regression in partitioner
//! quality or the cost model shows up immediately.

use pargcn_comm::MachineProfile;
use pargcn_core::baselines::cagnet::{self, CagnetPlan};
use pargcn_core::metrics::simulate_epoch;
use pargcn_core::minibatch::expected_comm_volume;
use pargcn_core::{CommPlan, GcnConfig};
use pargcn_graph::{Dataset, Scale};
use pargcn_partition::stochastic::{sample_batches, Sampler};
use pargcn_partition::{metrics, partition_rows, Method, DEFAULT_EPSILON};

fn road() -> pargcn_graph::GraphData {
    Dataset::RoadNetCa.generate(Scale(128), 7)
}

/// Larger road instance for claims that need per-rank compute to dominate
/// message latency (the paper's regime).
fn road_big() -> pargcn_graph::GraphData {
    Dataset::RoadNetCa.generate(Scale(32), 7)
}

/// Fig. 3 shape: with HP, epoch time decreases as P grows (strong scaling).
#[test]
fn hp_strong_scaling_on_cpu() {
    let data = road();
    let a = data.graph.normalized_adjacency();
    let config = GcnConfig::two_layer(32, 32, 16);
    let profile = MachineProfile::cpu_cluster();
    let mut last = f64::INFINITY;
    for p in [8usize, 32, 128] {
        let part = partition_rows(&data.graph, &a, Method::Hp, p, DEFAULT_EPSILON, 1);
        let plan = CommPlan::build(&a, &part);
        let t = simulate_epoch(&plan, &plan, &config, &profile).total;
        assert!(
            t < last,
            "epoch time should fall with p: {t} !< {last} at p={p}"
        );
        last = t;
    }
}

/// Fig. 4a shape: the P2P algorithm's comm time falls with P while
/// CAGNET's rises, and CAGNET is slower at scale.
#[test]
fn p2p_comm_falls_cagnet_comm_rises() {
    let data = road_big();
    let a = data.graph.normalized_adjacency();
    let config = GcnConfig::two_layer(32, 32, 16);
    let profile = MachineProfile::cpu_cluster();

    // Compare partition-driven (point-to-point) communication only: the ΔW
    // allreduce grows as log p for every method identically and the paper
    // calls it negligible.
    let time_at = |p: usize| {
        let part = partition_rows(&data.graph, &a, Method::Hp, p, DEFAULT_EPSILON, 1);
        let plan = CommPlan::build(&a, &part);
        let mut p2p = simulate_epoch(&plan, &plan, &config, &profile);
        p2p.comm -= pargcn_core::metrics::collective_seconds(&config, &profile, p);
        let cplan = CagnetPlan::build(&a, &part);
        let mut cn = cagnet::simulate_epoch(&cplan, &cplan, &config, &profile);
        cn.comm -= pargcn_core::metrics::collective_seconds(&config, &profile, p);
        (p2p, cn)
    };
    let (p2p_small, cn_small) = time_at(8);
    let (p2p_big, cn_big) = time_at(64);
    assert!(
        p2p_big.comm <= p2p_small.comm * 1.5 + 1e-9,
        "P2P comm should not blow up with p: {} vs {}",
        p2p_small.comm,
        p2p_big.comm
    );
    assert!(
        cn_big.comm > cn_small.comm,
        "CAGNET comm should grow with p: {} vs {}",
        cn_small.comm,
        cn_big.comm
    );
    assert!(cn_big.total > p2p_big.total, "CAGNET should lose at scale");
}

/// Table 2 shape: HP cuts total volume well below RP on a road network.
#[test]
fn hp_beats_rp_on_volume() {
    let data = road();
    let a = data.graph.normalized_adjacency();
    let hp = partition_rows(&data.graph, &a, Method::Hp, 32, DEFAULT_EPSILON, 1);
    let rp = partition_rows(&data.graph, &a, Method::Rp, 32, DEFAULT_EPSILON, 1);
    let v_hp = metrics::spmm_comm_stats(&a, &hp).total_rows;
    let v_rp = metrics::spmm_comm_stats(&a, &rp).total_rows;
    assert!(
        (v_hp as f64) < 0.25 * v_rp as f64,
        "HP volume {v_hp} should be ≪ RP volume {v_rp} on a road network"
    );
}

/// Fig. 5 shape: the stochastic hypergraph model does not lose to HP on
/// held-out mini-batches (the objective it optimizes).
#[test]
fn shp_at_least_matches_hp_on_minibatch_volume() {
    let data = Dataset::ComAmazon.generate(Scale(64), 5);
    let n = data.graph.n();
    let a = data.graph.normalized_adjacency();
    let sampler = Sampler::UniformVertex { batch_size: n / 8 };
    let hp = partition_rows(&data.graph, &a, Method::Hp, 8, DEFAULT_EPSILON, 3);
    let shp = partition_rows(
        &data.graph,
        &a,
        Method::Shp {
            sampler,
            batches: 200,
        },
        8,
        DEFAULT_EPSILON,
        3,
    );
    let eval = sample_batches(&data.graph, sampler, 24, 4242);
    let (hp_vol, _) = expected_comm_volume(&data.graph, &eval, &hp);
    let (shp_vol, _) = expected_comm_volume(&data.graph, &eval, &shp);
    // SHP's estimate converges to (and then beats) HP as the number of
    // sampled batches grows (Eq. 14); 200 batches is what a debug-mode test
    // can afford and lands within ~15% of HP. The converged comparison
    // (400–800 batches, SHP ahead) is run by the fig5 bench and the
    // minibatch_shp example.
    assert!(
        (shp_vol as f64) < hp_vol as f64 * 1.20,
        "SHP {shp_vol} should be near HP {hp_vol} at 200 sampled batches"
    );
}

/// GPU-profile shape: scaling flattens on the NCCL-like machine (the paper's
/// "all tested algorithms demonstrated less scalability in GPUs").
#[test]
fn gpu_scaling_is_flatter_than_cpu() {
    let data = road();
    let a = data.graph.normalized_adjacency();
    let config = GcnConfig::two_layer(32, 32, 16);
    let speedup = |profile: &MachineProfile| {
        let t = |p: usize| {
            let part = partition_rows(&data.graph, &a, Method::Hp, p, DEFAULT_EPSILON, 1);
            let plan = CommPlan::build(&a, &part);
            simulate_epoch(&plan, &plan, &config, profile).total
        };
        t(4) / t(16)
    };
    let cpu_gain = speedup(&MachineProfile::cpu_cluster());
    let gpu_gain = speedup(&MachineProfile::gpu_cluster());
    assert!(
        gpu_gain < cpu_gain,
        "4→16 ranks should help less on GPUs: cpu {cpu_gain:.2}x vs gpu {gpu_gain:.2}x"
    );
}
