//! The [`Graph`] type: a directed or undirected graph stored as a CSR
//! adjacency pattern, with the degree statistics the experiments report.

use pargcn_matrix::{norm, Csr};

/// A graph with `n` vertices. Undirected graphs store both `(u,v)` and
/// `(v,u)` entries, matching how the paper counts edges in its Table 1
/// (e.g. Cora: 5278 undirected edges listed as 10556).
#[derive(Clone, Debug)]
pub struct Graph {
    adjacency: Csr,
    directed: bool,
}

/// Degree distribution summary, as printed by the `table1_datasets` harness.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    pub min: usize,
    pub max: usize,
    pub avg: f64,
    /// Ratio max/avg: a crude skew measure distinguishing road networks
    /// (≈1–3) from power-law social graphs (≫10).
    pub skew: f64,
}

impl Graph {
    /// Builds a graph from an edge list. Self loops and duplicate edges are
    /// dropped. For undirected graphs each input edge is mirrored.
    pub fn from_edges(n: usize, directed: bool, edges: &[(u32, u32)]) -> Self {
        let mut coo = Vec::with_capacity(if directed {
            edges.len()
        } else {
            edges.len() * 2
        });
        for &(u, v) in edges {
            if u == v {
                continue;
            }
            coo.push((u, v, 1.0));
            if !directed {
                coo.push((v, u, 1.0));
            }
        }
        // Deduplicate via pattern-only COO: from_coo sums duplicates, so
        // clamp values back to 1.0 afterwards.
        let mut adjacency = Csr::from_coo(n, n, coo);
        let ones = vec![1.0f32; adjacency.nnz()];
        adjacency = Csr::from_parts(
            n,
            n,
            adjacency.indptr().to_vec(),
            adjacency.indices().to_vec(),
            ones,
        );
        Self {
            adjacency,
            directed,
        }
    }

    /// Wraps an existing CSR adjacency (values are edge weights).
    pub fn from_adjacency(adjacency: Csr, directed: bool) -> Self {
        assert_eq!(
            adjacency.n_rows(),
            adjacency.n_cols(),
            "adjacency must be square"
        );
        Self {
            adjacency,
            directed,
        }
    }

    #[inline]
    pub fn n(&self) -> usize {
        self.adjacency.n_rows()
    }

    /// Number of stored adjacency entries. For an undirected graph this is
    /// twice the number of distinct edges — the convention of Table 1.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adjacency.nnz()
    }

    #[inline]
    pub fn directed(&self) -> bool {
        self.directed
    }

    #[inline]
    pub fn adjacency(&self) -> &Csr {
        &self.adjacency
    }

    /// Out-neighbors of vertex `u`.
    #[inline]
    pub fn neighbors(&self, u: usize) -> &[u32] {
        self.adjacency.row_indices(u)
    }

    /// The normalized adjacency `Â = D^{-1/2}(A+I)D^{-1/2}` used by GCN
    /// convolution (paper Eq. 1).
    pub fn normalized_adjacency(&self) -> Csr {
        norm::normalize_adjacency(&self.adjacency)
    }

    /// Out-degree statistics.
    pub fn degree_stats(&self) -> DegreeStats {
        let n = self.n();
        if n == 0 {
            return DegreeStats {
                min: 0,
                max: 0,
                avg: 0.0,
                skew: 0.0,
            };
        }
        let mut min = usize::MAX;
        let mut max = 0usize;
        let mut total = 0usize;
        for i in 0..n {
            let d = self.adjacency.row_nnz(i);
            min = min.min(d);
            max = max.max(d);
            total += d;
        }
        let avg = total as f64 / n as f64;
        DegreeStats {
            min,
            max,
            avg,
            skew: if avg > 0.0 { max as f64 / avg } else { 0.0 },
        }
    }

    /// A symmetrized copy (union of the edge set with its reverse); identity
    /// for undirected graphs. The §4.3.1 graph partitioning model requires an
    /// undirected input, exactly as METIS does.
    pub fn symmetrized(&self) -> Graph {
        if !self.directed {
            return self.clone();
        }
        let mut coo: Vec<(u32, u32, f32)> = Vec::with_capacity(self.adjacency.nnz() * 2);
        for (r, c, _) in self.adjacency.iter() {
            coo.push((r, c, 1.0));
            coo.push((c, r, 1.0));
        }
        let merged = Csr::from_coo(self.n(), self.n(), coo);
        let ones = vec![1.0f32; merged.nnz()];
        let adjacency = Csr::from_parts(
            self.n(),
            self.n(),
            merged.indptr().to_vec(),
            merged.indices().to_vec(),
            ones,
        );
        Graph {
            adjacency,
            directed: false,
        }
    }

    /// The vertex-induced subgraph on `vertices` (kept in the given order),
    /// with vertex ids renumbered to `0..vertices.len()`. Used by mini-batch
    /// sampling (§4.3.3): each mini-batch is a subgraph `G' ⊂ G`.
    pub fn induced_subgraph(&self, vertices: &[u32]) -> Graph {
        self.induced_subgraph_into(vertices, &mut SubgraphScratch::new())
    }

    /// [`Graph::induced_subgraph`] with caller-owned scratch: the global
    /// vertex map and the triplet buffer live in `scratch` and are reused
    /// across calls, so a steady stream of bounded-size batches builds its
    /// subgraphs without heap allocation beyond the returned `Graph`.
    pub fn induced_subgraph_into(&self, vertices: &[u32], scratch: &mut SubgraphScratch) -> Graph {
        let epoch = scratch.begin(self.n());
        for (new, &old) in vertices.iter().enumerate() {
            scratch.stamp[old as usize] = epoch;
            scratch.val[old as usize] = new as u32;
        }
        scratch.coo.clear();
        for (new, &old) in vertices.iter().enumerate() {
            for &nbr in self.neighbors(old as usize) {
                if scratch.stamp[nbr as usize] == epoch {
                    scratch
                        .coo
                        .push((new as u32, scratch.val[nbr as usize], 1.0));
                }
            }
        }
        Graph {
            adjacency: Csr::from_coo_ref(vertices.len(), vertices.len(), &scratch.coo),
            directed: self.directed,
        }
    }
}

/// Reusable scratch for [`Graph::induced_subgraph_into`]: an epoch-stamped
/// global-vertex → batch-local map (`val[v]` is live iff `stamp[v]` equals
/// the current epoch, so "clearing" between batches is a counter bump) plus
/// the COO triplet buffer. Grow-once across calls.
#[derive(Debug, Default)]
pub struct SubgraphScratch {
    stamp: Vec<u32>,
    val: Vec<u32>,
    epoch: u32,
    coo: Vec<(u32, u32, f32)>,
}

impl SubgraphScratch {
    pub fn new() -> SubgraphScratch {
        SubgraphScratch::default()
    }

    /// Sizes the map for an `n`-vertex host graph and opens a new epoch.
    fn begin(&mut self, n: usize) -> u32 {
        if self.stamp.len() < n {
            // New tail entries carry stamp 0; epochs start at 1.
            self.stamp.resize(n, 0);
            self.val.resize(n, 0);
        }
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undirected_edges_are_mirrored() {
        let g = Graph::from_edges(3, false, &[(0, 1), (1, 2)]);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn directed_edges_are_not_mirrored() {
        let g = Graph::from_edges(3, true, &[(0, 1), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert!(g.neighbors(1).contains(&2));
        assert!(!g.neighbors(1).contains(&0));
    }

    #[test]
    fn self_loops_and_duplicates_dropped() {
        let g = Graph::from_edges(3, true, &[(0, 0), (0, 1), (0, 1), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert!(g.adjacency().values().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn degree_stats_on_star() {
        // Star with center 0 and 4 leaves, undirected.
        let g = Graph::from_edges(5, false, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let s = g.degree_stats();
        assert_eq!(s.max, 4);
        assert_eq!(s.min, 1);
        assert!((s.avg - 8.0 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn symmetrized_contains_both_directions() {
        let g = Graph::from_edges(3, true, &[(0, 1), (1, 2)]);
        let s = g.symmetrized();
        assert!(!s.directed());
        assert_eq!(s.num_edges(), 4);
        assert!(s.neighbors(1).contains(&0));
    }

    #[test]
    fn symmetrize_does_not_double_reciprocal_edges() {
        let g = Graph::from_edges(2, true, &[(0, 1), (1, 0)]);
        let s = g.symmetrized();
        assert_eq!(s.num_edges(), 2);
    }

    #[test]
    fn induced_subgraph_renumbers() {
        let g = Graph::from_edges(5, false, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let sub = g.induced_subgraph(&[1, 2, 4]);
        assert_eq!(sub.n(), 3);
        // Edge 1-2 survives as 0-1; 2-3 and 3-4 are cut since 3 is absent.
        assert_eq!(sub.num_edges(), 2);
        assert!(sub.neighbors(0).contains(&1));
        assert!(sub.neighbors(2).is_empty());
    }
}
