//! Structural analysis utilities: connected components and an eccentricity
//! (pseudo-diameter) estimate.
//!
//! These back the dataset-catalog validation: the paper's graph families
//! differ structurally in exactly these measures — road networks are
//! high-diameter and essentially one component, social networks are
//! small-world with a giant component plus dust — and the `table1_datasets`
//! harness prints them next to the degree statistics.

use crate::Graph;
use std::collections::VecDeque;

/// Connected-component summary (treating edges as undirected).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Components {
    /// Number of connected components.
    pub count: usize,
    /// Vertex count of the largest component.
    pub largest: usize,
    /// Component id per vertex (ids are assigned in discovery order).
    pub labels: Vec<u32>,
}

/// Labels connected components by BFS over the symmetrized edge set.
pub fn connected_components(graph: &Graph) -> Components {
    let sym = graph.symmetrized();
    let n = sym.n();
    let mut labels = vec![u32::MAX; n];
    let mut count = 0usize;
    let mut largest = 0usize;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if labels[start] != u32::MAX {
            continue;
        }
        let id = count as u32;
        count += 1;
        labels[start] = id;
        queue.push_back(start as u32);
        let mut size = 0usize;
        while let Some(v) = queue.pop_front() {
            size += 1;
            for &u in sym.neighbors(v as usize) {
                if labels[u as usize] == u32::MAX {
                    labels[u as usize] = id;
                    queue.push_back(u);
                }
            }
        }
        largest = largest.max(size);
    }
    Components {
        count,
        largest,
        labels,
    }
}

/// Pseudo-diameter: the double-sweep lower bound (BFS from a start vertex,
/// then BFS from the farthest vertex found). Exact on trees; a tight lower
/// bound in practice, and cheap — two BFS sweeps.
pub fn pseudo_diameter(graph: &Graph) -> usize {
    let sym = graph.symmetrized();
    let n = sym.n();
    if n == 0 {
        return 0;
    }
    let (far, _) = bfs_farthest(&sym, 0);
    let (_, dist) = bfs_farthest(&sym, far);
    dist
}

/// BFS returning the farthest reachable vertex and its distance.
fn bfs_farthest(sym: &Graph, start: usize) -> (usize, usize) {
    let n = sym.n();
    let mut dist = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    dist[start] = 0;
    queue.push_back(start as u32);
    let mut far = (start, 0usize);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        if d > far.1 {
            far = (v as usize, d);
        }
        for &u in sym.neighbors(v as usize) {
            if dist[u as usize] == usize::MAX {
                dist[u as usize] = d + 1;
                queue.push_back(u);
            }
        }
    }
    far
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_path_component_and_diameter() {
        let g = Graph::from_edges(5, false, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let c = connected_components(&g);
        assert_eq!(c.count, 1);
        assert_eq!(c.largest, 5);
        assert_eq!(pseudo_diameter(&g), 4);
    }

    #[test]
    fn disjoint_components_counted() {
        let g = Graph::from_edges(6, false, &[(0, 1), (2, 3)]);
        let c = connected_components(&g);
        // {0,1}, {2,3}, {4}, {5}.
        assert_eq!(c.count, 4);
        assert_eq!(c.largest, 2);
        assert_eq!(c.labels[0], c.labels[1]);
        assert_ne!(c.labels[0], c.labels[2]);
    }

    #[test]
    fn directed_edges_count_as_connectivity() {
        let g = Graph::from_edges(3, true, &[(0, 1), (2, 1)]);
        let c = connected_components(&g);
        assert_eq!(c.count, 1);
    }

    #[test]
    fn cycle_diameter() {
        let g = Graph::from_edges(6, false, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        assert_eq!(pseudo_diameter(&g), 3);
    }

    #[test]
    fn road_networks_have_larger_diameter_than_social() {
        use crate::gen::{grid, social};
        let road = grid::road_network(2000, 1);
        let soc = social::generate(2000, 10.0, false, 1);
        let dr = pseudo_diameter(&road);
        let ds = pseudo_diameter(&soc);
        assert!(dr > 2 * ds, "road diameter {dr} should dwarf social {ds}");
    }

    #[test]
    fn star_diameter_is_two() {
        let g = Graph::from_edges(5, false, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(pseudo_diameter(&g), 2);
    }
}
