//! R-MAT (recursive matrix) generator for power-law social/web graphs.
//!
//! R-MAT drops each edge into the adjacency matrix by recursively choosing
//! one of four quadrants with probabilities `(a, b, c, d)`; skewed
//! probabilities yield the heavy-tailed degree distributions of social
//! networks like flickr and com-Youtube, whose partitioning behaviour (GP's
//! volume imbalance, Table 2) this reproduction must reproduce.

use crate::Graph;
use pargcn_util::rng::StdRng;
use pargcn_util::rng::{Rng, SeedableRng};

/// R-MAT parameters.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// Quadrant probabilities; must sum to ~1. Classic "social" skew is
    /// `(0.57, 0.19, 0.19, 0.05)`.
    pub a: f64,
    pub b: f64,
    pub c: f64,
    /// Number of vertices is `1 << scale`.
    pub scale: u32,
    /// Number of edge *insertions*; the final count is lower after
    /// deduplication and self-loop removal.
    pub edges: usize,
    pub directed: bool,
}

impl RmatParams {
    /// The standard skewed parameterization used by Graph500.
    pub fn social(scale: u32, edges: usize, directed: bool) -> Self {
        Self {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            scale,
            edges,
            directed,
        }
    }
}

/// Generates an R-MAT graph.
pub fn generate(params: RmatParams, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 1usize << params.scale;
    let mut edges = Vec::with_capacity(params.edges);
    for _ in 0..params.edges {
        let (mut lo_r, mut hi_r) = (0usize, n);
        let (mut lo_c, mut hi_c) = (0usize, n);
        while hi_r - lo_r > 1 {
            let x: f64 = rng.gen();
            // Slightly perturb quadrant probabilities per level, the standard
            // trick to avoid exact self-similarity artifacts.
            let noise = 0.9 + 0.2 * rng.gen::<f64>();
            let a = params.a * noise;
            let b = params.b;
            let c = params.c;
            let total = a + b + c + (1.0 - params.a - params.b - params.c);
            let (top, left) = if x < a / total {
                (true, true)
            } else if x < (a + b) / total {
                (true, false)
            } else if x < (a + b + c) / total {
                (false, true)
            } else {
                (false, false)
            };
            let mid_r = (lo_r + hi_r) / 2;
            let mid_c = (lo_c + hi_c) / 2;
            if top {
                hi_r = mid_r;
            } else {
                lo_r = mid_r;
            }
            if left {
                hi_c = mid_c;
            } else {
                lo_c = mid_c;
            }
        }
        edges.push((lo_r as u32, lo_c as u32));
    }
    Graph::from_edges(n, params.directed, &edges)
}

/// Generates an R-MAT graph with vertex count `n` not restricted to a power
/// of two: generates at the next power of two and keeps vertices `< n`
/// (edges touching dropped vertices are discarded, so callers should
/// over-provision `edges` slightly).
pub fn generate_sized(n: usize, avg_degree: f64, directed: bool, seed: u64) -> Graph {
    let scale = (n.max(2) as f64).log2().ceil() as u32;
    let full = 1usize << scale;
    // Over-provision for dedup losses and dropped vertices.
    let target = (n as f64 * avg_degree * (full as f64 / n as f64).sqrt() * 1.35) as usize;
    let g = generate(RmatParams::social(scale, target, directed), seed);
    let keep: Vec<u32> = (0..n as u32).collect();
    g.induced_subgraph(&keep)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = generate(RmatParams::social(8, 2000, true), 42);
        let b = generate(RmatParams::social(8, 2000, true), 42);
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.adjacency().indices(), b.adjacency().indices());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(RmatParams::social(8, 2000, true), 1);
        let b = generate(RmatParams::social(8, 2000, true), 2);
        assert_ne!(a.adjacency().indices(), b.adjacency().indices());
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = generate(RmatParams::social(10, 10_000, true), 7);
        let s = g.degree_stats();
        assert!(
            s.skew > 8.0,
            "R-MAT should be heavy-tailed, got skew {}",
            s.skew
        );
    }

    #[test]
    fn sized_generator_hits_target_roughly() {
        let g = generate_sized(700, 8.0, true, 3);
        assert_eq!(g.n(), 700);
        let avg = g.degree_stats().avg;
        assert!(avg > 3.0 && avg < 16.0, "avg degree {avg} too far from 8");
    }

    #[test]
    fn undirected_rmat_is_symmetric() {
        let g = generate(RmatParams::social(7, 1000, false), 11);
        let adj = g.adjacency();
        let t = adj.transpose();
        assert_eq!(adj.indices(), t.indices());
        assert_eq!(adj.indptr(), t.indptr());
    }
}
