//! Overlapping-community (affiliation) generator for co-purchasing and
//! co-authorship graphs.
//!
//! Products bought together (amazon0601, com-Amazon) and papers co-authored
//! (coPapersDBLP) induce graphs that are unions of dense blocks: each
//! community is a near-clique over its members, and vertices belong to a few
//! communities. Degree is governed by community size × memberships —
//! coPapersDBLP's average degree of 56 comes from large co-author cliques,
//! which this model reproduces directly.

use crate::Graph;
use pargcn_util::rng::StdRng;
use pargcn_util::rng::{Rng, SeedableRng};

/// Affiliation-model parameters.
#[derive(Clone, Copy, Debug)]
pub struct CommunityParams {
    pub n: usize,
    /// Mean community size (sizes are uniform in `[size/2, 3*size/2]`).
    pub community_size: usize,
    /// Mean number of communities per vertex.
    pub memberships: f64,
    /// Probability of an edge between two members of the same community.
    pub intra_prob: f64,
    pub directed: bool,
}

/// Generates an affiliation graph.
pub fn generate(params: CommunityParams, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = params.n;
    let total_memberships = (n as f64 * params.memberships) as usize;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut assigned = 0usize;
    // Communities draw members preferentially from a contiguous id window so
    // the graph has locality (real product ids cluster by category), plus a
    // few global members for cross-community edges.
    while assigned < total_memberships {
        let size = rng
            .gen_range(params.community_size / 2..=params.community_size * 3 / 2)
            .max(2);
        let base = rng.gen_range(0..n);
        let window = (size * 4).min(n);
        let mut members = Vec::with_capacity(size);
        for _ in 0..size {
            let v = if rng.gen_bool(0.97) {
                ((base + rng.gen_range(0..window)) % n) as u32
            } else {
                rng.gen_range(0..n as u32)
            };
            if !members.contains(&v) {
                members.push(v);
            }
        }
        assigned += members.len();
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                if rng.gen_bool(params.intra_prob) {
                    if params.directed && rng.gen_bool(0.5) {
                        edges.push((members[j], members[i]));
                    } else {
                        edges.push((members[i], members[j]));
                    }
                }
            }
        }
    }
    Graph::from_edges(n, params.directed, &edges)
}

/// Co-purchasing defaults (amazon-like): small communities, moderate density.
pub fn copurchase(n: usize, avg_degree: f64, directed: bool, seed: u64) -> Graph {
    // Expected degree ≈ memberships × (community_size − 1) × intra_prob.
    let community_size = 12usize;
    let intra_prob = 0.55;
    let memberships = avg_degree / ((community_size as f64 - 1.0) * intra_prob);
    generate(
        CommunityParams {
            n,
            community_size,
            memberships,
            intra_prob,
            directed,
        },
        seed,
    )
}

/// Co-authorship defaults (coPapersDBLP-like): large cliques, high degree.
pub fn coauthor(n: usize, avg_degree: f64, seed: u64) -> Graph {
    let community_size = 24usize;
    let intra_prob = 0.9;
    let memberships = avg_degree / ((community_size as f64 - 1.0) * intra_prob);
    generate(
        CommunityParams {
            n,
            community_size,
            memberships,
            intra_prob,
            directed: false,
        },
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = copurchase(2000, 6.0, false, 4);
        let b = copurchase(2000, 6.0, false, 4);
        assert_eq!(a.adjacency().indices(), b.adjacency().indices());
    }

    #[test]
    fn copurchase_hits_degree_target() {
        let g = copurchase(5000, 8.0, false, 21);
        let avg = g.degree_stats().avg;
        assert!(avg > 4.0 && avg < 14.0, "avg degree {avg} too far from 8");
    }

    #[test]
    fn coauthor_is_dense() {
        let g = coauthor(2000, 40.0, 17);
        let avg = g.degree_stats().avg;
        assert!(avg > 20.0, "co-authorship graphs are dense, got {avg}");
    }

    #[test]
    fn directed_variant_produces_directed_graph() {
        let g = copurchase(1000, 6.0, true, 2);
        assert!(g.directed());
        // A directed affiliation graph is (almost surely) not symmetric.
        let t = g.adjacency().transpose();
        assert_ne!(g.adjacency().indptr(), t.indptr());
    }
}
