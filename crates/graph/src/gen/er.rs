//! Erdős–Rényi `G(n, m)` generator — the structureless baseline used by
//! tests and partitioner ablations (on ER graphs no partitioner can beat
//! random by much, which is itself a useful sanity check).

use crate::Graph;
use pargcn_util::rng::StdRng;
use pargcn_util::rng::{Rng, SeedableRng};

/// Generates a uniform random graph with `n` vertices and about `m` edges.
pub fn generate(n: usize, m: usize, directed: bool, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, directed, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roughly_m_edges() {
        let g = generate(1000, 5000, true, 1);
        let e = g.num_edges();
        assert!(e > 4500 && e <= 5000, "got {e}");
    }

    #[test]
    fn no_skew() {
        let g = generate(5000, 50_000, true, 2);
        assert!(g.degree_stats().skew < 4.0);
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            generate(100, 300, false, 5).adjacency().indices(),
            generate(100, 300, false, 5).adjacency().indices()
        );
    }
}
