//! Deterministic synthetic graph generators, one per structural family of
//! the paper's Table 1 datasets.
//!
//! | Family | Generator | Table 1 datasets it stands in for |
//! |---|---|---|
//! | power-law social/web | [`social`] (R-MAT ∪ communities) | com-Youtube, flickr, soc-Slashdot0902, Reddit |
//! | citation | [`pref_attach`] | cit-Patents, ogbn-Papers100M |
//! | road network | [`grid`] | roadNet-CA |
//! | overlapping communities | [`community`] | amazon0601, com-Amazon, coPapersDBLP |
//! | planted partition + features | [`sbm`] | Cora (accuracy experiments) |
//! | uniform random (baseline) | [`er`] | — (tests and ablations) |
//!
//! All generators take an explicit seed and produce identical graphs across
//! runs and platforms.

pub mod community;
pub mod er;
pub mod grid;
pub mod pref_attach;
pub mod rmat;
pub mod sbm;
pub mod social;
