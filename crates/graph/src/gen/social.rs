//! Social-network generator: R-MAT skew overlaid with community structure.
//!
//! Pure R-MAT reproduces the heavy-tailed degree distribution of social
//! graphs but almost none of their clustering — real social networks
//! (com-Youtube, flickr, soc-Slashdot) have both hubs *and* dense friend
//! circles, and it is the circles that give partitioners something to
//! exploit. This generator unions an R-MAT core (the hubs and the skew)
//! with an affiliation overlay (the circles), splitting the target degree
//! between them.

use super::{community, rmat};
use crate::Graph;
use pargcn_matrix::Csr;

/// Fraction of the target degree produced by the R-MAT (hub/skew) core;
/// the rest comes from the community overlay.
const RMAT_FRACTION: f64 = 0.5;

/// Generates a social-style graph with `n` vertices and about
/// `avg_degree` stored entries per vertex.
pub fn generate(n: usize, avg_degree: f64, directed: bool, seed: u64) -> Graph {
    let core = rmat::generate_sized(n, avg_degree * RMAT_FRACTION, directed, seed);
    let overlay = community::copurchase(
        n,
        avg_degree * (1.0 - RMAT_FRACTION),
        directed,
        seed ^ 0x50C1A1,
    );
    union(&core, &overlay)
}

/// Edge-set union of two graphs over the same vertex set.
fn union(a: &Graph, b: &Graph) -> Graph {
    assert_eq!(a.n(), b.n(), "union requires equal vertex sets");
    assert_eq!(
        a.directed(),
        b.directed(),
        "union requires equal directedness"
    );
    let mut coo: Vec<(u32, u32, f32)> = a.adjacency().iter().collect();
    coo.extend(b.adjacency().iter());
    let merged = Csr::from_coo(a.n(), a.n(), coo);
    // from_coo sums duplicates; restore the unit pattern.
    let pattern = Csr::from_parts(
        a.n(),
        a.n(),
        merged.indptr().to_vec(),
        merged.indices().to_vec(),
        vec![1.0; merged.nnz()],
    );
    Graph::from_adjacency(pattern, a.directed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = generate(1000, 8.0, true, 3);
        let b = generate(1000, 8.0, true, 3);
        assert_eq!(a.adjacency().indices(), b.adjacency().indices());
    }

    #[test]
    fn keeps_the_heavy_tail() {
        let g = generate(4000, 10.0, true, 5);
        assert!(
            g.degree_stats().skew > 6.0,
            "skew {} lost",
            g.degree_stats().skew
        );
    }

    #[test]
    fn degree_near_target() {
        let g = generate(4000, 10.0, false, 7);
        let avg = g.degree_stats().avg;
        assert!(avg > 5.0 && avg < 20.0, "avg {avg} too far from 10");
    }

    #[test]
    fn union_deduplicates() {
        let a = Graph::from_edges(3, true, &[(0, 1), (1, 2)]);
        let b = Graph::from_edges(3, true, &[(0, 1), (2, 0)]);
        let u = union(&a, &b);
        assert_eq!(u.num_edges(), 3);
        assert!(u.adjacency().values().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn has_more_locality_than_pure_rmat() {
        // The point of the overlay: give partitioners structure to exploit.
        // Locality proxy (no cross-crate dev-dependency on the partitioner):
        // the community overlay draws members from contiguous id windows, so
        // short-range edges must be far more frequent than in pure R-MAT.
        let social = generate(3000, 10.0, false, 11);
        let pure = rmat::generate_sized(3000, 10.0, false, 11);
        let short_range = |g: &Graph| {
            let short = g
                .adjacency()
                .iter()
                .filter(|&(u, v, _)| (u as i64 - v as i64).unsigned_abs() < 100)
                .count();
            short as f64 / g.num_edges().max(1) as f64
        };
        assert!(
            short_range(&social) > short_range(&pure) * 2.0,
            "social locality {:.4} not above pure R-MAT {:.4}",
            short_range(&social),
            short_range(&pure)
        );
    }
}
