//! Preferential-attachment generator with temporal locality, for citation
//! graphs.
//!
//! Each new vertex attaches `m` edges to existing vertices; with
//! probability `RECENCY_BIAS` the target is drawn uniformly from a recent
//! id window (papers overwhelmingly cite *recent* papers — the temporal
//! locality that makes real citation graphs like cit-Patents partition
//! well), otherwise degree-proportionally over the whole history (the
//! classic Barabási–Albert rich-get-richer term that produces the power-law
//! tail). With `directed = true` edges point from the new vertex to older
//! vertices — the citation direction of cit-Patents and ogbn-Papers100M.

use crate::Graph;
use pargcn_util::rng::StdRng;
use pargcn_util::rng::{Rng, SeedableRng};

/// Fraction of citations that go to a recent paper rather than a globally
/// popular one.
const RECENCY_BIAS: f64 = 0.7;

/// Recent-window width, as a multiple of `m`.
const WINDOW_FACTOR: usize = 50;

/// Generates a citation-style graph with `n` vertices and about `m`
/// out-edges per vertex.
///
/// # Panics
/// Panics if `n < 2` or `m == 0`.
pub fn generate(n: usize, m: usize, directed: bool, seed: u64) -> Graph {
    assert!(n >= 2 && m >= 1, "need n >= 2, m >= 1");
    let mut rng = StdRng::seed_from_u64(seed);
    // `targets` is the repeated-endpoint list: vertex v appears deg(v) times,
    // so sampling uniformly from it is degree-proportional sampling.
    let mut targets: Vec<u32> = vec![0, 1];
    let mut edges: Vec<(u32, u32)> = vec![(1, 0)];
    let window = (m * WINDOW_FACTOR).max(4) as u32;
    for v in 2..n as u32 {
        let k = m.min(v as usize);
        let mut chosen = Vec::with_capacity(k);
        let mut guard = 0;
        while chosen.len() < k && guard < 50 * k {
            let t = if rng.gen_bool(RECENCY_BIAS) {
                let lo = v.saturating_sub(window);
                rng.gen_range(lo..v)
            } else {
                targets[rng.gen_range(0..targets.len())]
            };
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
            guard += 1;
        }
        for &t in &chosen {
            edges.push((v, t));
            targets.push(t);
            targets.push(v);
        }
    }
    Graph::from_edges(n, directed, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = generate(500, 4, true, 9);
        let b = generate(500, 4, true, 9);
        assert_eq!(a.adjacency().indices(), b.adjacency().indices());
    }

    #[test]
    fn edge_count_close_to_nm() {
        let g = generate(1000, 4, true, 5);
        let e = g.num_edges();
        assert!(e > 3500 && e <= 4000, "expected ≈4000 edges, got {e}");
    }

    #[test]
    fn directed_edges_point_backwards() {
        let g = generate(300, 3, true, 1);
        for (u, v, _) in g.adjacency().iter() {
            // Vertex 1's bootstrap edge points to 0; all others point to
            // strictly older (smaller-id) vertices.
            assert!(v < u || (u, v) == (1, 0), "edge {u}->{v} not backwards");
        }
    }

    #[test]
    fn early_vertices_accumulate_degree() {
        let g = generate(2000, 3, false, 13).symmetrized();
        let stats = g.degree_stats();
        // Preferential attachment gives a heavy tail.
        assert!(stats.skew > 5.0, "skew {} too small", stats.skew);
    }
}
