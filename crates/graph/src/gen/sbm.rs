//! Stochastic block model with correlated features and labels — the stand-in
//! for Cora in the predictive-performance experiment (paper Fig. 4c).
//!
//! Fig. 4c's claim is that parallel full-batch training has *no accuracy
//! impact* relative to serial training (~75% on Cora at every processor
//! count). To test that we need a dataset a 2-layer GCN can actually learn:
//! a planted-partition graph (edges mostly within classes) whose vertex
//! features are drawn from per-class Gaussian mixtures. The GCN then has
//! both a structural and a feature signal, like a real citation network.

use crate::Graph;
use pargcn_matrix::Dense;
use pargcn_util::rng::StdRng;
use pargcn_util::rng::{Rng, SeedableRng};

/// Parameters for the planted-partition dataset.
#[derive(Clone, Copy, Debug)]
pub struct SbmParams {
    pub n: usize,
    pub classes: usize,
    /// Feature dimensionality.
    pub features: usize,
    /// Expected intra-class degree per vertex.
    pub intra_degree: f64,
    /// Expected inter-class degree per vertex.
    pub inter_degree: f64,
    /// Distance between class feature centroids relative to noise σ=1.
    pub feature_separation: f32,
}

impl Default for SbmParams {
    fn default() -> Self {
        // Cora-like: 2708 vertices, 7 classes. Densities and separation
        // are tuned so a 2-layer GCN reaches ≈75–80% test accuracy after
        // 30 epochs — the operating point of the paper's Fig. 4c — rather
        // than matching Cora's exact edge count (the generated graph is
        // ~2× denser, trading edge-count fidelity for accuracy fidelity).
        Self {
            n: 2708,
            classes: 7,
            features: 32,
            intra_degree: 2.8,
            inter_degree: 1.1,
            feature_separation: 0.65,
        }
    }
}

/// A generated labelled dataset: graph, features `n × d`, labels `n`, and a
/// train/test split (60/40, stratified by construction order).
pub struct Labelled {
    pub graph: Graph,
    pub features: Dense,
    pub labels: Vec<u32>,
    pub train_mask: Vec<bool>,
}

/// Samples a standard normal via Box–Muller (avoids a distribution crate).
fn std_normal(rng: &mut StdRng) -> f32 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// Generates a planted-partition graph with class-correlated features.
pub fn generate(params: SbmParams, seed: u64) -> Labelled {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = params.n;
    let k = params.classes;
    // Round-robin class assignment keeps classes balanced; shuffling the id
    // space is unnecessary because all downstream partitioners are id-blind.
    let labels: Vec<u32> = (0..n).map(|i| (i % k) as u32).collect();

    // Edges: for each vertex draw Poisson-ish numbers of intra/inter edges
    // by Bernoulli over a bounded number of candidate draws.
    let mut edges = Vec::new();
    let intra_draws = (params.intra_degree * 2.0).ceil() as usize;
    let inter_draws = (params.inter_degree * 2.0).ceil() as usize;
    for v in 0..n as u32 {
        let class = labels[v as usize];
        for _ in 0..intra_draws {
            if rng.gen_bool((params.intra_degree / intra_draws as f64).min(1.0)) {
                // Sample a same-class vertex: ids congruent to class mod k.
                let u = (rng.gen_range(0..n / k) * k + class as usize) as u32;
                if u != v {
                    edges.push((v, u));
                }
            }
        }
        for _ in 0..inter_draws {
            if rng.gen_bool((params.inter_degree / inter_draws as f64).min(1.0)) {
                let u = rng.gen_range(0..n as u32);
                if u != v && labels[u as usize] != class {
                    edges.push((v, u));
                }
            }
        }
    }
    let graph = Graph::from_edges(n, false, &edges);

    // Per-class centroids on random directions, then unit-variance noise.
    let mut centroids = Vec::with_capacity(k);
    for _ in 0..k {
        let c: Vec<f32> = (0..params.features)
            .map(|_| std_normal(&mut rng) * params.feature_separation)
            .collect();
        centroids.push(c);
    }
    let mut features = Dense::zeros(n, params.features);
    for v in 0..n {
        let c = &centroids[labels[v] as usize];
        let row = features.row_mut(v);
        for (j, x) in row.iter_mut().enumerate() {
            *x = c[j] + std_normal(&mut rng);
        }
    }

    // Stratified 60/40 split: cycle the mask *within* each class (labels
    // are assigned round-robin by `i % k`, so stepping in units of `k`
    // walks one class) to keep every class present on both sides.
    let train_mask: Vec<bool> = (0..n).map(|i| (i / k) % 5 < 3).collect();
    Labelled {
        graph,
        features,
        labels,
        train_mask,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_classes() {
        let d = generate(
            SbmParams {
                n: 700,
                ..Default::default()
            },
            3,
        );
        let mut counts = [0usize; 7];
        for &l in &d.labels {
            counts[l as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 100));
    }

    #[test]
    fn homophily_holds() {
        let d = generate(SbmParams::default(), 5);
        let mut intra = 0usize;
        let mut total = 0usize;
        for (u, v, _) in d.graph.adjacency().iter() {
            total += 1;
            if d.labels[u as usize] == d.labels[v as usize] {
                intra += 1;
            }
        }
        let frac = intra as f64 / total as f64;
        assert!(
            frac > 0.6,
            "intra-class edge fraction {frac} too low for planted partition"
        );
    }

    #[test]
    fn features_are_class_separated() {
        let d = generate(
            SbmParams {
                n: 1400,
                feature_separation: 2.0,
                ..Default::default()
            },
            7,
        );
        // Average distance to own-class mean must be below distance to the
        // global mean for separated Gaussians.
        let dcols = d.features.cols();
        let mut class_mean = vec![vec![0.0f64; dcols]; 7];
        let mut counts = [0usize; 7];
        for v in 0..1400 {
            counts[d.labels[v] as usize] += 1;
            for (j, m) in class_mean[d.labels[v] as usize].iter_mut().enumerate() {
                *m += d.features.get(v, j) as f64;
            }
        }
        for (c, m) in class_mean.iter_mut().enumerate() {
            m.iter_mut().for_each(|x| *x /= counts[c] as f64);
        }
        // Centroids should be pairwise far apart (separation 2 × random dirs).
        let dist = |a: &[f64], b: &[f64]| {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        assert!(dist(&class_mean[0], &class_mean[1]) > 2.0);
    }

    #[test]
    fn train_mask_is_roughly_60_percent() {
        let d = generate(SbmParams::default(), 1);
        let frac = d.train_mask.iter().filter(|&&m| m).count() as f64 / d.train_mask.len() as f64;
        assert!((frac - 0.6).abs() < 0.05);
    }

    #[test]
    fn cora_like_size() {
        let d = generate(SbmParams::default(), 0);
        assert_eq!(d.graph.n(), 2708);
        let avg = d.graph.degree_stats().avg;
        assert!(avg > 2.0 && avg < 8.0, "Cora-like degree, got {avg}");
    }
}
