//! Road-network-like generator: a 2-D lattice with random perforation.
//!
//! Road networks (roadNet-CA in the paper) are near-planar with average
//! degree < 3 and extremely high locality; they are the best case for both
//! graph and hypergraph partitioning (Table 2: ≈99% communication reduction,
//! ≈30× speedup). A rectangular lattice with a fraction of edges removed
//! and occasional diagonal shortcuts reproduces exactly those properties.

use crate::Graph;
use pargcn_util::rng::StdRng;
use pargcn_util::rng::{Rng, SeedableRng};

/// Generates a `width × height` lattice, dropping each lattice edge with
/// probability `drop_prob` and adding a diagonal with probability
/// `diag_prob` per cell. The result is undirected.
pub fn generate(width: usize, height: usize, drop_prob: f64, diag_prob: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = width * height;
    let id = |x: usize, y: usize| (y * width + x) as u32;
    let mut edges = Vec::with_capacity(2 * n);
    for y in 0..height {
        for x in 0..width {
            if x + 1 < width && !rng.gen_bool(drop_prob) {
                edges.push((id(x, y), id(x + 1, y)));
            }
            if y + 1 < height && !rng.gen_bool(drop_prob) {
                edges.push((id(x, y), id(x, y + 1)));
            }
            if x + 1 < width && y + 1 < height && rng.gen_bool(diag_prob) {
                edges.push((id(x, y), id(x + 1, y + 1)));
            }
        }
    }
    Graph::from_edges(n, false, &edges)
}

/// Road-network defaults: ~4% of road segments missing, sparse diagonals,
/// giving average degree ≈ 2.8 like roadNet-CA.
pub fn road_network(n_target: usize, seed: u64) -> Graph {
    let side = (n_target as f64).sqrt().round() as usize;
    generate(side.max(2), side.max(2), 0.22, 0.03, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_lattice_degrees() {
        let g = generate(4, 4, 0.0, 0.0, 0);
        // 4x4 lattice: 2 * 4 * 3 = 24 undirected edges = 48 CSR entries.
        assert_eq!(g.num_edges(), 48);
        let s = g.degree_stats();
        assert_eq!(s.min, 2); // corners
        assert_eq!(s.max, 4); // interior
    }

    #[test]
    fn road_network_matches_family_stats() {
        let g = road_network(10_000, 3);
        let s = g.degree_stats();
        assert!(
            s.avg > 2.0 && s.avg < 3.6,
            "avg degree {} not road-like",
            s.avg
        );
        assert!(s.skew < 3.0, "road networks are not skewed, got {}", s.skew);
    }

    #[test]
    fn deterministic() {
        let a = road_network(2500, 8);
        let b = road_network(2500, 8);
        assert_eq!(a.adjacency().indices(), b.adjacency().indices());
    }
}
