//! Catalog of the paper's Table 1 datasets, as scaled synthetic stand-ins.
//!
//! Each entry records the real dataset's size and family from Table 1 of the
//! paper, a default scale divisor chosen so the default instance fits
//! comfortably in memory (≤ ~1M adjacency entries), and a generator that
//! reproduces the family's structure (see [`crate::gen`]). The
//! `table1_datasets` bench binary prints the generated properties next to
//! the paper's numbers.

use crate::gen::{community, grid, pref_attach, sbm, social};
use crate::Graph;
use pargcn_matrix::Dense;

/// Scale divisor: the generated graph has `|V| = paper_vertices / divisor`
/// vertices with the family's average degree preserved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scale(pub u32);

impl Scale {
    /// The paper's full dataset size (use only with enough memory).
    pub const FULL: Scale = Scale(1);
}

/// A generated dataset: the graph plus, for labelled datasets (Cora),
/// features/labels/train mask.
pub struct GraphData {
    pub graph: Graph,
    /// Class-correlated features; `None` for datasets the paper uses with
    /// random features (Table 2: "random vertex features and label data").
    pub features: Option<Dense>,
    pub labels: Option<Vec<u32>>,
    pub train_mask: Option<Vec<bool>>,
}

/// The eleven datasets of the paper's Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    Amazon0601,
    CitPatents,
    CoPapersDblp,
    ComAmazon,
    ComYoutube,
    Flickr,
    RoadNetCa,
    SocSlashdot0902,
    Cora,
    OgbnPapers100M,
    Reddit,
}

impl Dataset {
    /// All datasets in Table 1 order.
    pub const ALL: [Dataset; 11] = [
        Dataset::Amazon0601,
        Dataset::CitPatents,
        Dataset::CoPapersDblp,
        Dataset::ComAmazon,
        Dataset::ComYoutube,
        Dataset::Flickr,
        Dataset::RoadNetCa,
        Dataset::SocSlashdot0902,
        Dataset::Cora,
        Dataset::OgbnPapers100M,
        Dataset::Reddit,
    ];

    /// The eight graphs used in Table 2 / Figure 3 (CPU experiments).
    pub const TABLE2: [Dataset; 8] = [
        Dataset::Amazon0601,
        Dataset::CitPatents,
        Dataset::CoPapersDblp,
        Dataset::ComAmazon,
        Dataset::ComYoutube,
        Dataset::Flickr,
        Dataset::RoadNetCa,
        Dataset::SocSlashdot0902,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Amazon0601 => "amazon0601",
            Dataset::CitPatents => "cit-Patents",
            Dataset::CoPapersDblp => "coPapersDBLP",
            Dataset::ComAmazon => "com-Amazon",
            Dataset::ComYoutube => "com-Youtube",
            Dataset::Flickr => "flickr",
            Dataset::RoadNetCa => "roadNet-CA",
            Dataset::SocSlashdot0902 => "soc-Slashdot0902",
            Dataset::Cora => "Cora",
            Dataset::OgbnPapers100M => "ogbn-Papers100M",
            Dataset::Reddit => "Reddit",
        }
    }

    /// `(vertices, edges, directed)` as reported in the paper's Table 1.
    pub fn paper_properties(&self) -> (usize, usize, bool) {
        match self {
            Dataset::Amazon0601 => (403_394, 3_387_388, true),
            Dataset::CitPatents => (3_774_768, 16_518_948, true),
            Dataset::CoPapersDblp => (540_486, 30_491_458, false),
            Dataset::ComAmazon => (334_863, 1_851_744, false),
            Dataset::ComYoutube => (1_134_890, 5_975_248, false),
            Dataset::Flickr => (820_878, 9_837_214, true),
            Dataset::RoadNetCa => (1_971_281, 5_533_214, false),
            Dataset::SocSlashdot0902 => (82_168, 948_464, true),
            Dataset::Cora => (2_708, 10_556, false),
            Dataset::OgbnPapers100M => (111_059_956, 1_615_685_872, true),
            Dataset::Reddit => (232_965, 114_615_892, false),
        }
    }

    /// Default scale divisor (chosen so the default instance stays under
    /// roughly a million adjacency entries; Cora is generated at full size).
    pub fn default_scale(&self) -> Scale {
        match self {
            Dataset::Amazon0601 => Scale(16),
            Dataset::CitPatents => Scale(64),
            Dataset::CoPapersDblp => Scale(64),
            Dataset::ComAmazon => Scale(8),
            Dataset::ComYoutube => Scale(16),
            Dataset::Flickr => Scale(32),
            Dataset::RoadNetCa => Scale(16),
            Dataset::SocSlashdot0902 => Scale(4),
            Dataset::Cora => Scale(1),
            Dataset::OgbnPapers100M => Scale(512),
            Dataset::Reddit => Scale(64),
        }
    }

    /// Scaled vertex count under `scale`.
    pub fn scaled_vertices(&self, scale: Scale) -> usize {
        let (v, _, _) = self.paper_properties();
        (v / scale.0 as usize).max(16)
    }

    /// Generates the dataset at the given scale, deterministically in `seed`.
    pub fn generate(&self, scale: Scale, seed: u64) -> GraphData {
        let (v, e, directed) = self.paper_properties();
        let n = self.scaled_vertices(scale);
        let avg_deg = e as f64 / v as f64;
        let graph = match self {
            Dataset::Amazon0601 | Dataset::ComAmazon => {
                community::copurchase(n, avg_deg, directed, seed)
            }
            Dataset::CoPapersDblp => community::coauthor(n, avg_deg, seed),
            Dataset::CitPatents | Dataset::OgbnPapers100M => {
                // Citation graphs: directed preferential attachment, m = avg
                // out-degree.
                pref_attach::generate(n, avg_deg.round().max(1.0) as usize, true, seed)
            }
            Dataset::ComYoutube | Dataset::Reddit => social::generate(n, avg_deg, false, seed),
            Dataset::Flickr | Dataset::SocSlashdot0902 => social::generate(n, avg_deg, true, seed),
            Dataset::RoadNetCa => grid::road_network(n, seed),
            Dataset::Cora => {
                let labelled = sbm::generate(
                    sbm::SbmParams {
                        n,
                        ..Default::default()
                    },
                    seed,
                );
                return GraphData {
                    graph: labelled.graph,
                    features: Some(labelled.features),
                    labels: Some(labelled.labels),
                    train_mask: Some(labelled.train_mask),
                };
            }
        };
        GraphData {
            graph,
            features: None,
            labels: None,
            train_mask: None,
        }
    }

    /// Generates at the default scale.
    pub fn generate_default(&self, seed: u64) -> GraphData {
        self.generate(self.default_scale(), seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_generate_at_tiny_scale() {
        for ds in Dataset::ALL {
            // Very aggressive scaling for test speed.
            let scale = Scale(ds.default_scale().0.saturating_mul(16));
            let data = ds.generate(scale, 1);
            assert!(data.graph.n() >= 16, "{} empty", ds.name());
            assert!(data.graph.num_edges() > 0, "{} has no edges", ds.name());
            let (_, _, directed) = ds.paper_properties();
            assert_eq!(
                data.graph.directed(),
                directed,
                "{} directedness",
                ds.name()
            );
        }
    }

    #[test]
    fn cora_has_labels_and_features() {
        let data = Dataset::Cora.generate_default(0);
        assert!(data.features.is_some());
        assert_eq!(data.labels.as_ref().unwrap().len(), 2708);
    }

    #[test]
    fn road_network_is_least_skewed_social_most() {
        let road = Dataset::RoadNetCa.generate(Scale(256), 3);
        let social = Dataset::Flickr.generate(Scale(256), 3);
        assert!(
            road.graph.degree_stats().skew < social.graph.degree_stats().skew,
            "road skew {} should be below social skew {}",
            road.graph.degree_stats().skew,
            social.graph.degree_stats().skew
        );
    }

    #[test]
    fn average_degree_within_family_band() {
        // Degree should be within 3x of the paper value for representative sets.
        for ds in [
            Dataset::ComAmazon,
            Dataset::RoadNetCa,
            Dataset::SocSlashdot0902,
        ] {
            let (v, e, _) = ds.paper_properties();
            let paper_avg = e as f64 / v as f64;
            let g = ds.generate(Scale(ds.default_scale().0 * 4), 5).graph;
            let got = g.degree_stats().avg;
            assert!(
                got > paper_avg / 3.0 && got < paper_avg * 3.0,
                "{}: paper avg {paper_avg:.1}, generated {got:.1}",
                ds.name()
            );
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = Dataset::ComAmazon.generate(Scale(64), 9);
        let b = Dataset::ComAmazon.generate(Scale(64), 9);
        assert_eq!(a.graph.adjacency().indices(), b.graph.adjacency().indices());
    }
}
