//! Plain-text edge-list IO, so generated datasets can be exported for
//! inspection or external tools, and real edge lists (SNAP format) can be
//! loaded when available.

use crate::Graph;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

/// Writes `graph` as a SNAP-style edge list: a header comment, then one
/// `u\tv` pair per stored adjacency entry.
pub fn write_edge_list(graph: &Graph, path: &Path) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut out = BufWriter::new(file);
    writeln!(
        out,
        "# pargcn edge list: n={} directed={}",
        graph.n(),
        graph.directed()
    )?;
    for (u, v, _) in graph.adjacency().iter() {
        writeln!(out, "{u}\t{v}")?;
    }
    out.flush()
}

/// Reads a SNAP-style edge list. Lines starting with `#` are ignored;
/// vertex count is `max id + 1` unless a pargcn header provides it.
pub fn read_edge_list(path: &Path, directed: bool) -> io::Result<Graph> {
    let file = std::fs::File::open(path)?;
    let reader = io::BufReader::new(file);
    let mut edges = Vec::new();
    let mut n_hint = 0usize;
    let mut line = String::new();
    let mut reader = reader;
    while reader.read_line(&mut line)? != 0 {
        let l = line.trim();
        if let Some(rest) = l.strip_prefix('#') {
            if let Some(pos) = rest.find("n=") {
                let tail = &rest[pos + 2..];
                let num: String = tail.chars().take_while(|c| c.is_ascii_digit()).collect();
                n_hint = num.parse().unwrap_or(0);
            }
        } else if !l.is_empty() {
            let mut it = l.split_whitespace();
            let u: u32 = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad edge line"))?;
            let v: u32 = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad edge line"))?;
            edges.push((u, v));
        }
        line.clear();
    }
    let n = edges
        .iter()
        .map(|&(u, v)| u.max(v) as usize + 1)
        .max()
        .unwrap_or(0)
        .max(n_hint);
    Ok(Graph::from_edges(n, directed, &edges))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_directed() {
        let g = Graph::from_edges(5, true, &[(0, 1), (2, 3), (4, 0)]);
        let dir = std::env::temp_dir().join("pargcn_io_test_directed.txt");
        write_edge_list(&g, &dir).unwrap();
        let back = read_edge_list(&dir, true).unwrap();
        assert_eq!(back.n(), 5);
        assert_eq!(back.adjacency().indices(), g.adjacency().indices());
        std::fs::remove_file(dir).ok();
    }

    #[test]
    fn roundtrip_undirected() {
        let g = Graph::from_edges(4, false, &[(0, 1), (1, 2)]);
        let dir = std::env::temp_dir().join("pargcn_io_test_undirected.txt");
        write_edge_list(&g, &dir).unwrap();
        // The file stores both directions; reading as undirected re-mirrors,
        // which is idempotent.
        let back = read_edge_list(&dir, false).unwrap();
        assert_eq!(back.num_edges(), g.num_edges());
        std::fs::remove_file(dir).ok();
    }

    #[test]
    fn header_preserves_isolated_tail_vertices() {
        let g = Graph::from_edges(10, true, &[(0, 1)]);
        let dir = std::env::temp_dir().join("pargcn_io_test_isolated.txt");
        write_edge_list(&g, &dir).unwrap();
        let back = read_edge_list(&dir, true).unwrap();
        assert_eq!(back.n(), 10);
        std::fs::remove_file(dir).ok();
    }

    #[test]
    fn rejects_garbage() {
        let dir = std::env::temp_dir().join("pargcn_io_test_garbage.txt");
        std::fs::write(&dir, "hello world\n").unwrap();
        assert!(read_edge_list(&dir, true).is_err());
        std::fs::remove_file(dir).ok();
    }
}
