//! Graph types, synthetic dataset generators, and IO for distributed GCN
//! training.
//!
//! The paper evaluates on eleven real-world graphs (its Table 1) spanning
//! four structural families: road networks (near-planar, tiny degrees),
//! social/web graphs (power-law, skewed), citation graphs (preferential
//! attachment), and co-purchasing/co-authorship graphs (overlapping
//! communities). Those datasets are not redistributable here, so
//! [`datasets`] provides deterministic synthetic generators per *family*,
//! scaled to fit a single machine while preserving directedness, average
//! degree, and skew — the properties that drive the partitioning-versus-
//! communication behaviour the paper measures (see DESIGN.md §1).

//! ```
//! use pargcn_graph::{Dataset, Scale};
//!
//! // A 1/256-scale stand-in for roadNet-CA: same family (near-planar,
//! // average degree < 3.6, no skew), deterministic in the seed.
//! let data = Dataset::RoadNetCa.generate(Scale(256), 42);
//! let stats = data.graph.degree_stats();
//! assert!(stats.avg < 3.6 && stats.skew < 3.0);
//! ```

pub mod analysis;
pub mod datasets;
pub mod gen;
pub mod graph;
pub mod io;

pub use datasets::{Dataset, GraphData, Scale};
pub use graph::{DegreeStats, Graph, SubgraphScratch};
