//! Compressed-sparse-row matrix and the SpMM kernel.
//!
//! The adjacency matrix `Â` is the only sparse matrix in GCN training
//! (paper §3.1); everything else is dense. CSR gives contiguous access to a
//! vertex's adjacency list, which is exactly the per-row task granularity
//! the paper's 1-D partitioning uses: row `A(i,:)` and the task of computing
//! `Z(i,:)` live on the same processor.

use crate::Dense;
use pargcn_util::pool::{weighted_chunks, Pool};

/// A CSR sparse `f32` matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    n_rows: usize,
    n_cols: usize,
    /// `indptr[i]..indptr[i+1]` indexes row `i`'s entries; length `n_rows+1`.
    indptr: Vec<usize>,
    /// Column indices, ascending within each row.
    indices: Vec<u32>,
    /// Values, parallel to `indices`.
    values: Vec<f32>,
}

impl Csr {
    /// Builds a CSR matrix from (row, col, value) triplets.
    ///
    /// Triplets may be unordered; duplicates are summed (the usual COO→CSR
    /// contract). Entries with value exactly `0.0` are kept if present in the
    /// input — the communication structure of the algorithm depends on the
    /// *pattern*, so callers decide whether to filter zeros.
    ///
    /// The row dimension is handled by a two-pass counting sort (count, then
    /// scatter), so the whole build is `O(nnz + n_rows)` plus a comparison
    /// sort only *within* each row — `O(nnz log(nnz/n_rows))` in aggregate
    /// instead of the `O(nnz log nnz)` a global triplet sort costs. This is
    /// the graph-load hot path for the synthetic billion-edge runs.
    ///
    /// # Panics
    /// Panics if any coordinate is out of bounds.
    pub fn from_coo(n_rows: usize, n_cols: usize, coo: Vec<(u32, u32, f32)>) -> Self {
        Self::from_coo_ref(n_rows, n_cols, &coo)
    }

    /// [`Csr::from_coo`] over a borrowed triplet slice — same output, but
    /// the caller keeps the buffer, so a mini-batch loop can refill one
    /// scratch `Vec` per batch instead of allocating a fresh one.
    pub fn from_coo_ref(n_rows: usize, n_cols: usize, coo: &[(u32, u32, f32)]) -> Self {
        // Pass 1: per-row counts (bounds are checked here, inline — no
        // separate validation sweep over the triplets).
        let mut indptr = vec![0usize; n_rows + 1];
        for &(r, c, _) in coo {
            assert!(
                (r as usize) < n_rows && (c as usize) < n_cols,
                "coo entry out of bounds"
            );
            indptr[r as usize + 1] += 1;
        }
        for i in 0..n_rows {
            indptr[i + 1] += indptr[i];
        }
        // Pass 2: scatter each triplet into its row bucket. Input order is
        // preserved within a row, so the build stays deterministic.
        let nnz = coo.len();
        let mut bucket_cols = vec![0u32; nnz];
        let mut bucket_vals = vec![0.0f32; nnz];
        let mut cursor = indptr.clone();
        for &(r, c, v) in coo {
            let slot = cursor[r as usize];
            bucket_cols[slot] = c;
            bucket_vals[slot] = v;
            cursor[r as usize] = slot + 1;
        }
        // Sort columns within each row and fold duplicates as we emit.
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        let mut scratch: Vec<(u32, f32)> = Vec::new();
        let mut out_indptr = vec![0usize; n_rows + 1];
        for i in 0..n_rows {
            let (start, end) = (indptr[i], indptr[i + 1]);
            scratch.clear();
            scratch.extend(
                bucket_cols[start..end]
                    .iter()
                    .copied()
                    .zip(bucket_vals[start..end].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let row_start = indices.len();
            for &(c, v) in &scratch {
                if indices.len() > row_start && *indices.last().unwrap() == c {
                    // Same (row, col) as previous triplet: accumulate.
                    *values.last_mut().unwrap() += v;
                } else {
                    indices.push(c);
                    values.push(v);
                }
            }
            out_indptr[i + 1] = indices.len();
        }
        Self {
            n_rows,
            n_cols,
            indptr: out_indptr,
            indices,
            values,
        }
    }

    /// Builds directly from CSR arrays.
    ///
    /// # Panics
    /// Panics if the arrays are inconsistent or column indices are not
    /// strictly ascending within a row.
    pub fn from_parts(
        n_rows: usize,
        n_cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        assert_eq!(indptr.len(), n_rows + 1, "indptr length");
        assert_eq!(indices.len(), values.len(), "indices/values length");
        assert_eq!(*indptr.last().unwrap(), indices.len(), "indptr tail");
        for i in 0..n_rows {
            assert!(indptr[i] <= indptr[i + 1], "indptr not monotone");
            let row = &indices[indptr[i]..indptr[i + 1]];
            for w in row.windows(2) {
                assert!(w[0] < w[1], "columns not strictly ascending in row {i}");
            }
            for &c in row {
                assert!((c as usize) < n_cols, "column out of bounds");
            }
        }
        Self {
            n_rows,
            n_cols,
            indptr,
            indices,
            values,
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Self {
            n_rows: n,
            n_cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    #[inline]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    #[inline]
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Column indices of row `i` (the paper's `cols(A(i,:))`).
    #[inline]
    pub fn row_indices(&self, i: usize) -> &[u32] {
        &self.indices[self.indptr[i]..self.indptr[i + 1]]
    }

    /// Values of row `i`, parallel to [`Csr::row_indices`].
    #[inline]
    pub fn row_values(&self, i: usize) -> &[f32] {
        &self.values[self.indptr[i]..self.indptr[i + 1]]
    }

    /// Number of nonzeros in row `i` — the paper's per-vertex computational
    /// weight `w(vᵢ) = |cols(A(i,:))|` (§4.3.2).
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.indptr[i + 1] - self.indptr[i]
    }

    /// Iterates `(row, col, value)` over all stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, f32)> + '_ {
        (0..self.n_rows).flat_map(move |i| {
            self.row_indices(i)
                .iter()
                .zip(self.row_values(i))
                .map(move |(&c, &v)| (i as u32, c, v))
        })
    }

    /// Transposed copy. For directed graphs the backpropagation phase uses
    /// `Âᵀ` in place of `Â` (paper §3.1).
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.n_cols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.n_cols {
            counts[i + 1] += counts[i];
        }
        let indptr = counts.clone();
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0.0f32; self.nnz()];
        let mut cursor = counts;
        for i in 0..self.n_rows {
            for (&c, &v) in self.row_indices(i).iter().zip(self.row_values(i)) {
                let slot = cursor[c as usize];
                indices[slot] = i as u32;
                values[slot] = v;
                cursor[c as usize] += 1;
            }
        }
        Csr {
            n_rows: self.n_cols,
            n_cols: self.n_rows,
            indptr,
            indices,
            values,
        }
    }

    /// SpMM: `self × h` where `h` is dense. `self` is `m×k`, `h` is `k×d`.
    pub fn spmm(&self, h: &Dense) -> Dense {
        let mut out = Dense::zeros(self.n_rows, h.cols());
        self.spmm_into(h, &mut out, false);
        out
    }

    /// `out (+)= self × h`. With `accumulate`, adds into `out` — the shape of
    /// Algorithm 1 line 9, where remote contributions `Âₘ·H_{nm}` are folded
    /// into the partially-computed local product.
    pub fn spmm_into(&self, h: &Dense, out: &mut Dense, accumulate: bool) {
        assert_eq!(self.n_cols, h.rows(), "spmm dimension mismatch");
        assert_eq!(out.rows(), self.n_rows, "spmm output rows mismatch");
        assert_eq!(out.cols(), h.cols(), "spmm output cols mismatch");
        if !accumulate {
            out.fill_zero();
        }
        let d = h.cols();
        for i in 0..self.n_rows {
            let cols = self.row_indices(i);
            let vals = self.row_values(i);
            let out_row = &mut out.data_mut()[i * d..(i + 1) * d];
            for (&c, &v) in cols.iter().zip(vals) {
                let h_row = h.row(c as usize);
                for (o, &x) in out_row.iter_mut().zip(h_row) {
                    *o += v * x;
                }
            }
        }
    }

    /// Pooled [`Csr::spmm`]; see [`Csr::spmm_into_pool`].
    pub fn spmm_pool(&self, h: &Dense, pool: &Pool) -> Dense {
        let mut out = Dense::zeros(self.n_rows, h.cols());
        self.spmm_into_pool(h, &mut out, true, pool);
        out
    }

    /// Pooled [`Csr::spmm_into`]: output rows are split across the pool's
    /// threads by *nonzero count* (via [`weighted_chunks`] over `indptr`),
    /// so a few dense hub rows don't serialize the kernel.
    ///
    /// Each output element is produced by exactly one thread, which
    /// accumulates that row's nonzero terms in the **canonical order** —
    /// one accumulator per element, terms added in ascending CSR position.
    /// Every SpMM kernel in this crate (this one, the serial
    /// [`Csr::spmm_into`], and the tiled [`crate::spmm_kernel::spmm_into`])
    /// realizes that same order, so all of them are bitwise identical to
    /// each other at any thread count (see DESIGN.md §10).
    pub fn spmm_into_pool(&self, h: &Dense, out: &mut Dense, accumulate: bool, pool: &Pool) {
        let d = h.cols();
        if pool.threads() == 1 || self.nnz() * d < crate::ctx::MIN_PARALLEL_WORK {
            self.spmm_into(h, out, accumulate);
            return;
        }
        assert_eq!(self.n_cols, h.rows(), "spmm dimension mismatch");
        assert_eq!(out.rows(), self.n_rows, "spmm output rows mismatch");
        assert_eq!(out.cols(), h.cols(), "spmm output cols mismatch");
        if !accumulate {
            out.fill_zero();
        }
        let ranges = weighted_chunks(&self.indptr, pool.threads());
        pool.run_disjoint_rows(out.data_mut(), d, &ranges, |chunk, out_rows| {
            let rows = &ranges[chunk];
            for i in rows.clone() {
                let cols = self.row_indices(i);
                let vals = self.row_values(i);
                let local = i - rows.start;
                let out_row = &mut out_rows[local * d..(local + 1) * d];
                for (&c, &v) in cols.iter().zip(vals) {
                    let h_row = h.row(c as usize);
                    for (o, &x) in out_row.iter_mut().zip(h_row) {
                        *o += v * x;
                    }
                }
            }
        });
    }

    /// Extracts the submatrix formed by the given rows, keeping the full
    /// column space. This is the paper's `Aₘ ∈ R^{n×n}` — a processor's
    /// local row block, still indexed by global columns.
    pub fn select_rows(&self, rows: &[u32]) -> Csr {
        let mut indptr = Vec::with_capacity(rows.len() + 1);
        indptr.push(0);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for &r in rows {
            indices.extend_from_slice(self.row_indices(r as usize));
            values.extend_from_slice(self.row_values(r as usize));
            indptr.push(indices.len());
        }
        Csr {
            n_rows: rows.len(),
            n_cols: self.n_cols,
            indptr,
            indices,
            values,
        }
    }

    /// Keeps only entries whose column passes `keep`, preserving row structure.
    pub fn filter_cols(&self, keep: impl Fn(u32) -> bool) -> Csr {
        let mut indptr = Vec::with_capacity(self.n_rows + 1);
        indptr.push(0);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for i in 0..self.n_rows {
            for (&c, &v) in self.row_indices(i).iter().zip(self.row_values(i)) {
                if keep(c) {
                    indices.push(c);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        Csr {
            n_rows: self.n_rows,
            n_cols: self.n_cols,
            indptr,
            indices,
            values,
        }
    }

    /// Renumbers column indices through `map` (new column count `n_cols`).
    /// Columns mapped to `u32::MAX` are dropped.
    ///
    /// Used when building per-rank local blocks whose columns index into a
    /// compact received-row buffer rather than the global vertex space.
    pub fn remap_cols(&self, map: &[u32], n_cols: usize) -> Csr {
        let mut indptr = Vec::with_capacity(self.n_rows + 1);
        indptr.push(0);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for i in 0..self.n_rows {
            let start = indices.len();
            for (&c, &v) in self.row_indices(i).iter().zip(self.row_values(i)) {
                let m = map[c as usize];
                if m != u32::MAX {
                    indices.push(m);
                    values.push(v);
                }
            }
            // Keep ascending order within the row if the map is not monotone.
            let row_idx = &mut indices[start..];
            let row_val = &mut values[start..];
            let mut perm: Vec<usize> = (0..row_idx.len()).collect();
            perm.sort_unstable_by_key(|&k| row_idx[k]);
            let sorted_idx: Vec<u32> = perm.iter().map(|&k| row_idx[k]).collect();
            let sorted_val: Vec<f32> = perm.iter().map(|&k| row_val[k]).collect();
            row_idx.copy_from_slice(&sorted_idx);
            row_val.copy_from_slice(&sorted_val);
            indptr.push(indices.len());
        }
        Csr {
            n_rows: self.n_rows,
            n_cols,
            indptr,
            indices,
            values,
        }
    }

    /// The set of distinct columns with at least one nonzero, ascending —
    /// the paper's `cols(Aₘ)` used to derive the receive sets (Eq. 9).
    pub fn col_support(&self) -> Vec<u32> {
        let mut seen = vec![false; self.n_cols];
        for &c in &self.indices {
            seen[c as usize] = true;
        }
        seen.iter()
            .enumerate()
            .filter_map(|(i, &s)| s.then_some(i as u32))
            .collect()
    }

    /// Densifies; test/debug helper for small matrices.
    pub fn to_dense(&self) -> Dense {
        let mut out = Dense::zeros(self.n_rows, self.n_cols);
        for (r, c, v) in self.iter() {
            out.set(r as usize, c as usize, out.get(r as usize, c as usize) + v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargcn_util::rng::StdRng;
    use pargcn_util::rng::{Rng, SeedableRng};

    fn random_csr(rng: &mut StdRng, m: usize, n: usize, density: f64) -> Csr {
        let mut coo = Vec::new();
        for r in 0..m {
            for c in 0..n {
                if rng.gen_bool(density) {
                    coo.push((r as u32, c as u32, rng.gen_range(-1.0..1.0)));
                }
            }
        }
        Csr::from_coo(m, n, coo)
    }

    #[test]
    fn from_coo_sorts_and_sums_duplicates() {
        let a = Csr::from_coo(
            2,
            3,
            vec![(1, 2, 1.0), (0, 1, 2.0), (1, 2, 0.5), (0, 0, 1.0)],
        );
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.row_indices(0), &[0, 1]);
        assert_eq!(a.row_indices(1), &[2]);
        assert_eq!(a.row_values(1), &[1.5]);
    }

    #[test]
    fn spmm_matches_dense_multiply() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = random_csr(&mut rng, 9, 7, 0.3);
        let h = Dense::random(7, 4, &mut rng);
        assert!(a.spmm(&h).approx_eq(&a.to_dense().matmul(&h), 1e-5));
    }

    #[test]
    fn spmm_into_accumulates() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = random_csr(&mut rng, 5, 5, 0.4);
        let h = Dense::random(5, 3, &mut rng);
        let mut out = a.spmm(&h);
        a.spmm_into(&h, &mut out, true);
        let mut twice = a.spmm(&h);
        twice.add_assign(&a.spmm(&h));
        assert!(out.approx_eq(&twice, 1e-5));
    }

    #[test]
    fn transpose_is_involution_and_matches_dense() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = random_csr(&mut rng, 6, 4, 0.35);
        assert_eq!(a, a.transpose().transpose());
        assert!(a
            .transpose()
            .to_dense()
            .approx_eq(&a.to_dense().transpose(), 0.0));
    }

    #[test]
    fn select_rows_keeps_global_columns() {
        let a = Csr::from_coo(
            4,
            4,
            vec![(0, 1, 1.0), (1, 3, 2.0), (2, 0, 3.0), (3, 2, 4.0)],
        );
        let sub = a.select_rows(&[1, 3]);
        assert_eq!(sub.n_rows(), 2);
        assert_eq!(sub.n_cols(), 4);
        assert_eq!(sub.row_indices(0), &[3]);
        assert_eq!(sub.row_indices(1), &[2]);
    }

    #[test]
    fn col_support_finds_used_columns() {
        let a = Csr::from_coo(3, 5, vec![(0, 4, 1.0), (1, 1, 1.0), (2, 4, 1.0)]);
        assert_eq!(a.col_support(), vec![1, 4]);
    }

    #[test]
    fn remap_cols_compacts_and_sorts() {
        let a = Csr::from_coo(1, 4, vec![(0, 0, 1.0), (0, 2, 2.0), (0, 3, 3.0)]);
        // Map 0→2, 2→0, 3→dropped.
        let map = vec![2, u32::MAX, 0, u32::MAX];
        let b = a.remap_cols(&map, 3);
        assert_eq!(b.row_indices(0), &[0, 2]);
        assert_eq!(b.row_values(0), &[2.0, 1.0]);
    }

    #[test]
    fn identity_spmm_is_noop() {
        let mut rng = StdRng::seed_from_u64(10);
        let h = Dense::random(6, 3, &mut rng);
        assert!(Csr::identity(6).spmm(&h).approx_eq(&h, 0.0));
    }

    #[test]
    fn empty_rows_are_fine() {
        let a = Csr::from_coo(5, 5, vec![(4, 0, 1.0)]);
        assert_eq!(a.row_nnz(0), 0);
        assert_eq!(a.row_nnz(4), 1);
        let h = Dense::zeros(5, 2);
        assert_eq!(a.spmm(&h).rows(), 5);
    }
}
