//! GCN adjacency normalization: `Â = D^{-1/2} (A + I) D^{-1/2}`.
//!
//! `Ã = A + I` adds self loops, and `D(i,i) = Σⱼ Ã(i,j)` is the diagonal
//! degree matrix of `Ã` (paper §3.1). Because every diagonal entry of `Ã`
//! is nonzero, every vertex `vⱼ` appears in the pins of its own column net
//! `nⱼ` — a structural fact the hypergraph model's volume argument relies on
//! (§4.3.2: "at least one part in Λ(nⱼ) stores vertex vⱼ").

use crate::Csr;

/// Builds the normalized adjacency matrix `Â` from a raw (pattern) adjacency.
///
/// `a` holds the graph's edges as an `n × n` sparse matrix whose values are
/// edge weights (typically 1.0). Self loops in the input are coalesced with
/// the added identity. For a directed graph, pass the adjacency as-is; the
/// caller transposes `Â` for backpropagation when needed.
pub fn normalize_adjacency(a: &Csr) -> Csr {
    assert_eq!(a.n_rows(), a.n_cols(), "adjacency must be square");
    let n = a.n_rows();
    // Ã = A + I, coalescing any existing self loops.
    let mut coo: Vec<(u32, u32, f32)> = a.iter().collect();
    coo.extend((0..n as u32).map(|i| (i, i, 1.0)));
    let tilde = Csr::from_coo(n, n, coo);

    // Row-sum degrees of Ã. For a directed graph this is the out-degree row
    // sum, matching the paper's D(i,i) = Σⱼ Ã(i,j).
    let mut deg = vec![0.0f64; n];
    for (r, _c, v) in tilde.iter() {
        deg[r as usize] += v as f64;
    }
    let inv_sqrt: Vec<f32> = deg
        .iter()
        .map(|&d| {
            if d > 0.0 {
                (1.0 / d.sqrt()) as f32
            } else {
                0.0
            }
        })
        .collect();

    let scaled: Vec<(u32, u32, f32)> = tilde
        .iter()
        .map(|(r, c, v)| (r, c, inv_sqrt[r as usize] * v * inv_sqrt[c as usize]))
        .collect();
    Csr::from_coo(n, n, scaled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_has_self_loops() {
        // Path graph 0-1-2 (undirected, symmetric entries).
        let a = Csr::from_coo(
            3,
            3,
            vec![(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)],
        );
        let norm = normalize_adjacency(&a);
        for i in 0..3 {
            assert!(
                norm.row_indices(i).contains(&(i as u32)),
                "missing self loop at {i}"
            );
        }
    }

    #[test]
    fn symmetric_input_gives_symmetric_output() {
        let a = Csr::from_coo(
            4,
            4,
            vec![
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (2, 3, 1.0),
                (3, 2, 1.0),
            ],
        );
        let norm = normalize_adjacency(&a);
        let d = norm.to_dense();
        assert!(d.approx_eq(&d.transpose(), 1e-6));
    }

    #[test]
    fn values_match_hand_computation() {
        // Single undirected edge 0-1. Ã has rows [1,1] so D = diag(2,2),
        // Â(0,0) = 1/2, Â(0,1) = 1/2.
        let a = Csr::from_coo(2, 2, vec![(0, 1, 1.0), (1, 0, 1.0)]);
        let norm = normalize_adjacency(&a).to_dense();
        for (i, j) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            assert!((norm.get(i, j) - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn existing_self_loops_coalesce() {
        let a = Csr::from_coo(2, 2, vec![(0, 0, 1.0), (0, 1, 1.0), (1, 0, 1.0)]);
        let norm = normalize_adjacency(&a);
        // Row 0 of Ã is [2, 1]: degree 3.
        let d = norm.to_dense();
        assert!((d.get(0, 0) - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn isolated_vertex_gets_unit_self_loop() {
        let a = Csr::from_coo(2, 2, vec![(0, 1, 1.0), (1, 0, 1.0)]);
        // Add an isolated third vertex.
        let a3 = Csr::from_coo(3, 3, a.iter().collect());
        let norm = normalize_adjacency(&a3).to_dense();
        assert!((norm.get(2, 2) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn spectral_radius_at_most_one_on_small_graph() {
        // Â of an undirected graph has eigenvalues in [-1, 1]; verify via
        // power iteration that ‖Âx‖ ≤ ‖x‖ approximately holds after many steps.
        let a = Csr::from_coo(
            4,
            4,
            vec![
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (2, 3, 1.0),
                (3, 2, 1.0),
                (3, 0, 1.0),
                (0, 3, 1.0),
            ],
        );
        let norm = normalize_adjacency(&a);
        let mut x = crate::Dense::from_vec(4, 1, vec![1.0, -0.5, 0.25, 0.7]);
        for _ in 0..50 {
            let nx = norm.spmm(&x);
            assert!(nx.frobenius_norm() <= x.frobenius_norm() * (1.0 + 1e-5));
            x = nx;
        }
    }
}
