//! Row-block × column-tile SpMM kernel.
//!
//! The naive [`crate::Csr::spmm_into`] is a scalar row-wise axpy: every
//! nonzero re-reads and re-writes the whole `d`-wide output row from
//! memory. This kernel instead walks each row's nonzeros once per
//! **column tile** of the dense operand, holding the tile's partial sums
//! in a register accumulator array across the entire nonzero loop — the
//! output row is loaded and stored once per tile instead of once per
//! nonzero. Tiles are taken greedily wide (64, then 32, then 16 columns,
//! each a monomorphized kernel with constant loop bounds) so the GCN
//! feature widths {16, 32, 64, 128} need at most two passes over a row's
//! nonzeros; narrow tiles would multiply the (random-access) `H`-row
//! gathers instead. Rows are visited in small blocks so neighbouring
//! rows (which share many columns on real graphs) reuse the same `H`
//! tile columns while they are cache-hot.
//!
//! **Bitwise contract**: splitting a row's `d` output columns into tiles
//! never regroups any sums — each output element still accumulates its
//! nonzero terms in ascending CSR order with a single accumulator, which
//! is exactly the naive kernel's order. Blocked ≡ naive bit-for-bit on
//! every input, at every thread count (see DESIGN.md §10).

use crate::csr::Csr;
use crate::dense::Dense;
use pargcn_util::pool::{weighted_chunks, Pool};

/// Rows per block: consecutive rows processed tile-by-tile together so
/// their (overlapping) column accesses reuse hot cache lines.
const RB: usize = 8;

/// One full-width tile pass over a single row's nonzeros: `W` constant
/// so the accumulator array stays in registers (or at worst L1 spill
/// slots) and the inner loop fully vectorizes.
#[inline]
fn tile_pass<const W: usize>(
    cols: &[u32],
    vals: &[f32],
    h: &Dense,
    j0: usize,
    out_row: &mut [f32],
    accumulate: bool,
) {
    let mut acc = [0.0f32; W];
    if accumulate {
        acc.copy_from_slice(out_row);
    }
    for (&c, &v) in cols.iter().zip(vals) {
        let hr: &[f32; W] = h.row(c as usize)[j0..j0 + W].try_into().unwrap();
        for jj in 0..W {
            acc[jj] += v * hr[jj];
        }
    }
    out_row.copy_from_slice(&acc);
}

/// Dynamic-width edge pass for the sub-16 remainder columns.
#[inline]
fn edge_pass(
    cols: &[u32],
    vals: &[f32],
    h: &Dense,
    j0: usize,
    out_row: &mut [f32],
    accumulate: bool,
) {
    let w = out_row.len();
    let mut acc = [0.0f32; 16];
    if accumulate {
        acc[..w].copy_from_slice(out_row);
    }
    for (&c, &v) in cols.iter().zip(vals) {
        let hr = &h.row(c as usize)[j0..j0 + w];
        for (jj, &x) in hr.iter().enumerate() {
            acc[jj] += v * x;
        }
    }
    out_row.copy_from_slice(&acc[..w]);
}

/// Processes rows `[row0, row0+m)` of `a`, writing `m` output rows
/// starting at `out[0]` (row-major, width `d = h.cols()`).
fn spmm_rows(a: &Csr, row0: usize, m: usize, h: &Dense, out: &mut [f32], accumulate: bool) {
    let d = h.cols();
    let mut ib = 0;
    while ib < m {
        let ie = (ib + RB).min(m);
        let mut j0 = 0;
        while j0 < d {
            // Greedy widest tile: fewer passes over each row's nonzeros
            // means fewer repeat gathers of the same (random) `H` rows.
            let w = match d - j0 {
                rem if rem >= 64 => 64,
                rem if rem >= 32 => 32,
                rem if rem >= 16 => 16,
                rem => rem,
            };
            for li in ib..ie {
                let cols = a.row_indices(row0 + li);
                let vals = a.row_values(row0 + li);
                let out_row = &mut out[li * d + j0..li * d + j0 + w];
                match w {
                    64 => tile_pass::<64>(cols, vals, h, j0, out_row, accumulate),
                    32 => tile_pass::<32>(cols, vals, h, j0, out_row, accumulate),
                    16 => tile_pass::<16>(cols, vals, h, j0, out_row, accumulate),
                    _ => edge_pass(cols, vals, h, j0, out_row, accumulate),
                }
            }
            j0 += w;
        }
        ib = ie;
    }
}

/// Blocked [`Csr::spmm_into`]: `out (+)= a × h`, split across the pool's
/// threads by nonzero count exactly like the naive pooled kernel (same
/// [`weighted_chunks`], same `MIN_PARALLEL_WORK` cutoff).
pub fn spmm_into(a: &Csr, h: &Dense, out: &mut Dense, accumulate: bool, pool: &Pool) {
    assert_eq!(a.n_cols(), h.rows(), "spmm dimension mismatch");
    assert_eq!(out.rows(), a.n_rows(), "spmm output rows mismatch");
    assert_eq!(out.cols(), h.cols(), "spmm output cols mismatch");
    let d = h.cols();
    if pool.threads() == 1 || a.nnz() * d < crate::ctx::MIN_PARALLEL_WORK {
        spmm_rows(a, 0, a.n_rows(), h, out.data_mut(), accumulate);
        return;
    }
    let ranges = weighted_chunks(a.indptr(), pool.threads());
    pool.run_disjoint_rows(out.data_mut(), d, &ranges, |chunk, out_rows| {
        let rows = &ranges[chunk];
        spmm_rows(a, rows.start, rows.len(), h, out_rows, accumulate);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargcn_util::rng::{Rng, SeedableRng, StdRng};

    fn bits(d: &Dense) -> Vec<u32> {
        d.data().iter().map(|v| v.to_bits()).collect()
    }

    fn random_csr(rows: usize, cols: usize, per_row: usize, seed: u64) -> Csr {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut triplets = Vec::new();
        for i in 0..rows {
            for _ in 0..per_row {
                let c = rng.gen_range(0..cols.max(1)) as u32;
                triplets.push((i as u32, c, rng.gen_range(-1.0..=1.0)));
            }
        }
        Csr::from_coo(rows, cols, triplets)
    }

    #[test]
    fn blocked_spmm_matches_naive_bitwise() {
        let pool = Pool::new(1);
        let mut rng = StdRng::seed_from_u64(9);
        for (rows, cols, d) in [(40, 30, 16), (17, 23, 5), (8, 8, 33), (3, 50, 1)] {
            let a = random_csr(rows, cols, 4, rows as u64);
            let h = Dense::random(cols, d, &mut rng);
            let naive = a.spmm(&h);
            let mut blocked = Dense::zeros(rows, d);
            spmm_into(&a, &h, &mut blocked, false, &pool);
            assert_eq!(bits(&naive), bits(&blocked), "{rows}x{cols} d={d}");

            // Accumulating path, seeded with a sum-reachable value.
            let mut naive_acc = naive.clone();
            a.spmm_into(&h, &mut naive_acc, true);
            spmm_into(&a, &h, &mut blocked, true, &pool);
            assert_eq!(bits(&naive_acc), bits(&blocked));
        }
    }

    #[test]
    fn empty_and_zero_row_matrices() {
        let pool = Pool::new(2);
        let a = Csr::from_coo(0, 5, vec![]);
        let h = Dense::zeros(5, 7);
        let mut out = Dense::zeros(0, 7);
        spmm_into(&a, &h, &mut out, false, &pool);
        let a = Csr::from_coo(4, 5, vec![]); // rows but no nonzeros
        let mut out = Dense::zeros(4, 7);
        spmm_into(&a, &h, &mut out, false, &pool);
        assert!(out.data().iter().all(|&v| v == 0.0));
    }
}
