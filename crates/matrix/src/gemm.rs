//! Cache-blocked GEMM engine shared by every dense-matmul variant.
//!
//! The classic packing scheme (Goto & van de Geijn): the right-hand
//! operand is copied once per call into `NR`-wide **column panels** laid
//! out k-major, so the micro-kernel's inner loop reads one contiguous
//! `NR`-float line per `k` step regardless of the original leading
//! dimension. Over the panels runs an `MR×NR` register-tiled micro-kernel
//! holding all `MR·NR` accumulators in registers across the whole `k`
//! loop — the naive kernels instead re-read and re-write the output row
//! from memory on every `k` step.
//!
//! **Bitwise contract** (DESIGN.md §10): every output element is produced
//! by a single accumulator summing its `k` terms in strictly ascending
//! order — exactly the naive kernels' per-element order. The naive
//! kernels' `a == 0.0 → skip` shortcut is a bitwise no-op on the data the
//! trainers produce (a `±0.0·b` term never changes an accumulator that
//! is not `-0.0`, and ascending sums started from `+0.0` can never reach
//! `-0.0`), so blocked and naive agree bit-for-bit, at every thread
//! count. The property suite (`tests/kernel_engine.rs`) pins this across
//! adversarial shapes.
//!
//! The transposed-operand variants share the machinery where it helps:
//! `A·B` packs `B` directly and `A·Bᵀ` packs `B`'s columns during the
//! copy (a transposing pack) — the panel buffer lives in [`PackBuf`] and
//! grows once to the largest shape it ever sees, so steady-state calls
//! allocate nothing. `Aᵀ·B` (the `ΔW` gradient shape: a huge reduction
//! dimension onto a tiny output) is different: packing either operand
//! would copy more memory than the whole multiply reads, so it gets its
//! own pack-free kernel — an input-row-blocked outer product with
//! register-tiled output columns (see [`matmul_at_into`]).

use crate::dense::Dense;
use pargcn_util::pool::{even_chunks, Pool};

/// Micro-kernel output-tile height (rows of `A` per tile).
pub const MR: usize = 4;
/// Micro-kernel output-tile width (columns of `B` per panel).
pub const NR: usize = 8;

/// Grow-once packing scratch. One per [`crate::ComputeCtx`]; reused by
/// every blocked call, so after the first pass over the largest operand
/// shapes the engine is allocation-free.
#[derive(Debug, Default)]
pub struct PackBuf {
    /// The B operand packed into `NR`-wide column panels (k-major).
    panels: Vec<f32>,
}

impl PackBuf {
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows the panel buffer to at least the given float count. Called
    /// once at workspace setup (`EpochWorkspace::new`) so that no
    /// steady-state kernel call ever needs to grow it.
    pub fn reserve(&mut self, panel_floats: usize) {
        if self.panels.len() < panel_floats {
            self.panels.resize(panel_floats, 0.0);
        }
    }
}

/// Packs `b` (`k×n`, row-major) into column panels: panel `jp` holds
/// columns `[jp, jp+w)` contiguously k-major at offset `jp*k`.
fn pack_b(b: &[f32], k: usize, n: usize, panels: &mut Vec<f32>) {
    if panels.len() < k * n {
        panels.resize(k * n, 0.0);
    }
    let mut jp = 0;
    while jp < n {
        let w = NR.min(n - jp);
        let dst = &mut panels[jp * k..jp * k + k * w];
        for kk in 0..k {
            dst[kk * w..kk * w + w].copy_from_slice(&b[kk * n + jp..kk * n + jp + w]);
        }
        jp += w;
    }
}

/// Transposing pack: treats `b` (`n×k`, row-major) as its transpose
/// `Bᵀ` (`k×n`) and packs that into column panels — the `A·Bᵀ` variant
/// never materializes `Bᵀ`.
fn pack_bt(b: &[f32], n: usize, k: usize, panels: &mut Vec<f32>) {
    if panels.len() < k * n {
        panels.resize(k * n, 0.0);
    }
    let mut jp = 0;
    while jp < n {
        let w = NR.min(n - jp);
        let dst = &mut panels[jp * k..jp * k + k * w];
        for kk in 0..k {
            for jj in 0..w {
                dst[kk * w + jj] = b[(jp + jj) * k + kk];
            }
        }
        jp += w;
    }
}

/// Input rows per block of the `Aᵀ·B` outer-product kernel: the register
/// accumulators for one output tile persist across this many reduction
/// steps before spilling back to the (cache-hot) output.
const AT_IB: usize = 16;

/// One `W`-wide output-column tile of `AT_IB` (or fewer) outer-product
/// updates: `acc[jj] (+)= a[i][j] · b[i][n0+jj]` for `i ∈ [i0, ie)`,
/// ascending. `W` is constant so the accumulators stay in registers and
/// the body vectorizes. The `aij == 0.0` skip mirrors the naive kernel's
/// control flow exactly, so the two are bitwise identical even on
/// non-finite inputs.
#[allow(clippy::too_many_arguments)]
#[inline]
fn at_tile_pass<const W: usize>(
    a: &[f32],
    m: usize,
    j: usize,
    b: &[f32],
    n: usize,
    i0: usize,
    ie: usize,
    n0: usize,
    out_row: &mut [f32],
) {
    let mut acc: [f32; W] = out_row.try_into().unwrap();
    for i in i0..ie {
        let aij = a[i * m + j];
        if aij == 0.0 {
            continue;
        }
        let br: &[f32; W] = b[i * n + n0..i * n + n0 + W].try_into().unwrap();
        for jj in 0..W {
            acc[jj] += aij * br[jj];
        }
    }
    out_row.copy_from_slice(&acc);
}

/// Dynamic-width edge tile for the sub-16 remainder columns.
#[allow(clippy::too_many_arguments)]
#[inline]
fn at_edge_pass(
    a: &[f32],
    m: usize,
    j: usize,
    b: &[f32],
    n: usize,
    i0: usize,
    ie: usize,
    n0: usize,
    out_row: &mut [f32],
) {
    let w = out_row.len();
    let mut acc = [0.0f32; 16];
    acc[..w].copy_from_slice(out_row);
    for i in i0..ie {
        let aij = a[i * m + j];
        if aij == 0.0 {
            continue;
        }
        let br = &b[i * n + n0..i * n + n0 + w];
        for (jj, &bv) in br.iter().enumerate() {
            acc[jj] += aij * bv;
        }
    }
    out_row.copy_from_slice(&acc[..w]);
}

/// `Aᵀ·B` over output rows `js` (= columns of `a`): for each block of
/// `AT_IB` input rows, sweep the owned output rows tile by tile, keeping
/// each tile's partial sums in registers across the block. The whole
/// output stays cache-hot (it is `a.cols × b.cols` — feature-sized), both
/// inputs are streamed through exactly once, and every output element
/// still sums its terms in ascending input-row order — the naive
/// [`Dense::matmul_at`] order, bit for bit.
fn at_rows(
    a: &[f32],
    m: usize,
    b: &[f32],
    n: usize,
    r: usize,
    js: std::ops::Range<usize>,
    out_rows: &mut [f32],
) {
    for v in out_rows.iter_mut() {
        *v = 0.0;
    }
    let mut i0 = 0;
    while i0 < r {
        let ie = (i0 + AT_IB).min(r);
        for j in js.clone() {
            let local = j - js.start;
            let mut n0 = 0;
            while n0 < n {
                let w = match n - n0 {
                    rem if rem >= 64 => 64,
                    rem if rem >= 32 => 32,
                    rem if rem >= 16 => 16,
                    rem => rem,
                };
                let out_row = &mut out_rows[local * n + n0..local * n + n0 + w];
                match w {
                    64 => at_tile_pass::<64>(a, m, j, b, n, i0, ie, n0, out_row),
                    32 => at_tile_pass::<32>(a, m, j, b, n, i0, ie, n0, out_row),
                    16 => at_tile_pass::<16>(a, m, j, b, n, i0, ie, n0, out_row),
                    _ => at_edge_pass(a, m, j, b, n, i0, ie, n0, out_row),
                }
                n0 += w;
            }
        }
        i0 = ie;
    }
}

/// Full `MR×NR` tile: all 32 accumulators live in registers across the
/// whole `k` loop; the loop bounds are compile-time constants so the body
/// vectorizes. `a` starts at the tile's first row (stride `lda`); `out`
/// starts at the tile's first output row (stride `ldc`, column offset
/// `j0`). Each accumulator sums its terms in ascending `kk` — the
/// bitwise-canonical order.
#[allow(clippy::too_many_arguments)]
#[inline]
fn micro_full(
    a: &[f32],
    lda: usize,
    panel: &[f32],
    k: usize,
    out: &mut [f32],
    ldc: usize,
    j0: usize,
    accumulate: bool,
) {
    let mut acc = [[0.0f32; NR]; MR];
    if accumulate {
        for (ii, acc_row) in acc.iter_mut().enumerate() {
            acc_row.copy_from_slice(&out[ii * ldc + j0..ii * ldc + j0 + NR]);
        }
    }
    for kk in 0..k {
        let bp: &[f32; NR] = panel[kk * NR..kk * NR + NR].try_into().unwrap();
        for (ii, acc_row) in acc.iter_mut().enumerate() {
            let aik = a[ii * lda + kk];
            for jj in 0..NR {
                acc_row[jj] += aik * bp[jj];
            }
        }
    }
    for (ii, acc_row) in acc.iter().enumerate() {
        out[ii * ldc + j0..ii * ldc + j0 + NR].copy_from_slice(acc_row);
    }
}

/// Remainder tile (`mr ≤ MR` rows, `w ≤ NR` columns) with runtime
/// bounds; same register accumulators and the same ascending-`kk` order.
#[allow(clippy::too_many_arguments)]
#[inline]
fn micro_edge(
    a: &[f32],
    lda: usize,
    mr: usize,
    panel: &[f32],
    w: usize,
    k: usize,
    out: &mut [f32],
    ldc: usize,
    j0: usize,
    accumulate: bool,
) {
    let mut acc = [[0.0f32; NR]; MR];
    if accumulate {
        for (ii, acc_row) in acc.iter_mut().enumerate().take(mr) {
            acc_row[..w].copy_from_slice(&out[ii * ldc + j0..ii * ldc + j0 + w]);
        }
    }
    for kk in 0..k {
        let bp = &panel[kk * w..kk * w + w];
        for (ii, acc_row) in acc.iter_mut().enumerate().take(mr) {
            let aik = a[ii * lda + kk];
            for (jj, &bv) in bp.iter().enumerate() {
                acc_row[jj] += aik * bv;
            }
        }
    }
    for (ii, acc_row) in acc.iter().enumerate().take(mr) {
        out[ii * ldc + j0..ii * ldc + j0 + w].copy_from_slice(&acc_row[..w]);
    }
}

/// Runs the micro-kernels over `m` consecutive rows of `a` (starting at
/// its first element, stride `lda`) against pre-packed panels, writing
/// `m×n` output rows starting at `out[0]`. The unit of work a pool chunk
/// executes; chunk boundaries only regroup rows and per-element sums are
/// row-independent, so splitting is bitwise invisible.
#[allow(clippy::too_many_arguments)]
fn gemm_rows(
    a: &[f32],
    lda: usize,
    m: usize,
    k: usize,
    panels: &[f32],
    n: usize,
    out: &mut [f32],
    accumulate: bool,
) {
    let mut i0 = 0;
    while i0 < m {
        let mr = MR.min(m - i0);
        let a_tile = &a[i0 * lda..];
        let mut jp = 0;
        while jp < n {
            let w = NR.min(n - jp);
            let panel = &panels[jp * k..jp * k + k * w];
            let out_tile = &mut out[i0 * n..];
            if mr == MR && w == NR {
                micro_full(a_tile, lda, panel, k, out_tile, n, jp, accumulate);
            } else {
                micro_edge(a_tile, lda, mr, panel, w, k, out_tile, n, jp, accumulate);
            }
            jp += w;
        }
        i0 += mr;
    }
}

/// Blocked `out (+)= A·panels` over a whole `m×n` output, split across
/// the pool's threads by output rows exactly like the naive `_pool`
/// kernels (same `MIN_PARALLEL_WORK` cutoff, same `even_chunks`).
#[allow(clippy::too_many_arguments)]
fn gemm_with_panels(
    a: &[f32],
    lda: usize,
    m: usize,
    k: usize,
    panels: &[f32],
    n: usize,
    out: &mut [f32],
    accumulate: bool,
    pool: &Pool,
) {
    if pool.threads() == 1 || m * k * n < crate::ctx::MIN_PARALLEL_WORK {
        gemm_rows(a, lda, m, k, panels, n, out, accumulate);
        return;
    }
    let ranges = even_chunks(m, pool.threads());
    pool.run_disjoint_rows(out, n, &ranges, |chunk, out_rows| {
        let rows = &ranges[chunk];
        gemm_rows(
            &a[rows.start * lda..],
            lda,
            rows.len(),
            k,
            panels,
            n,
            out_rows,
            accumulate,
        );
    });
}

/// Blocked [`Dense::matmul_into`]: `out (+)= a × b`.
pub fn matmul_into(
    a: &Dense,
    b: &Dense,
    out: &mut Dense,
    accumulate: bool,
    pack: &mut PackBuf,
    pool: &Pool,
) {
    assert_eq!(a.cols(), b.rows(), "matmul dimension mismatch");
    assert_eq!(out.rows(), a.rows(), "matmul output rows mismatch");
    assert_eq!(out.cols(), b.cols(), "matmul output cols mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    pack_b(b.data(), k, n, &mut pack.panels);
    let panels = &pack.panels[..k * n];
    gemm_with_panels(
        a.data(),
        k,
        m,
        k,
        panels,
        n,
        out.data_mut(),
        accumulate,
        pool,
    );
}

/// Blocked [`Dense::matmul_bt_into`]: `out = a × bᵀ` (`a` is `m×k`, `b`
/// is `n×k`). The transpose happens inside the pack — no `Bᵀ` is ever
/// materialized.
pub fn matmul_bt_into(a: &Dense, b: &Dense, out: &mut Dense, pack: &mut PackBuf, pool: &Pool) {
    assert_eq!(a.cols(), b.cols(), "matmul_bt dimension mismatch");
    assert_eq!(
        (out.rows(), out.cols()),
        (a.rows(), b.rows()),
        "matmul_bt_into output shape mismatch"
    );
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    pack_bt(b.data(), n, k, &mut pack.panels);
    let panels = &pack.panels[..k * n];
    gemm_with_panels(a.data(), k, m, k, panels, n, out.data_mut(), false, pool);
}

/// Blocked [`Dense::matmul_at_into`]: `out = aᵀ × b` (`a` is `r×m`, `b`
/// is `r×n`, result `m×n`). Pack-free input-row-blocked outer product
/// (see [`at_rows`]); parallelism splits the output rows exactly like
/// the naive pooled kernel (same cutoff, same `even_chunks`), which is
/// bitwise invisible because output rows are independent.
pub fn matmul_at_into(a: &Dense, b: &Dense, out: &mut Dense, pool: &Pool) {
    assert_eq!(a.rows(), b.rows(), "matmul_at dimension mismatch");
    assert_eq!(
        (out.rows(), out.cols()),
        (a.cols(), b.cols()),
        "matmul_at_into output shape mismatch"
    );
    let (r, m, n) = (a.rows(), a.cols(), b.cols());
    if pool.threads() == 1 || r * m * n < crate::ctx::MIN_PARALLEL_WORK {
        at_rows(a.data(), m, b.data(), n, r, 0..m, out.data_mut());
        return;
    }
    let ranges = even_chunks(m, pool.threads());
    pool.run_disjoint_rows(out.data_mut(), n, &ranges, |chunk, out_rows| {
        at_rows(a.data(), m, b.data(), n, r, ranges[chunk].clone(), out_rows);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargcn_util::rng::{Rng, SeedableRng, StdRng};

    fn bits(d: &Dense) -> Vec<u32> {
        d.data().iter().map(|v| v.to_bits()).collect()
    }

    fn random(rows: usize, cols: usize, seed: u64) -> Dense {
        let mut rng = StdRng::seed_from_u64(seed);
        Dense::from_fn(rows, cols, |_, _| {
            // Mix in exact zeros so the naive zero-skip path is exercised.
            if rng.gen::<f32>() < 0.2 {
                0.0
            } else {
                rng.gen_range(-1.0..=1.0)
            }
        })
    }

    #[test]
    fn blocked_matmul_matches_naive_bitwise() {
        let pool = Pool::new(1);
        let mut pack = PackBuf::new();
        for (m, k, n) in [(7, 5, 9), (64, 32, 16), (1, 1, 1), (13, 8, 8), (100, 3, 17)] {
            let a = random(m, k, 1);
            let b = random(k, n, 2);
            let mut naive = Dense::zeros(m, n);
            a.matmul_into(&b, &mut naive, false);
            let mut blocked = Dense::zeros(m, n);
            matmul_into(&a, &b, &mut blocked, false, &mut pack, &pool);
            assert_eq!(bits(&naive), bits(&blocked), "shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn blocked_accumulate_matches_naive_bitwise() {
        let pool = Pool::new(2);
        let mut pack = PackBuf::new();
        let a = random(33, 17, 3);
        let b = random(17, 12, 4);
        // Accumulator contents must be sum-reachable (never -0.0): use a
        // prior product, exactly like the trainers do.
        let mut naive = a.matmul(&b);
        let mut blocked = naive.clone();
        a.matmul_into(&b, &mut naive, true);
        matmul_into(&a, &b, &mut blocked, true, &mut pack, &pool);
        assert_eq!(bits(&naive), bits(&blocked));
    }

    #[test]
    fn blocked_bt_and_at_match_naive_bitwise() {
        let pool = Pool::new(1);
        let mut pack = PackBuf::new();
        let a = random(21, 10, 5);
        let b = random(14, 10, 6);
        let mut blocked = Dense::zeros(21, 14);
        matmul_bt_into(&a, &b, &mut blocked, &mut pack, &pool);
        assert_eq!(bits(&a.matmul_bt(&b)), bits(&blocked));

        let h = random(50, 6, 7);
        let g = random(50, 11, 8);
        let mut blocked = Dense::zeros(6, 11);
        matmul_at_into(&h, &g, &mut blocked, &pool);
        assert_eq!(bits(&h.matmul_at(&g)), bits(&blocked));
    }

    #[test]
    fn degenerate_shapes_are_handled() {
        let pool = Pool::new(1);
        let mut pack = PackBuf::new();
        for (m, k, n) in [(0, 4, 4), (4, 0, 4), (4, 4, 0), (0, 0, 0)] {
            let a = Dense::zeros(m, k);
            let b = Dense::zeros(k, n);
            let mut out = Dense::zeros(m, n);
            matmul_into(&a, &b, &mut out, false, &mut pack, &pool);
            let mut naive = Dense::zeros(m, n);
            a.matmul_into(&b, &mut naive, false);
            assert_eq!(bits(&naive), bits(&out));
        }
    }

    #[test]
    fn pack_buf_grows_once() {
        let mut pack = PackBuf::new();
        pack.reserve(100);
        let p0 = pack.panels.as_ptr();
        pack.reserve(80); // smaller: no move
        assert_eq!(p0, pack.panels.as_ptr());
    }
}
