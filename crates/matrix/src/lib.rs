//! Dense and sparse (CSR) matrix kernels used by the distributed GCN
//! training algorithm of Demirci, Haldar & Ferhatosmanoglu (VLDB 2022).
//!
//! The paper's computational core is two kernels:
//!
//! * **SpMM** — sparse adjacency × dense feature/gradient matrix
//!   (`Csr::spmm*`), used by graph convolution in both the feedforward
//!   (`Z = Â·H·W`) and backpropagation (`S = Â·G·Wᵀ`) phases, and
//! * **DMM** — dense × dense multiplication ([`Dense::matmul`] and its
//!   transposed variants), used for applying the replicated parameter
//!   matrices `W` and forming parameter gradients `ΔW = Hᵀ(ÂG)`.
//!
//! The crate also implements the row-selection "semiring" multiply the paper
//! performs with SuiteSparse:GraphBLAS's `GxB_PLUS_SECOND` (`Xₘₙ ⊗ H`),
//! here as the direct [`gather::gather_rows`] operation, and the symmetric
//! degree normalization `Â = D^{-1/2}(A + I)D^{-1/2}` ([`norm`]).
//!
//! All feature/parameter data is `f32` (matching common GCN practice);
//! reductions that feed scalar metrics accumulate in `f64`.
//!
//! ```
//! use pargcn_matrix::{norm, Csr, Dense};
//!
//! // A directed path 0 → 1 → 2 and its GCN-normalized adjacency.
//! let a = Csr::from_coo(3, 3, vec![(0, 1, 1.0), (1, 2, 1.0)]);
//! let a_hat = norm::normalize_adjacency(&a);
//!
//! // One graph-convolution step: Â · H · W.
//! let h = Dense::from_fn(3, 2, |i, j| (i + j) as f32);
//! let w = Dense::from_fn(2, 2, |i, j| if i == j { 1.0 } else { 0.0 });
//! let z = a_hat.spmm(&h).matmul(&w);
//! assert_eq!(z.rows(), 3);
//! assert_eq!(z.cols(), 2);
//! ```

pub mod csr;
pub mod ctx;
pub mod dense;
pub mod gather;
pub mod gemm;
pub mod norm;
pub mod spmm_kernel;

pub use csr::Csr;
pub use ctx::{ComputeCtx, ComputeSpec, KernelKind};
pub use dense::Dense;

/// Relative tolerance comparison of two `f32` values with an absolute floor.
///
/// Used throughout the test-suite to compare serial and distributed results,
/// which differ only by floating-point reassociation.
#[inline]
pub fn approx_eq(a: f32, b: f32, rel: f32) -> bool {
    let diff = (a - b).abs();
    let scale = a.abs().max(b.abs()).max(1.0);
    diff <= rel * scale
}
