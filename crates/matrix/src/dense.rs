//! Row-major dense matrix with the DMM kernels used in GCN training.
//!
//! The matrices handled here are the vertex-feature blocks `H` (tall and
//! skinny: many rows, few columns) and the parameter matrices `W` (small,
//! replicated on every processor). Kernels are written in the i-k-j loop
//! order so the inner loop streams contiguously over rows of the right-hand
//! operand, which vectorizes well for skinny matrices.

use pargcn_util::pool::{even_chunks, Pool};
use pargcn_util::rng::Rng;

/// A row-major dense `f32` matrix.
#[derive(Clone, PartialEq)]
pub struct Dense {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl std::fmt::Debug for Dense {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Dense({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 64 {
            for i in 0..self.rows {
                write!(f, "\n  {:?}", self.row(i))?;
            }
        }
        Ok(())
    }
}

impl Dense {
    /// An all-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "dense data length mismatch");
        Self { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(i, j)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Glorot/Xavier-uniform initialization, the standard GCN parameter
    /// init: `U(-s, s)` with `s = sqrt(6 / (rows + cols))`.
    pub fn glorot(rows: usize, cols: usize, rng: &mut impl Rng) -> Self {
        let s = (6.0 / (rows + cols) as f64).sqrt() as f32;
        let data = (0..rows * cols).map(|_| rng.gen_range(-s..=s)).collect();
        Self { rows, cols, data }
    }

    /// Uniform random entries in `[0, 1)`; used for synthetic feature matrices.
    pub fn random(rows: usize, cols: usize, rng: &mut impl Rng) -> Self {
        let data = (0..rows * cols).map(|_| rng.gen::<f32>()).collect();
        Self { rows, cols, data }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Changes the row count in place, keeping the column width and the
    /// allocation (grow-once under a high-water mark). New rows are zeroed;
    /// surviving rows keep their stale contents — callers that reuse a
    /// workspace across batches must fully overwrite before reading.
    pub fn resize_rows(&mut self, rows: usize) {
        self.data.resize(rows * self.cols, 0.0);
        self.rows = rows;
    }

    /// Borrow of the underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.cols + j]
    }

    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        self.data[i * self.cols + j] = v;
    }

    /// Resets every entry to zero, keeping the allocation.
    /// Consumes the matrix, yielding its backing row-major storage. The
    /// inverse of [`Dense::from_vec`]: together they let a message payload
    /// be viewed as a matrix and then recycled without copying.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Overwrites `self` with the contents of `src` (shapes must match);
    /// never reallocates.
    pub fn copy_from(&mut self, src: &Dense) {
        assert_eq!(
            (self.rows, self.cols),
            (src.rows, src.cols),
            "copy_from shape mismatch"
        );
        self.data.copy_from_slice(&src.data);
    }

    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// `self × b` (DMM). `self` is `m×k`, `b` is `k×n`, result `m×n`.
    pub fn matmul(&self, b: &Dense) -> Dense {
        assert_eq!(self.cols, b.rows, "matmul dimension mismatch");
        let mut out = Dense::zeros(self.rows, b.cols);
        self.matmul_into(b, &mut out, false);
        out
    }

    /// `out (+)= self × b`; when `accumulate` is false `out` is overwritten.
    ///
    /// Writing into a caller-provided buffer lets the per-epoch training loop
    /// reuse allocations (the feature blocks are recomputed every layer).
    pub fn matmul_into(&self, b: &Dense, out: &mut Dense, accumulate: bool) {
        assert_eq!(self.cols, b.rows, "matmul dimension mismatch");
        assert_eq!(out.rows, self.rows, "matmul output rows mismatch");
        assert_eq!(out.cols, b.cols, "matmul output cols mismatch");
        if !accumulate {
            out.fill_zero();
        }
        let n = b.cols;
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = &b.data[k * n..(k + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += aik * bv;
                }
            }
        }
    }

    /// Pooled [`Dense::matmul`]; see [`Dense::matmul_into_pool`].
    pub fn matmul_pool(&self, b: &Dense, pool: &Pool) -> Dense {
        assert_eq!(self.cols, b.rows, "matmul dimension mismatch");
        let mut out = Dense::zeros(self.rows, b.cols);
        self.matmul_into_pool(b, &mut out, true, pool);
        out
    }

    /// Pooled [`Dense::matmul_into`]: output rows are split evenly across
    /// the pool's threads. Each chunk runs the serial inner loops over its
    /// disjoint output rows, so the result is bitwise identical to
    /// [`Dense::matmul_into`] at any thread count.
    pub fn matmul_into_pool(&self, b: &Dense, out: &mut Dense, accumulate: bool, pool: &Pool) {
        if pool.threads() == 1 || self.rows * self.cols * b.cols < crate::ctx::MIN_PARALLEL_WORK {
            self.matmul_into(b, out, accumulate);
            return;
        }
        assert_eq!(self.cols, b.rows, "matmul dimension mismatch");
        assert_eq!(out.rows, self.rows, "matmul output rows mismatch");
        assert_eq!(out.cols, b.cols, "matmul output cols mismatch");
        if !accumulate {
            out.fill_zero();
        }
        let n = b.cols;
        let ranges = even_chunks(self.rows, pool.threads());
        pool.run_disjoint_rows(&mut out.data, n, &ranges, |chunk, out_rows| {
            let rows = &ranges[chunk];
            for i in rows.clone() {
                let a_row = self.row(i);
                let local = i - rows.start;
                let out_row = &mut out_rows[local * n..(local + 1) * n];
                for (k, &aik) in a_row.iter().enumerate() {
                    if aik == 0.0 {
                        continue;
                    }
                    let b_row = &b.data[k * n..(k + 1) * n];
                    for (o, &bv) in out_row.iter_mut().zip(b_row) {
                        *o += aik * bv;
                    }
                }
            }
        });
    }

    /// `self × bᵀ`. `self` is `m×k`, `b` is `n×k`, result `m×n`.
    ///
    /// Used in backpropagation for `S = (ÂG)·Wᵀ` without materializing `Wᵀ`.
    pub fn matmul_bt(&self, b: &Dense) -> Dense {
        assert_eq!(self.cols, b.cols, "matmul_bt dimension mismatch");
        let mut out = Dense::zeros(self.rows, b.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..b.rows {
                let b_row = b.row(j);
                let mut acc = 0.0f32;
                for (&x, &y) in a_row.iter().zip(b_row) {
                    acc += x * y;
                }
                out.data[i * b.rows + j] = acc;
            }
        }
        out
    }

    /// [`Dense::matmul_bt`] writing into a caller-provided `out`
    /// (overwritten, never reallocated) — the allocation-free form the
    /// persistent training workspaces use.
    pub fn matmul_bt_into(&self, b: &Dense, out: &mut Dense) {
        assert_eq!(self.cols, b.cols, "matmul_bt dimension mismatch");
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, b.rows),
            "matmul_bt_into output shape mismatch"
        );
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..b.rows {
                let b_row = b.row(j);
                let mut acc = 0.0f32;
                for (&x, &y) in a_row.iter().zip(b_row) {
                    acc += x * y;
                }
                out.data[i * b.rows + j] = acc;
            }
        }
    }

    /// Pooled [`Dense::matmul_bt_into`]; bitwise identical to serial.
    pub fn matmul_bt_into_pool(&self, b: &Dense, out: &mut Dense, pool: &Pool) {
        if pool.threads() == 1 || self.rows * self.cols * b.rows < crate::ctx::MIN_PARALLEL_WORK {
            self.matmul_bt_into(b, out);
            return;
        }
        assert_eq!(self.cols, b.cols, "matmul_bt dimension mismatch");
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, b.rows),
            "matmul_bt_into output shape mismatch"
        );
        let n = b.rows;
        let ranges = even_chunks(self.rows, pool.threads());
        pool.run_disjoint_rows(&mut out.data, n, &ranges, |chunk, out_rows| {
            let rows = &ranges[chunk];
            for i in rows.clone() {
                let a_row = self.row(i);
                let local = i - rows.start;
                for j in 0..n {
                    let b_row = b.row(j);
                    let mut acc = 0.0f32;
                    for (&x, &y) in a_row.iter().zip(b_row) {
                        acc += x * y;
                    }
                    out_rows[local * n + j] = acc;
                }
            }
        });
    }

    /// Pooled [`Dense::matmul_bt`]: output rows split evenly; bitwise
    /// identical to the serial kernel at any thread count (each output
    /// element is one dot product, computed by exactly one thread with the
    /// serial accumulation order).
    pub fn matmul_bt_pool(&self, b: &Dense, pool: &Pool) -> Dense {
        if pool.threads() == 1 || self.rows * self.cols * b.rows < crate::ctx::MIN_PARALLEL_WORK {
            return self.matmul_bt(b);
        }
        assert_eq!(self.cols, b.cols, "matmul_bt dimension mismatch");
        let mut out = Dense::zeros(self.rows, b.rows);
        let n = b.rows;
        let ranges = even_chunks(self.rows, pool.threads());
        pool.run_disjoint_rows(&mut out.data, n, &ranges, |chunk, out_rows| {
            let rows = &ranges[chunk];
            for i in rows.clone() {
                let a_row = self.row(i);
                let local = i - rows.start;
                for j in 0..n {
                    let b_row = b.row(j);
                    let mut acc = 0.0f32;
                    for (&x, &y) in a_row.iter().zip(b_row) {
                        acc += x * y;
                    }
                    out_rows[local * n + j] = acc;
                }
            }
        });
        out
    }

    /// `selfᵀ × b`. `self` is `n×m`, `b` is `n×k`, result `m×k`.
    ///
    /// Used for the parameter gradient `ΔWᵏ = (H^{k-1})ᵀ (Â Gᵏ)` (paper Eq. 4).
    pub fn matmul_at(&self, b: &Dense) -> Dense {
        assert_eq!(self.rows, b.rows, "matmul_at dimension mismatch");
        let mut out = Dense::zeros(self.cols, b.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let b_row = b.row(i);
            for (j, &aij) in a_row.iter().enumerate() {
                if aij == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[j * b.cols..(j + 1) * b.cols];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += aij * bv;
                }
            }
        }
        out
    }

    /// Pooled [`Dense::matmul_at`], the parameter-gradient kernel `ΔW =
    /// selfᵀ × b`. Parallelism is over *output* rows (columns of `self`):
    /// each thread sweeps all input rows `i` in ascending order but only
    /// touches its own disjoint slice of output columns `j`, so every
    /// output element accumulates its `i`-terms in exactly the serial order
    /// — bitwise identical to [`Dense::matmul_at`] at any thread count,
    /// with no per-thread partial buffers or cross-thread reduction at all.
    pub fn matmul_at_pool(&self, b: &Dense, pool: &Pool) -> Dense {
        if pool.threads() == 1 || self.rows * self.cols * b.cols < crate::ctx::MIN_PARALLEL_WORK {
            return self.matmul_at(b);
        }
        assert_eq!(self.rows, b.rows, "matmul_at dimension mismatch");
        let mut out = Dense::zeros(self.cols, b.cols);
        let k = b.cols;
        let ranges = even_chunks(self.cols, pool.threads());
        pool.run_disjoint_rows(&mut out.data, k, &ranges, |chunk, out_rows| {
            let js = &ranges[chunk];
            for i in 0..self.rows {
                let a_row = self.row(i);
                let b_row = b.row(i);
                for j in js.clone() {
                    let aij = a_row[j];
                    if aij == 0.0 {
                        continue;
                    }
                    let local = j - js.start;
                    let out_row = &mut out_rows[local * k..(local + 1) * k];
                    for (o, &bv) in out_row.iter_mut().zip(b_row) {
                        *o += aij * bv;
                    }
                }
            }
        });
        out
    }

    /// [`Dense::matmul_at`] into a caller-provided buffer: `out = selfᵀ × b`.
    pub fn matmul_at_into(&self, b: &Dense, out: &mut Dense) {
        assert_eq!(self.rows, b.rows, "matmul_at dimension mismatch");
        assert_eq!(out.rows, self.cols, "matmul_at output rows mismatch");
        assert_eq!(out.cols, b.cols, "matmul_at output cols mismatch");
        out.fill_zero();
        for i in 0..self.rows {
            let a_row = self.row(i);
            let b_row = b.row(i);
            for (j, &aij) in a_row.iter().enumerate() {
                if aij == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[j * b.cols..(j + 1) * b.cols];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += aij * bv;
                }
            }
        }
    }

    /// Pooled [`Dense::matmul_at_into`]: same output-row split as
    /// [`Dense::matmul_at_pool`], so bitwise identical to the serial kernel
    /// at any thread count.
    pub fn matmul_at_into_pool(&self, b: &Dense, out: &mut Dense, pool: &Pool) {
        if pool.threads() == 1 || self.rows * self.cols * b.cols < crate::ctx::MIN_PARALLEL_WORK {
            return self.matmul_at_into(b, out);
        }
        assert_eq!(self.rows, b.rows, "matmul_at dimension mismatch");
        assert_eq!(out.rows, self.cols, "matmul_at output rows mismatch");
        assert_eq!(out.cols, b.cols, "matmul_at output cols mismatch");
        out.fill_zero();
        let k = b.cols;
        let ranges = even_chunks(self.cols, pool.threads());
        pool.run_disjoint_rows(&mut out.data, k, &ranges, |chunk, out_rows| {
            let js = &ranges[chunk];
            for i in 0..self.rows {
                let a_row = self.row(i);
                let b_row = b.row(i);
                for j in js.clone() {
                    let aij = a_row[j];
                    if aij == 0.0 {
                        continue;
                    }
                    let local = j - js.start;
                    let out_row = &mut out_rows[local * k..(local + 1) * k];
                    for (o, &bv) in out_row.iter_mut().zip(b_row) {
                        *o += aij * bv;
                    }
                }
            }
        });
    }

    /// Explicit transpose; only used for small matrices and in tests
    /// (hot paths use the `matmul_bt`/`matmul_at` fused variants instead).
    pub fn transpose(&self) -> Dense {
        let mut out = Dense::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Element-wise (Hadamard) product, as used for `G = S ⊙ σ'(Z)` (Eq. 3).
    pub fn hadamard(&self, b: &Dense) -> Dense {
        assert_eq!(
            (self.rows, self.cols),
            (b.rows, b.cols),
            "hadamard shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&b.data)
            .map(|(&x, &y)| x * y)
            .collect();
        Dense {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place element-wise multiply: `self ⊙= b`.
    pub fn hadamard_assign(&mut self, b: &Dense) {
        assert_eq!(
            (self.rows, self.cols),
            (b.rows, b.cols),
            "hadamard shape mismatch"
        );
        for (x, &y) in self.data.iter_mut().zip(&b.data) {
            *x *= y;
        }
    }

    /// `self += b`.
    pub fn add_assign(&mut self, b: &Dense) {
        assert_eq!(
            (self.rows, self.cols),
            (b.rows, b.cols),
            "add shape mismatch"
        );
        for (x, &y) in self.data.iter_mut().zip(&b.data) {
            *x += y;
        }
    }

    /// `self -= eta * b`; the SGD parameter update `W ← W − η·ΔW` (Eq. 5).
    pub fn sub_scaled_assign(&mut self, b: &Dense, eta: f32) {
        assert_eq!(
            (self.rows, self.cols),
            (b.rows, b.cols),
            "sub shape mismatch"
        );
        for (x, &y) in self.data.iter_mut().zip(&b.data) {
            *x -= eta * y;
        }
    }

    /// Applies `f` to every element, in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Pooled [`Dense::map_inplace`]: rows split evenly across threads.
    /// Element-wise, so trivially bitwise identical to serial.
    pub fn map_inplace_pool(&mut self, pool: &Pool, f: impl Fn(f32) -> f32 + Sync) {
        if pool.threads() == 1 || self.data.len() < crate::ctx::MIN_PARALLEL_WORK {
            self.map_inplace(f);
            return;
        }
        let ranges = even_chunks(self.rows, pool.threads());
        pool.run_disjoint_rows(&mut self.data, self.cols, &ranges, |_, slice| {
            for v in slice {
                *v = f(*v);
            }
        });
    }

    /// A new matrix with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Dense {
        let data = self.data.iter().map(|&v| f(v)).collect();
        Dense {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// [`Dense::map`] writing into a caller-provided `out` of the same
    /// shape (the allocation-free form).
    pub fn map_into(&self, out: &mut Dense, f: impl Fn(f32) -> f32) {
        assert_eq!(
            (self.rows, self.cols),
            (out.rows, out.cols),
            "map_into shape mismatch"
        );
        for (o, &v) in out.data.iter_mut().zip(&self.data) {
            *o = f(v);
        }
    }

    /// Pooled [`Dense::map_into`]; bitwise identical to serial for any
    /// thread count (element-wise, disjoint writes).
    pub fn map_into_pool(&self, out: &mut Dense, pool: &Pool, f: impl Fn(f32) -> f32 + Sync) {
        if pool.threads() == 1 || self.data.len() < crate::ctx::MIN_PARALLEL_WORK {
            self.map_into(out, f);
            return;
        }
        assert_eq!(
            (self.rows, self.cols),
            (out.rows, out.cols),
            "map_into shape mismatch"
        );
        let ranges = even_chunks(self.rows, pool.threads());
        pool.run_disjoint_rows(&mut out.data, self.cols, &ranges, |chunk, slice| {
            let start = ranges[chunk].start * self.cols;
            for (k, o) in slice.iter_mut().enumerate() {
                *o = f(self.data[start + k]);
            }
        });
    }

    /// Pooled [`Dense::map`]; bitwise identical to serial for any thread
    /// count (element-wise, disjoint writes).
    pub fn map_pool(&self, pool: &Pool, f: impl Fn(f32) -> f32 + Sync) -> Dense {
        if pool.threads() == 1 || self.data.len() < crate::ctx::MIN_PARALLEL_WORK {
            return self.map(&f);
        }
        let mut out = Dense::zeros(self.rows, self.cols);
        let ranges = even_chunks(self.rows, pool.threads());
        pool.run_disjoint_rows(&mut out.data, self.cols, &ranges, |chunk, slice| {
            let start = ranges[chunk].start * self.cols;
            for (k, o) in slice.iter_mut().enumerate() {
                *o = f(self.data[start + k]);
            }
        });
        out
    }

    /// Frobenius norm, accumulated in `f64`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>()
            .sqrt()
    }

    /// True when every entry of `self` and `b` agrees within relative
    /// tolerance `rel` (absolute floor 1.0; see [`crate::approx_eq`]).
    pub fn approx_eq(&self, b: &Dense, rel: f32) -> bool {
        self.rows == b.rows
            && self.cols == b.cols
            && self
                .data
                .iter()
                .zip(&b.data)
                .all(|(&x, &y)| crate::approx_eq(x, y, rel))
    }

    /// Largest absolute element difference against `b`.
    pub fn max_abs_diff(&self, b: &Dense) -> f32 {
        assert_eq!((self.rows, self.cols), (b.rows, b.cols));
        self.data
            .iter()
            .zip(&b.data)
            .map(|(&x, &y)| (x - y).abs())
            .fold(0.0f32, f32::max)
    }

    /// Index of the maximum entry of each row (`argmax`), used to turn
    /// softmax outputs into class predictions.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|i| {
                let row = self.row(i);
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(j, _)| j)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Vertically stacks rows of `self` selected by `idx`
    /// (equivalent to [`crate::gather::gather_rows`]).
    pub fn select_rows(&self, idx: &[u32]) -> Dense {
        crate::gather::gather_rows(self, idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargcn_util::rng::SeedableRng;
    use pargcn_util::rng::StdRng;

    fn naive_matmul(a: &Dense, b: &Dense) -> Dense {
        let mut out = Dense::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Dense::random(7, 5, &mut rng);
        let b = Dense::random(5, 9, &mut rng);
        assert!(a.matmul(&b).approx_eq(&naive_matmul(&a, &b), 1e-5));
    }

    #[test]
    fn matmul_bt_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Dense::random(6, 4, &mut rng);
        let b = Dense::random(8, 4, &mut rng);
        assert!(a.matmul_bt(&b).approx_eq(&a.matmul(&b.transpose()), 1e-5));
    }

    #[test]
    fn matmul_at_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Dense::random(6, 4, &mut rng);
        let b = Dense::random(6, 3, &mut rng);
        assert!(a.matmul_at(&b).approx_eq(&a.transpose().matmul(&b), 1e-5));
    }

    #[test]
    fn matmul_into_accumulates() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Dense::random(3, 3, &mut rng);
        let b = Dense::random(3, 3, &mut rng);
        let mut out = a.matmul(&b);
        a.matmul_into(&b, &mut out, true);
        let mut twice = a.matmul(&b);
        twice.add_assign(&a.matmul(&b));
        assert!(out.approx_eq(&twice, 1e-5));
    }

    #[test]
    fn transpose_is_involution() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Dense::random(4, 7, &mut rng);
        assert_eq!(a, a.transpose().transpose());
    }

    #[test]
    fn hadamard_and_updates() {
        let a = Dense::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Dense::from_vec(2, 2, vec![2.0, 0.5, 1.0, -1.0]);
        let h = a.hadamard(&b);
        assert_eq!(h.data(), &[2.0, 1.0, 3.0, -4.0]);
        let mut w = a.clone();
        w.sub_scaled_assign(&b, 2.0);
        assert_eq!(w.data(), &[-3.0, 1.0, 1.0, 6.0]);
    }

    #[test]
    fn glorot_within_bounds() {
        let mut rng = StdRng::seed_from_u64(6);
        let w = Dense::glorot(10, 20, &mut rng);
        let s = (6.0f64 / 30.0).sqrt() as f32;
        assert!(w.data().iter().all(|&v| v.abs() <= s));
        // Not degenerate: some spread.
        assert!(w.frobenius_norm() > 0.1);
    }

    #[test]
    fn argmax_rows_picks_max() {
        let a = Dense::from_vec(2, 3, vec![0.1, 0.9, 0.2, 0.5, 0.4, 0.6]);
        assert_eq!(a.argmax_rows(), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Dense::zeros(2, 3);
        let b = Dense::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
