//! Compute context: the per-rank handle to intra-rank thread parallelism
//! and kernel selection.
//!
//! The paper's processors each run multithreaded SuiteSparse:GraphBLAS
//! kernels; [`ComputeCtx`] is our equivalent — a shared handle to a
//! [`Pool`] that the SpMM/DMM kernels use to split row ranges across
//! threads, plus the choice of **kernel engine** ([`KernelKind`]): the
//! naive reference loops or the cache-blocked engine ([`crate::gemm`],
//! [`crate::spmm_kernel`]). One context is built per simulated rank, so
//! `p` ranks × `t` threads gives the paper's hybrid execution model.
//!
//! Every kernel dispatched here produces **bitwise identical** results
//! regardless of engine and thread count: per output element the
//! summation order is the single canonical ascending order (see
//! DESIGN.md §10), chunks write disjoint output rows, and nothing is
//! ever reduced across threads.
//!
//! The context also meters arithmetic: every dispatched kernel adds its
//! shape-derived FLOP count (2·m·k·n per GEMM, 2·nnz·d per SpMM) to a
//! shared counter the trainers drain into
//! `CommCounters::compute_flops`, making per-rank GFLOP/s reportable
//! alongside the comm/compute time split.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::gemm::{self, PackBuf};
use crate::spmm_kernel;
use crate::{Csr, Dense};
use pargcn_util::pool::{auto_threads, Pool};

/// Minimum per-kernel work (≈ inner-loop multiply-adds) before a kernel
/// bothers splitting across threads; below this the pool dispatch overhead
/// dominates. The cutoff is a pure function of operand shape, so a given
/// call is chunked the same way on every rank and every run.
pub const MIN_PARALLEL_WORK: usize = 16 * 1024;

/// Which kernel engine a [`ComputeCtx`] dispatches to. Both engines are
/// bitwise identical on the training pipeline's data; `Naive` exists as
/// the reference and for A/B benchmarking (`--kernel`, `PARGCN_KERNEL`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelKind {
    /// The straightforward i-k-j / row-axpy loops.
    Naive,
    /// The packed, register-tiled engine (default).
    Blocked,
}

impl KernelKind {
    /// Parses a CLI/env spelling (`naive` | `blocked`, case-insensitive).
    pub fn parse(s: &str) -> Option<KernelKind> {
        match s.to_ascii_lowercase().as_str() {
            "naive" => Some(KernelKind::Naive),
            "blocked" => Some(KernelKind::Blocked),
            _ => None,
        }
    }

    /// The `PARGCN_KERNEL` env var, defaulting to `Blocked` (unknown
    /// values also fall back to the default).
    pub fn from_env() -> KernelKind {
        std::env::var("PARGCN_KERNEL")
            .ok()
            .and_then(|s| KernelKind::parse(&s))
            .unwrap_or(KernelKind::Blocked)
    }

    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Naive => "naive",
            KernelKind::Blocked => "blocked",
        }
    }
}

/// Explicit per-rank compute configuration for the training entry points
/// (`None` fields fall back to the env-driven defaults: `PARGCN_THREADS`
/// and `PARGCN_KERNEL`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ComputeSpec {
    /// Kernel thread-pool size per rank.
    pub threads: Option<usize>,
    /// Kernel engine.
    pub kernel: Option<KernelKind>,
}

impl ComputeSpec {
    /// Spec with only a thread count (kernel from env) — what the legacy
    /// `_threads` entry points build.
    pub fn threads(threads: Option<usize>) -> Self {
        ComputeSpec {
            threads,
            kernel: None,
        }
    }
}

/// State shared by every clone of one context: the packing scratch of
/// the blocked engine (grow-once; see [`PackBuf`]) and the FLOP meter.
#[derive(Debug, Default)]
struct Scratch {
    pack: Mutex<PackBuf>,
    flops: AtomicU64,
}

/// Cheaply cloneable handle to a per-rank thread pool plus the selected
/// kernel engine; clones share the pool, the packing scratch and the
/// FLOP counter.
#[derive(Clone, Debug)]
pub struct ComputeCtx {
    pool: Arc<Pool>,
    kernel: KernelKind,
    scratch: Arc<Scratch>,
}

impl ComputeCtx {
    /// A single-threaded context: every kernel runs inline on the caller.
    pub fn serial() -> Self {
        Self::with_threads(1)
    }

    /// A context with exactly `threads` executors (min 1); kernel engine
    /// from `PARGCN_KERNEL` (default blocked).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            pool: Arc::new(Pool::new(threads)),
            kernel: KernelKind::from_env(),
            scratch: Arc::new(Scratch::default()),
        }
    }

    /// A context for one of `ranks` simulated processors sharing the
    /// machine: `threads` if given, else `PARGCN_THREADS`, else
    /// `available_parallelism / ranks` (see [`auto_threads`]).
    pub fn for_ranks(ranks: usize, threads: Option<usize>) -> Self {
        Self::for_ranks_spec(ranks, ComputeSpec::threads(threads))
    }

    /// As [`ComputeCtx::for_ranks`] with an explicit kernel choice.
    pub fn for_ranks_spec(ranks: usize, spec: ComputeSpec) -> Self {
        let mut ctx = Self::with_threads(auto_threads(ranks, spec.threads));
        if let Some(kernel) = spec.kernel {
            ctx.kernel = kernel;
        }
        ctx
    }

    /// Replaces the kernel engine (builder-style, for benches/tests).
    pub fn with_kernel(mut self, kernel: KernelKind) -> Self {
        self.kernel = kernel;
        self
    }

    #[inline]
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    #[inline]
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    #[inline]
    pub fn kernel(&self) -> KernelKind {
        self.kernel
    }

    /// FLOPs dispatched through this context (and its clones) so far.
    pub fn flops(&self) -> u64 {
        self.scratch.flops.load(Ordering::Relaxed)
    }

    /// Drains the FLOP counter, returning the count accumulated since the
    /// last drain — the trainers call this once per run to credit the
    /// rank's `CommCounters`.
    pub fn take_flops(&self) -> u64 {
        self.scratch.flops.swap(0, Ordering::Relaxed)
    }

    #[inline]
    fn add_flops(&self, n: u64) {
        self.scratch.flops.fetch_add(n, Ordering::Relaxed);
    }

    /// Pre-sizes the blocked engine's panel-packing scratch so
    /// steady-state kernel calls never grow it — called once from
    /// `EpochWorkspace::new` with the run's largest operand shapes.
    pub fn reserve_pack(&self, panel_floats: usize) {
        self.scratch.pack.lock().unwrap().reserve(panel_floats);
    }

    /// `out (+)= a × b` on the selected engine.
    pub fn matmul_into(&self, a: &Dense, b: &Dense, out: &mut Dense, accumulate: bool) {
        self.add_flops(2 * (a.rows() * a.cols() * b.cols()) as u64);
        match self.kernel {
            KernelKind::Naive => a.matmul_into_pool(b, out, accumulate, self.pool()),
            KernelKind::Blocked => {
                let mut pack = self.scratch.pack.lock().unwrap();
                gemm::matmul_into(a, b, out, accumulate, &mut pack, self.pool());
            }
        }
    }

    /// `a × b` on the selected engine.
    pub fn matmul(&self, a: &Dense, b: &Dense) -> Dense {
        let mut out = Dense::zeros(a.rows(), b.cols());
        self.matmul_into(a, b, &mut out, false);
        out
    }

    /// `out = a × bᵀ` on the selected engine.
    pub fn matmul_bt_into(&self, a: &Dense, b: &Dense, out: &mut Dense) {
        self.add_flops(2 * (a.rows() * a.cols() * b.rows()) as u64);
        match self.kernel {
            KernelKind::Naive => a.matmul_bt_into_pool(b, out, self.pool()),
            KernelKind::Blocked => {
                let mut pack = self.scratch.pack.lock().unwrap();
                gemm::matmul_bt_into(a, b, out, &mut pack, self.pool());
            }
        }
    }

    /// `a × bᵀ` on the selected engine.
    pub fn matmul_bt(&self, a: &Dense, b: &Dense) -> Dense {
        let mut out = Dense::zeros(a.rows(), b.rows());
        self.matmul_bt_into(a, b, &mut out);
        out
    }

    /// `out = aᵀ × b` (the parameter-gradient kernel) on the selected
    /// engine.
    pub fn matmul_at_into(&self, a: &Dense, b: &Dense, out: &mut Dense) {
        self.add_flops(2 * (a.rows() * a.cols() * b.cols()) as u64);
        match self.kernel {
            KernelKind::Naive => a.matmul_at_into_pool(b, out, self.pool()),
            KernelKind::Blocked => gemm::matmul_at_into(a, b, out, self.pool()),
        }
    }

    /// `aᵀ × b` on the selected engine.
    pub fn matmul_at(&self, a: &Dense, b: &Dense) -> Dense {
        let mut out = Dense::zeros(a.cols(), b.cols());
        self.matmul_at_into(a, b, &mut out);
        out
    }

    /// `out (+)= a × h` (SpMM) on the selected engine.
    pub fn spmm_into(&self, a: &Csr, h: &Dense, out: &mut Dense, accumulate: bool) {
        self.add_flops(2 * (a.nnz() * h.cols()) as u64);
        match self.kernel {
            KernelKind::Naive => a.spmm_into_pool(h, out, accumulate, self.pool()),
            KernelKind::Blocked => spmm_kernel::spmm_into(a, h, out, accumulate, self.pool()),
        }
    }

    /// `a × h` (SpMM) on the selected engine.
    pub fn spmm(&self, a: &Csr, h: &Dense) -> Dense {
        let mut out = Dense::zeros(a.n_rows(), h.cols());
        self.spmm_into(a, h, &mut out, false);
        out
    }
}

impl Default for ComputeCtx {
    fn default() -> Self {
        Self::serial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_ctx_has_one_thread() {
        assert_eq!(ComputeCtx::serial().threads(), 1);
        assert_eq!(ComputeCtx::default().threads(), 1);
    }

    #[test]
    fn explicit_threads_win() {
        assert_eq!(ComputeCtx::for_ranks(4, Some(3)).threads(), 3);
    }

    #[test]
    fn clone_shares_the_pool() {
        let ctx = ComputeCtx::with_threads(2);
        let clone = ctx.clone();
        assert!(std::ptr::eq(ctx.pool(), clone.pool()));
    }

    #[test]
    fn kernel_kind_parses() {
        assert_eq!(KernelKind::parse("naive"), Some(KernelKind::Naive));
        assert_eq!(KernelKind::parse("Blocked"), Some(KernelKind::Blocked));
        assert_eq!(KernelKind::parse("simd"), None);
        assert_eq!(KernelKind::Naive.name(), "naive");
    }

    #[test]
    fn spec_kernel_overrides_env_default() {
        let spec = ComputeSpec {
            threads: Some(1),
            kernel: Some(KernelKind::Naive),
        };
        assert_eq!(
            ComputeCtx::for_ranks_spec(2, spec).kernel(),
            KernelKind::Naive
        );
        let ctx = ComputeCtx::serial().with_kernel(KernelKind::Blocked);
        assert_eq!(ctx.kernel(), KernelKind::Blocked);
    }

    #[test]
    fn flops_are_counted_from_shapes_and_shared_by_clones() {
        let ctx = ComputeCtx::serial();
        ctx.take_flops();
        let a = Dense::zeros(10, 4);
        let b = Dense::zeros(4, 3);
        let _ = ctx.matmul(&a, &b); // 2*10*4*3 = 240
        let clone = ctx.clone();
        let _ = clone.matmul_bt(&b, &b); // 2*4*3*4 = 96
        assert_eq!(ctx.flops(), 240 + 96);
        assert_eq!(ctx.take_flops(), 336);
        assert_eq!(ctx.flops(), 0);
    }

    #[test]
    fn dispatch_engines_agree_bitwise() {
        use pargcn_util::rng::{SeedableRng, StdRng};
        let mut rng = StdRng::seed_from_u64(4);
        let a = Dense::random(30, 12, &mut rng);
        let b = Dense::random(12, 9, &mut rng);
        let naive = ComputeCtx::serial().with_kernel(KernelKind::Naive);
        let blocked = ComputeCtx::serial().with_kernel(KernelKind::Blocked);
        let bits = |d: &Dense| d.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&naive.matmul(&a, &b)), bits(&blocked.matmul(&a, &b)));
    }
}
