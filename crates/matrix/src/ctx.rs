//! Compute context: the per-rank handle to intra-rank thread parallelism.
//!
//! The paper's processors each run multithreaded SuiteSparse:GraphBLAS
//! kernels; [`ComputeCtx`] is our equivalent — a shared handle to a
//! [`Pool`] that the SpMM/DMM kernels use to split row ranges across
//! threads. One context is built per simulated rank, so `p` ranks ×
//! `t` threads gives the paper's hybrid execution model.
//!
//! Every pooled kernel produces **bitwise identical** results to its serial
//! counterpart at any thread count: chunks write disjoint output rows with
//! the same inner loops, and nothing is ever reduced across threads.

use std::sync::Arc;

use pargcn_util::pool::{auto_threads, Pool};

/// Minimum per-kernel work (≈ inner-loop multiply-adds) before a kernel
/// bothers splitting across threads; below this the pool dispatch overhead
/// dominates. The cutoff is a pure function of operand shape, so a given
/// call is chunked the same way on every rank and every run.
pub const MIN_PARALLEL_WORK: usize = 16 * 1024;

/// Cheaply cloneable handle to a per-rank thread pool.
#[derive(Clone, Debug)]
pub struct ComputeCtx {
    pool: Arc<Pool>,
}

impl ComputeCtx {
    /// A single-threaded context: every kernel runs inline on the caller.
    pub fn serial() -> Self {
        Self::with_threads(1)
    }

    /// A context with exactly `threads` executors (min 1).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            pool: Arc::new(Pool::new(threads)),
        }
    }

    /// A context for one of `ranks` simulated processors sharing the
    /// machine: `threads` if given, else `PARGCN_THREADS`, else
    /// `available_parallelism / ranks` (see [`auto_threads`]).
    pub fn for_ranks(ranks: usize, threads: Option<usize>) -> Self {
        Self::with_threads(auto_threads(ranks, threads))
    }

    #[inline]
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    #[inline]
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }
}

impl Default for ComputeCtx {
    fn default() -> Self {
        Self::serial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_ctx_has_one_thread() {
        assert_eq!(ComputeCtx::serial().threads(), 1);
        assert_eq!(ComputeCtx::default().threads(), 1);
    }

    #[test]
    fn explicit_threads_win() {
        assert_eq!(ComputeCtx::for_ranks(4, Some(3)).threads(), 3);
    }

    #[test]
    fn clone_shares_the_pool() {
        let ctx = ComputeCtx::with_threads(2);
        let clone = ctx.clone();
        assert!(std::ptr::eq(ctx.pool(), clone.pool()));
    }
}
