//! Row selection and accumulation — the paper's `Xₘₙ ⊗ H` operation.
//!
//! Algorithm 1 line 4 forms the message payload `H_{mn} = Xₘₙ ⊗ Hₘ`,
//! where `Xₘₙ` is a diagonal 0/1 selector matrix and `⊗` is GraphBLAS's
//! `GxB_PLUS_SECOND` semiring (multiplication replaced by "take the second
//! operand", so a `1` on the diagonal copies the corresponding `H` row).
//! With the selector stored as the index list of its nonzero diagonal
//! entries, the whole operation is a contiguous row gather.

use crate::Dense;

/// Gathers rows `idx` of `h` into a new `idx.len() × h.cols()` matrix —
/// exactly `Xₘₙ ⊗ H` with `idx = {i : Xₘₙ(i,i) = 1}`.
pub fn gather_rows(h: &Dense, idx: &[u32]) -> Dense {
    let d = h.cols();
    let mut data = Vec::with_capacity(idx.len() * d);
    for &i in idx {
        data.extend_from_slice(h.row(i as usize));
    }
    Dense::from_vec(idx.len(), d, data)
}

/// Gathers rows `idx` of `h` into a caller-provided flat buffer (resized to
/// fit). Used on the send path so the message payload is serialized without
/// an intermediate `Dense`.
pub fn gather_rows_into(h: &Dense, idx: &[u32], buf: &mut Vec<f32>) {
    let d = h.cols();
    buf.clear();
    buf.reserve(idx.len() * d);
    for &i in idx {
        buf.extend_from_slice(h.row(i as usize));
    }
}

/// Scatters `src` row `k` into `dst` row `idx[k]`, overwriting.
///
/// Inverse of [`gather_rows`]; used when a receiver places incoming remote
/// rows into a global-width working buffer.
pub fn scatter_rows(src: &Dense, idx: &[u32], dst: &mut Dense) {
    assert_eq!(src.rows(), idx.len(), "scatter index length mismatch");
    assert_eq!(src.cols(), dst.cols(), "scatter width mismatch");
    for (k, &i) in idx.iter().enumerate() {
        dst.row_mut(i as usize).copy_from_slice(src.row(k));
    }
}

/// Adds `src` row `k` into `dst` row `idx[k]` (scatter-accumulate).
pub fn scatter_add_rows(src: &Dense, idx: &[u32], dst: &mut Dense) {
    assert_eq!(src.rows(), idx.len(), "scatter index length mismatch");
    assert_eq!(src.cols(), dst.cols(), "scatter width mismatch");
    for (k, &i) in idx.iter().enumerate() {
        let s = src.row(k);
        for (d, &v) in dst.row_mut(i as usize).iter_mut().zip(s) {
            *d += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargcn_util::rng::SeedableRng;
    use pargcn_util::rng::StdRng;

    /// Reference implementation of `X ⊗ H` under `GxB_PLUS_SECOND`, with the
    /// selector materialized as a dense diagonal matrix: the result row `i`
    /// is `H(i,:)` when `X(i,i)=1`, compacted to the selected rows.
    fn semiring_reference(h: &Dense, idx: &[u32]) -> Dense {
        let mut out = Dense::zeros(idx.len(), h.cols());
        for (k, &i) in idx.iter().enumerate() {
            for j in 0..h.cols() {
                // plus_second: z = y (second operand), accumulated with +,
                // but each output row has exactly one contributing diagonal 1.
                out.set(k, j, h.get(i as usize, j));
            }
        }
        out
    }

    #[test]
    fn gather_matches_semiring_definition() {
        let mut rng = StdRng::seed_from_u64(11);
        let h = Dense::random(8, 3, &mut rng);
        let idx = vec![1u32, 4, 7];
        assert!(gather_rows(&h, &idx).approx_eq(&semiring_reference(&h, &idx), 0.0));
    }

    #[test]
    fn gather_into_flat_buffer() {
        let h = Dense::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut buf = Vec::new();
        gather_rows_into(&h, &[2, 0], &mut buf);
        assert_eq!(buf, vec![5.0, 6.0, 1.0, 2.0]);
    }

    #[test]
    fn scatter_roundtrips_gather() {
        let mut rng = StdRng::seed_from_u64(12);
        let h = Dense::random(6, 4, &mut rng);
        let idx = vec![0u32, 3, 5];
        let g = gather_rows(&h, &idx);
        let mut dst = Dense::zeros(6, 4);
        scatter_rows(&g, &idx, &mut dst);
        for &i in &idx {
            assert_eq!(dst.row(i as usize), h.row(i as usize));
        }
        assert_eq!(dst.row(1), &[0.0; 4]);
    }

    #[test]
    fn scatter_add_accumulates() {
        let g = Dense::from_vec(1, 2, vec![1.0, 2.0]);
        let mut dst = Dense::from_vec(2, 2, vec![1.0, 1.0, 1.0, 1.0]);
        scatter_add_rows(&g, &[1], &mut dst);
        scatter_add_rows(&g, &[1], &mut dst);
        assert_eq!(dst.row(1), &[3.0, 5.0]);
    }

    #[test]
    fn empty_gather_is_empty() {
        let h = Dense::zeros(4, 3);
        let g = gather_rows(&h, &[]);
        assert_eq!(g.rows(), 0);
        assert_eq!(g.cols(), 3);
    }
}
