//! Bitwise equivalence of the blocked kernel engine and the naive
//! reference, dispatched through [`ComputeCtx`].
//!
//! The engine contract (DESIGN.md §10): for every GEMM variant and SpMM,
//! at every pool size, the blocked engine produces output **bitwise
//! identical** to the naive loops — every output element is a single
//! accumulator summing its terms in the one canonical ascending order,
//! and no tiling or chunking ever regroups a sum. These tests sweep
//! qc-seeded shapes plus the adversarial corners (0-row/0-col matrices,
//! 1-wide operands, dims that are not tile multiples) at pool sizes
//! t ∈ {1, 2, 7}, and pin the shape-derived FLOP accounting.

use pargcn_matrix::{ComputeCtx, Csr, Dense, KernelKind};
use pargcn_util::qc;
use pargcn_util::rng::{Rng, StdRng};

const THREAD_COUNTS: [usize; 3] = [1, 2, 7];

/// Tile-adversarial dimension corners: degenerate (0), 1-wide, exactly
/// the micro-tile (4×8) and the SpMM column tile (16), one off either
/// side of each, and sizes well past one tile.
const EDGE_DIMS: [usize; 10] = [0, 1, 3, 4, 5, 8, 15, 16, 17, 37];

fn bits(d: &Dense) -> Vec<u32> {
    d.data().iter().map(|v| v.to_bits()).collect()
}

/// Dense matrix with ~20% exact zeros, so the naive kernels' `aik == 0.0`
/// skip paths are exercised against the blocked engine's skip-free loops.
fn dense(rng: &mut StdRng, r: usize, c: usize) -> Dense {
    Dense::from_fn(r, c, |_, _| {
        if rng.gen_range(0..5u32) == 0 {
            0.0
        } else {
            rng.gen_range(-2.0..2.0f32)
        }
    })
}

fn random_csr(rng: &mut StdRng, rows: usize, cols: usize) -> Csr {
    let mut coo = Vec::new();
    for r in 0..rows {
        let nnz = match rng.gen_range(0..8u32) {
            0..=1 => 0,
            7 => rng.gen_range(0..cols.min(32)),
            _ => rng.gen_range(0..4),
        };
        for _ in 0..nnz {
            coo.push((
                r as u32,
                rng.gen_range(0..cols as u32),
                rng.gen_range(-1.0..1.0),
            ));
        }
    }
    Csr::from_coo(rows, cols, coo)
}

fn ctx(kernel: KernelKind, threads: usize) -> ComputeCtx {
    ComputeCtx::with_threads(threads).with_kernel(kernel)
}

/// One qc-drawn dimension: mostly edge cases, sometimes a larger free
/// size so the multi-tile and parallel-cutoff paths run too.
fn dim(rng: &mut StdRng) -> usize {
    if rng.gen_range(0..3u32) == 0 {
        rng.gen_range(18..90)
    } else {
        EDGE_DIMS[rng.gen_range(0..EDGE_DIMS.len())]
    }
}

/// A nonzero [`dim`], for operand sides that must stay conformable with
/// a nonempty output.
fn dim_nz(rng: &mut StdRng) -> usize {
    dim(rng).max(1)
}

#[test]
fn gemm_all_variants_blocked_equals_naive_bitwise() {
    qc::run(48, |rng| {
        let (m, k, n) = (dim(rng), dim(rng), dim(rng));
        let a = dense(rng, m, k);
        let b = dense(rng, k, n);
        let bt = dense(rng, n, k);
        let at_b = dense(rng, m, n);
        for t in THREAD_COUNTS {
            let naive = ctx(KernelKind::Naive, t);
            let blocked = ctx(KernelKind::Blocked, t);
            assert_eq!(
                bits(&naive.matmul(&a, &b)),
                bits(&blocked.matmul(&a, &b)),
                "matmul {m}x{k}x{n} t={t}"
            );
            assert_eq!(
                bits(&naive.matmul_bt(&a, &bt)),
                bits(&blocked.matmul_bt(&a, &bt)),
                "matmul_bt {m}x{k}x{n} t={t}"
            );
            assert_eq!(
                bits(&naive.matmul_at(&a, &at_b)),
                bits(&blocked.matmul_at(&a, &at_b)),
                "matmul_at {m}x{k}x{n} t={t}"
            );
        }
    });
}

#[test]
fn gemm_accumulate_blocked_equals_naive_bitwise() {
    qc::run(32, |rng| {
        let (m, k, n) = (dim(rng), dim_nz(rng), dim(rng));
        let a = dense(rng, m, k);
        let b = dense(rng, k, n);
        for t in THREAD_COUNTS {
            let naive = ctx(KernelKind::Naive, t);
            let blocked = ctx(KernelKind::Blocked, t);
            // Seed the accumulator with a prior kernel output — the
            // sum-reachable state real training buffers are always in
            // (never -0.0; see DESIGN.md §10 on the zero-skip argument).
            let mut out_n = naive.matmul(&a, &b);
            let mut out_b = out_n.clone();
            naive.matmul_into(&a, &b, &mut out_n, true);
            blocked.matmul_into(&a, &b, &mut out_b, true);
            assert_eq!(bits(&out_n), bits(&out_b), "accumulate {m}x{k}x{n} t={t}");
        }
    });
}

#[test]
fn spmm_blocked_equals_naive_bitwise() {
    qc::run(48, |rng| {
        let rows = dim(rng);
        let cols = dim_nz(rng);
        let d = dim(rng);
        let a = random_csr(rng, rows, cols);
        let h = dense(rng, cols, d);
        for t in THREAD_COUNTS {
            let naive = ctx(KernelKind::Naive, t);
            let blocked = ctx(KernelKind::Blocked, t);
            let out_n = naive.spmm(&a, &h);
            let out_b = blocked.spmm(&a, &h);
            assert_eq!(bits(&out_n), bits(&out_b), "spmm {rows}x{cols}x{d} t={t}");

            let mut acc_n = out_n.clone();
            let mut acc_b = out_b;
            naive.spmm_into(&a, &h, &mut acc_n, true);
            blocked.spmm_into(&a, &h, &mut acc_b, true);
            assert_eq!(
                bits(&acc_n),
                bits(&acc_b),
                "spmm accumulate {rows}x{cols}x{d} t={t}"
            );
        }
    });
}

#[test]
fn flops_are_shape_derived_and_engine_independent() {
    let a = Dense::zeros(12, 7);
    let b = Dense::zeros(7, 5);
    let g = Dense::zeros(12, 5);
    let csr = Csr::from_coo(4, 7, vec![(0, 1, 1.0), (2, 3, 2.0), (2, 6, -1.0)]);
    let h = Dense::zeros(7, 3);
    for kernel in [KernelKind::Naive, KernelKind::Blocked] {
        let c = ctx(kernel, 1);
        let _ = c.matmul(&a, &b); // 2·12·7·5
        let _ = c.matmul_bt(&a, &a); // 2·12·7·12
        let _ = c.matmul_at(&a, &g); // 2·12·7·5
        let _ = c.spmm(&csr, &h); // 2·3·3
        assert_eq!(
            c.take_flops(),
            2 * (12 * 7 * 5) + 2 * (12 * 7 * 12) + 2 * (12 * 7 * 5) + 2 * (3 * 3),
            "{kernel:?}"
        );
        assert_eq!(c.flops(), 0, "take_flops must drain");
    }
}
