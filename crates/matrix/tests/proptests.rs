//! Randomized tests for the matrix kernels: the distributed algorithm's
//! correctness rests on SpMM/DMM linearity and on gather/scatter being
//! exact inverses, so these invariants are fuzzed over random shapes and
//! patterns via the seeded `pargcn_util::qc` runner (failures print the
//! case seed; replay with `PARGCN_QC_SEED=<seed>`).

use pargcn_matrix::{gather, Csr, Dense};
use pargcn_util::qc;
use pargcn_util::rng::{Rng, StdRng};

/// Dense matrix of exactly `r × c` with entries in `[-10, 10)`.
fn dense(rng: &mut StdRng, r: usize, c: usize) -> Dense {
    Dense::from_fn(r, c, |_, _| rng.gen_range(-10.0..10.0f32))
}

/// Random sparse matrix of shape `r × c` built from up to `r·c` COO
/// triplets (duplicates merge, like the proptest strategy it replaces).
fn csr(rng: &mut StdRng, r: usize, c: usize) -> Csr {
    let nnz = rng.gen_range(0..(r * c).max(1));
    let coo: Vec<(u32, u32, f32)> = (0..nnz)
        .map(|_| {
            (
                rng.gen_range(0..r as u32),
                rng.gen_range(0..c as u32),
                rng.gen_range(-4.0..4.0),
            )
        })
        .collect();
    Csr::from_coo(r, c, coo)
}

#[test]
fn spmm_matches_densified_multiply() {
    qc::check(|rng| {
        let a = csr(rng, 8, 6);
        let h = dense(rng, 6, 5);
        let sparse = a.spmm(&h);
        let densified = a.to_dense().matmul(&h);
        assert!(sparse.approx_eq(&densified, 1e-4));
    });
}

#[test]
fn spmm_is_linear_in_h() {
    qc::check(|rng| {
        let a = csr(rng, 6, 6);
        let h1 = dense(rng, 6, 4);
        let h2 = dense(rng, 6, 4);
        let mut sum = h1.clone();
        sum.add_assign(&h2);
        let lhs = a.spmm(&sum);
        let mut rhs = a.spmm(&h1);
        rhs.add_assign(&a.spmm(&h2));
        assert!(lhs.approx_eq(&rhs, 1e-3));
    });
}

/// Row-splitting SpMM and summing the per-block partial products over
/// matching column blocks reproduces the full product — the algebraic
/// fact behind Eq. 7 of the paper.
#[test]
fn spmm_row_split_recomposes() {
    qc::check(|rng| {
        let a = csr(rng, 8, 8);
        let h = dense(rng, 8, 3);
        let split = rng.gen_range(1usize..7);
        let full = a.spmm(&h);
        let top: Vec<u32> = (0..split as u32).collect();
        let bot: Vec<u32> = (split as u32..8).collect();
        let a_top = a.select_rows(&top);
        let a_bot = a.select_rows(&bot);
        let z_top = a_top.spmm(&h);
        let z_bot = a_bot.spmm(&h);
        for (k, &i) in top.iter().enumerate() {
            assert_eq!(z_top.row(k), full.row(i as usize));
        }
        for (k, &i) in bot.iter().enumerate() {
            assert_eq!(z_bot.row(k), full.row(i as usize));
        }
    });
}

#[test]
fn transpose_preserves_values() {
    qc::check(|rng| {
        let a = csr(rng, 7, 5);
        let t = a.transpose();
        assert_eq!(a.nnz(), t.nnz());
        let ad = a.to_dense();
        let td = t.to_dense();
        for i in 0..7 {
            for j in 0..5 {
                assert_eq!(ad.get(i, j), td.get(j, i));
            }
        }
    });
}

#[test]
fn gather_then_scatter_is_identity_on_selected() {
    qc::check(|rng| {
        let h = dense(rng, 10, 4);
        let count = rng.gen_range(1..10usize);
        let raw_idx: std::collections::BTreeSet<u32> =
            (0..count).map(|_| rng.gen_range(0..10u32)).collect();
        let idx: Vec<u32> = raw_idx.into_iter().collect();
        let g = gather::gather_rows(&h, &idx);
        let mut dst = Dense::zeros(10, h.cols());
        gather::scatter_rows(&g, &idx, &mut dst);
        for &i in &idx {
            assert_eq!(dst.row(i as usize), h.row(i as usize));
        }
    });
}

#[test]
fn matmul_associativity_with_tolerance() {
    qc::check(|rng| {
        let a = dense(rng, 4, 4);
        let b = dense(rng, 4, 4);
        let c = dense(rng, 4, 4);
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        assert!(lhs.approx_eq(&rhs, 1e-2));
    });
}

#[test]
fn from_coo_iter_roundtrip() {
    qc::check(|rng| {
        let r = rng.gen_range(1usize..8);
        let c = rng.gen_range(1usize..8);
        let coo: Vec<(u32, u32, f32)> = (0..r)
            .flat_map(|i| {
                (0..c)
                    .filter(move |j| (i + j) % 3 == 0)
                    .map(move |j| (i as u32, j as u32, (i * c + j) as f32))
            })
            .collect();
        let m = Csr::from_coo(r, c, coo.clone());
        let back: Vec<(u32, u32, f32)> = m.iter().collect();
        assert_eq!(coo, back);
    });
}
