//! Property-based tests for the matrix kernels: the distributed algorithm's
//! correctness rests on SpMM/DMM linearity and on gather/scatter being exact
//! inverses, so these invariants are fuzzed over random shapes and patterns.

use pargcn_matrix::{gather, Csr, Dense};
use proptest::prelude::*;

/// Strategy producing a dense matrix of exactly `r × c`.
fn dense(r: usize, c: usize) -> impl Strategy<Value = Dense> {
    proptest::collection::vec(-10.0f32..10.0, r * c)
        .prop_map(move |data| Dense::from_vec(r, c, data))
}

/// Strategy producing a random sparse matrix of shape `r × c`.
fn csr(r: usize, c: usize) -> impl Strategy<Value = Csr> {
    proptest::collection::vec(((0..r as u32), (0..c as u32), -4.0f32..4.0), 0..(r * c).max(1))
        .prop_map(move |coo| Csr::from_coo(r, c, coo))
}

proptest! {
    #[test]
    fn spmm_matches_densified_multiply(a in csr(8, 6), h in dense(6, 5)) {
        
        let sparse = a.spmm(&h);
        let densified = a.to_dense().matmul(&h);
        prop_assert!(sparse.approx_eq(&densified, 1e-4));
    }

    #[test]
    fn spmm_is_linear_in_h(a in csr(6, 6), h1 in dense(6, 4), h2 in dense(6, 4)) {
        
        let mut sum = h1.clone();
        sum.add_assign(&h2);
        let lhs = a.spmm(&sum);
        let mut rhs = a.spmm(&h1);
        rhs.add_assign(&a.spmm(&h2));
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    /// Row-splitting SpMM and summing the per-block partial products over
    /// matching column blocks reproduces the full product — the algebraic
    /// fact behind Eq. 7 of the paper.
    #[test]
    fn spmm_row_split_recomposes(a in csr(8, 8), h in dense(8, 3), split in 1usize..7) {
        
        let full = a.spmm(&h);
        let top: Vec<u32> = (0..split as u32).collect();
        let bot: Vec<u32> = (split as u32..8).collect();
        let a_top = a.select_rows(&top);
        let a_bot = a.select_rows(&bot);
        let z_top = a_top.spmm(&h);
        let z_bot = a_bot.spmm(&h);
        for (k, &i) in top.iter().enumerate() {
            prop_assert_eq!(z_top.row(k), full.row(i as usize));
        }
        for (k, &i) in bot.iter().enumerate() {
            prop_assert_eq!(z_bot.row(k), full.row(i as usize));
        }
    }

    #[test]
    fn transpose_preserves_values(a in csr(7, 5)) {
        let t = a.transpose();
        prop_assert_eq!(a.nnz(), t.nnz());
        let ad = a.to_dense();
        let td = t.to_dense();
        for i in 0..7 {
            for j in 0..5 {
                prop_assert_eq!(ad.get(i, j), td.get(j, i));
            }
        }
    }

    #[test]
    fn gather_then_scatter_is_identity_on_selected(h in dense(10, 4), raw_idx in proptest::collection::btree_set(0u32..10, 1..10)) {
        
        let idx: Vec<u32> = raw_idx.into_iter().collect();
        let g = gather::gather_rows(&h, &idx);
        let mut dst = Dense::zeros(10, h.cols());
        gather::scatter_rows(&g, &idx, &mut dst);
        for &i in &idx {
            prop_assert_eq!(dst.row(i as usize), h.row(i as usize));
        }
    }

    #[test]
    fn matmul_associativity_with_tolerance(a in dense(4, 4), b in dense(4, 4), c in dense(4, 4)) {
        
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        prop_assert!(lhs.approx_eq(&rhs, 1e-2));
    }

    #[test]
    fn from_coo_iter_roundtrip(r in 1usize..8, c in 1usize..8) {
        let coo: Vec<(u32, u32, f32)> = (0..r).flat_map(|i| (0..c).filter(move |j| (i + j) % 3 == 0).map(move |j| (i as u32, j as u32, (i * c + j) as f32))).collect();
        let m = Csr::from_coo(r, c, coo.clone());
        let back: Vec<(u32, u32, f32)> = m.iter().collect();
        prop_assert_eq!(coo, back);
    }
}
