//! Bitwise determinism of the pooled kernels.
//!
//! The contract (DESIGN.md, hybrid rank×thread section): every `_pool`
//! kernel produces output **bitwise identical** to its serial counterpart
//! at any thread count, because chunks write disjoint output rows with the
//! serial inner loops and nothing is reduced across threads. These tests
//! pin that down over qc-seeded shapes, including empty rows, skewed
//! (hub-heavy) sparsity, and row counts far above the chunk count.

use pargcn_matrix::{Csr, Dense};
use pargcn_util::pool::Pool;
use pargcn_util::qc;
use pargcn_util::rng::{Rng, SeedableRng, StdRng};

const THREAD_COUNTS: [usize; 3] = [1, 2, 7];

fn bits(d: &Dense) -> Vec<u32> {
    d.data().iter().map(|v| v.to_bits()).collect()
}

/// Random CSR with forced empty rows and a few dense "hub" rows, so the
/// nnz-weighted chunking sees the skew it exists for.
fn random_csr(rng: &mut StdRng, rows: usize, cols: usize) -> Csr {
    let mut coo = Vec::new();
    for r in 0..rows {
        let nnz = match rng.gen_range(0..10u32) {
            0..=2 => 0,                          // empty row
            9 => rng.gen_range(0..cols.min(64)), // hub row
            _ => rng.gen_range(0..4),
        };
        for _ in 0..nnz {
            coo.push((
                r as u32,
                rng.gen_range(0..cols as u32),
                rng.gen_range(-1.0..1.0),
            ));
        }
    }
    Csr::from_coo(rows, cols, coo)
}

#[test]
fn spmm_bitwise_equal_across_thread_counts() {
    qc::run(24, |rng| {
        let rows = rng.gen_range(1..600);
        let cols = rng.gen_range(1..400);
        let d = rng.gen_range(1..48);
        let a = random_csr(rng, rows, cols);
        let h = Dense::random(cols, d, rng);
        let expected = bits(&a.spmm(&h));
        for t in THREAD_COUNTS {
            let pool = Pool::new(t);
            assert_eq!(
                bits(&a.spmm_pool(&h, &pool)),
                expected,
                "spmm at {t} threads"
            );
            // The accumulate path too.
            let mut out = a.spmm(&h);
            a.spmm_into_pool(&h, &mut out, true, &pool);
            let mut twice = a.spmm(&h);
            a.spmm_into(&h, &mut twice, true);
            assert_eq!(bits(&out), bits(&twice), "spmm accumulate at {t} threads");
        }
    });
}

#[test]
fn matmul_bitwise_equal_across_thread_counts() {
    qc::run(24, |rng| {
        let m = rng.gen_range(1..400);
        let k = rng.gen_range(1..48);
        let n = rng.gen_range(1..48);
        let a = Dense::random(m, k, rng);
        let b = Dense::random(k, n, rng);
        let expected = bits(&a.matmul(&b));
        for t in THREAD_COUNTS {
            let pool = Pool::new(t);
            assert_eq!(
                bits(&a.matmul_pool(&b, &pool)),
                expected,
                "matmul at {t} threads"
            );
        }
    });
}

#[test]
fn matmul_bt_bitwise_equal_across_thread_counts() {
    qc::run(24, |rng| {
        let m = rng.gen_range(1..400);
        let k = rng.gen_range(1..48);
        let n = rng.gen_range(1..64);
        let a = Dense::random(m, k, rng);
        let b = Dense::random(n, k, rng);
        let expected = bits(&a.matmul_bt(&b));
        for t in THREAD_COUNTS {
            let pool = Pool::new(t);
            assert_eq!(
                bits(&a.matmul_bt_pool(&b, &pool)),
                expected,
                "matmul_bt at {t} threads"
            );
        }
    });
}

#[test]
fn matmul_at_bitwise_equal_across_thread_counts() {
    qc::run(24, |rng| {
        let n = rng.gen_range(1..400);
        let m = rng.gen_range(1..64);
        let k = rng.gen_range(1..48);
        let a = Dense::random(n, m, rng);
        let b = Dense::random(n, k, rng);
        let expected = bits(&a.matmul_at(&b));
        for t in THREAD_COUNTS {
            let pool = Pool::new(t);
            assert_eq!(
                bits(&a.matmul_at_pool(&b, &pool)),
                expected,
                "matmul_at at {t} threads"
            );
        }
    });
}

#[test]
fn map_bitwise_equal_across_thread_counts() {
    qc::run(16, |rng| {
        let m = rng.gen_range(1..500);
        let n = rng.gen_range(1..64);
        let a = Dense::random(m, n, rng);
        let f = |v: f32| (v - 0.5).max(0.0);
        let expected = bits(&a.map(f));
        for t in THREAD_COUNTS {
            let pool = Pool::new(t);
            assert_eq!(bits(&a.map_pool(&pool, f)), expected, "map at {t} threads");
            let mut inplace = a.clone();
            inplace.map_inplace_pool(&pool, f);
            assert_eq!(bits(&inplace), expected, "map_inplace at {t} threads");
        }
    });
}

#[test]
fn rows_far_exceeding_chunk_count() {
    // One big deterministic case: 20k rows on a 7-thread pool, so every
    // chunk spans thousands of rows.
    let mut rng = StdRng::seed_from_u64(42);
    let a = random_csr(&mut rng, 20_000, 500);
    let h = Dense::random(500, 16, &mut rng);
    let expected = bits(&a.spmm(&h));
    for t in THREAD_COUNTS {
        let pool = Pool::new(t);
        assert_eq!(bits(&a.spmm_pool(&h, &pool)), expected);
    }
}
