//! In-house, zero-dependency utilities backing the whole workspace.
//!
//! DESIGN.md commits to a from-scratch reproduction of Demirci et al.
//! (VLDB 2022): the comm runtime already replaces MPI with hand-built
//! primitives, and this crate removes the remaining third-party utility
//! crates so the workspace builds with `cargo build --offline --locked`
//! from a clean checkout with an empty registry cache.
//!
//! | module        | replaces                      | used by                       |
//! |---------------|-------------------------------|-------------------------------|
//! | [`rng`]       | `rand`                        | graph gens, partitioners, init|
//! | [`channel`]   | `crossbeam::channel`          | `pargcn-comm` isend/recv      |
//! | [`json`]      | `serde` + `serde_json`        | `pargcn-bench` result files   |
//! | [`bench`]     | `criterion`                   | `crates/bench/benches/*`      |
//! | [`qc`]        | `proptest`                    | randomized invariant tests    |
//! | [`pool`]      | `rayon` (scoped thread pool)  | `pargcn-matrix` kernels       |
//! | [`allocmeter`]| `dhat`/`counting_allocator`   | comm-path no-alloc assertions |
//!
//! Everything here is deliberately small: only the API surface the
//! workspace actually uses, with deterministic, portable behaviour so
//! results reproduce bit-for-bit across machines and runs.

pub mod allocmeter;
pub mod bench;
pub mod channel;
pub mod json;
pub mod pool;
pub mod qc;
pub mod rng;
