//! Deterministic randomized-testing runner replacing `proptest`.
//!
//! A property is a closure over a seeded [`StdRng`]; [`run`] executes it
//! for N independently-seeded cases and, when a case fails, reports the
//! exact seed so the failure replays in isolation:
//!
//! ```text
//! PARGCN_QC_SEED=0xdeadbeef cargo test -p pargcn-matrix failing_test
//! ```
//!
//! There is no shrinking — instead every case is cheap and the failing
//! seed is printed, which in practice localises bugs as fast for the
//! algebraic invariants this workspace checks. Unlike proptest there is
//! also no persistence file: the case seeds are a pure function of the
//! base seed, so CI and local runs explore the identical sequence.

use crate::rng::{Rng, SeedableRng, StdRng};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Default number of cases, overridable with `PARGCN_QC_CASES`.
pub const DEFAULT_CASES: usize = 64;

/// Derives the RNG seed for case `i` of a run with base seed `base`
/// (SplitMix64 finalizer, so neighbouring cases are uncorrelated).
pub fn case_seed(base: u64, i: u64) -> u64 {
    let mut z = base ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        raw.parse().ok()
    }
}

/// Runs `property` for `cases` seeded cases (assert inside the closure as
/// in any test). `PARGCN_QC_CASES` overrides the count; `PARGCN_QC_SEED`
/// replays one exact seed instead of the sweep.
pub fn run(cases: usize, property: impl Fn(&mut StdRng)) {
    if let Some(seed) = env_u64("PARGCN_QC_SEED") {
        let mut rng = StdRng::seed_from_u64(seed);
        property(&mut rng);
        return;
    }
    let cases = env_u64("PARGCN_QC_CASES")
        .map(|n| n as usize)
        .unwrap_or(cases);
    let base = env_u64("PARGCN_QC_BASE").unwrap_or(0x5EED_CAFE);
    for i in 0..cases {
        let seed = case_seed(base, i as u64);
        let mut rng = StdRng::seed_from_u64(seed);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| property(&mut rng))) {
            eprintln!(
                "qc: case {i}/{cases} failed with seed {seed:#x}; \
                 replay with PARGCN_QC_SEED={seed:#x}"
            );
            resume_unwind(payload);
        }
    }
}

/// [`run`] with [`DEFAULT_CASES`].
pub fn check(property: impl Fn(&mut StdRng)) {
    run(DEFAULT_CASES, property);
}

/// Random vector of the given length drawn from `gen`.
pub fn vec_of<T>(rng: &mut StdRng, len: usize, mut gen: impl FnMut(&mut StdRng) -> T) -> Vec<T> {
    (0..len).map(|_| gen(rng)).collect()
}

/// Random vector with a length drawn uniformly from `len_range`.
pub fn sized_vec_of<T>(
    rng: &mut StdRng,
    len_range: std::ops::Range<usize>,
    gen: impl FnMut(&mut StdRng) -> T,
) -> Vec<T> {
    let len = rng.gen_range(len_range);
    vec_of(rng, len, gen)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_passing_property_completes() {
        run(16, |rng| {
            let v = rng.gen_range(0..10u32);
            assert!(v < 10);
        });
    }

    #[test]
    fn failing_property_reports_and_panics() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run(8, |rng| {
                let v: u64 = rng.gen_range(0..1_000_000);
                assert!(!v.is_multiple_of(7), "hit a multiple of 7: {v}");
            });
        }));
        assert!(result.is_err(), "property violation must propagate");
    }

    #[test]
    fn case_seeds_are_distinct() {
        let seeds: std::collections::BTreeSet<u64> = (0..1000).map(|i| case_seed(1, i)).collect();
        assert_eq!(seeds.len(), 1000);
    }

    #[test]
    fn sized_vec_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = sized_vec_of(&mut rng, 2..9, |r| r.gen_range(0..5u32));
            assert!((2..9).contains(&v.len()));
        }
    }
}
