//! Seedable, portable pseudo-random number generation.
//!
//! The generator is xoshiro256** (Blackman & Vigna) seeded through
//! SplitMix64 — the standard construction: fast, passes BigCrush, and
//! fully deterministic across platforms for a fixed seed, which the
//! reproducibility story of the experiments depends on.
//!
//! The trait layout mirrors the subset of `rand`'s API the workspace
//! uses (`Rng::gen_range` / `gen` / `gen_bool`, `SeedableRng`,
//! `SliceRandom::shuffle`) so call sites only swap their imports.

use std::ops::{Range, RangeInclusive};

/// Raw 64-bit generator interface; everything else is derived from it.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed (the only seeding the workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// The workspace's standard generator: xoshiro256**.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the 256-bit state; its
        // output is equidistributed, so the all-zero state (the one state
        // xoshiro cannot leave) is unreachable in practice, but guard
        // anyway to keep the constructor total.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut s = [next(), next(), next(), next()];
        if s == [0, 0, 0, 0] {
            s = [0xDEAD_BEEF, 1, 2, 3];
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Uniform value in `[0, span)` by widening multiply (Lemire's method
/// without the rejection step: the bias is < 2⁻⁶⁴·span, irrelevant for
/// the spans used here, and keeping it branch-free keeps the stream
/// deterministic and cheap).
#[inline]
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Uniform `f64` in `[0, 1)` with 53 random bits.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `f32` in `[0, 1)` with 24 random bits.
#[inline]
fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Types `gen::<T>()` can produce.
pub trait Standard: Sized {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    #[inline]
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng)
    }
}

impl Standard for f64 {
    #[inline]
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for u32 {
    #[inline]
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    #[inline]
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    #[inline]
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    #[inline]
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                // Work in u128 so `low..=high` spanning the full domain
                // cannot overflow the span computation.
                let lo = low as i128;
                let hi = high as i128;
                let span = (hi - lo) as u128 + if inclusive { 1 } else { 0 };
                if span == 0 || span > u64::MAX as u128 {
                    return (lo + rng.next_u64() as i128) as $t;
                }
                (lo + below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    #[inline]
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        _inclusive: bool,
    ) -> Self {
        low + (high - low) * unit_f32(rng)
    }
}

impl SampleUniform for f64 {
    #[inline]
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        _inclusive: bool,
    ) -> Self {
        low + (high - low) * unit_f64(rng)
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range on an empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range on an empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

/// User-facing draw methods, blanket-implemented over any [`RngCore`].
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::generate(self)
    }

    #[inline]
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Standard normal `f32` via Box–Muller (used for Gaussian feature
/// synthesis; one of the two variates is discarded to keep the draw
/// count per call fixed, which keeps downstream streams aligned).
pub fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    let u1 = unit_f64(rng).max(f64::EPSILON);
    let u2 = unit_f64(rng);
    ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()) as f32
}

/// Normal `f32` with the given mean and standard deviation.
pub fn normal<R: RngCore + ?Sized>(rng: &mut R, mean: f32, std_dev: f32) -> f32 {
    mean + std_dev * standard_normal(rng)
}

/// In-place Fisher–Yates shuffle, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    type Item;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = below(rng, (i + 1) as u64) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[below(rng, self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-2.0..2.0f32);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_inclusive_endpoints() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0..=2usize)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn unit_floats_in_half_open_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
