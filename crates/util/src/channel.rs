//! Unbounded multi-producer channel replacing `crossbeam::channel` in the
//! comm runtime.
//!
//! A `Mutex<VecDeque>` + `Condvar` pair is all the isend/recv runtime
//! needs: `send` never blocks (unbounded), `recv` parks until a message
//! or disconnection, and per-sender FIFO order falls out of the single
//! queue — which is exactly MPI's non-overtaking guarantee the runtime
//! documents. Messages in the GCN trainer are whole row-block payloads
//! (kilobytes), so lock acquisition is noise next to payload memcpy.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    available: Condvar,
}

/// Error returned by [`Sender::send`] when every receiver is gone; the
/// unsent message is handed back.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

// Manual impl so `Result::expect` works without requiring `T: Debug`,
// matching the crossbeam type this replaces.
impl<T> std::fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SendError(..)")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing queued right now, but senders remain.
    Empty,
    /// Nothing queued and every sender is gone.
    Disconnected,
}

/// Sending half; clone freely (multi-producer).
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// Receiving half; clone for multi-consumer fan-out.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// Creates an unbounded FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        available: Condvar::new(),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Sender<T> {
    /// Enqueues `msg` without blocking. Fails only if every receiver has
    /// been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = self.inner.state.lock().unwrap();
        if state.receivers == 0 {
            return Err(SendError(msg));
        }
        state.queue.push_back(msg);
        drop(state);
        self.inner.available.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().unwrap().senders += 1;
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().unwrap();
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            // Wake blocked receivers so they can observe disconnection.
            self.inner.available.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or all senders disconnect.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.inner.state.lock().unwrap();
        loop {
            if let Some(msg) = state.queue.pop_front() {
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.inner.available.wait(state).unwrap();
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.inner.state.lock().unwrap();
        match state.queue.pop_front() {
            Some(msg) => Ok(msg),
            None if state.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.inner.state.lock().unwrap().queue.len()
    }

    /// Reserves capacity for at least `additional` more queued messages,
    /// so later `send`s up to that depth never grow the queue. The comm
    /// runtime calls this at prewarm time: queue high-water marks are
    /// scheduling-dependent, and reserving up front is what makes the
    /// steady state allocation-free under *any* interleaving.
    pub fn reserve(&self, additional: usize) {
        self.inner.state.lock().unwrap().queue.reserve(additional);
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().unwrap().receivers += 1;
        Receiver {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.inner.state.lock().unwrap().receivers -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_single_thread() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn try_recv_empty_then_value() {
        let (tx, rx) = unbounded();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv(), Ok(7));
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_errors_after_receiver_drops() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn blocked_recv_wakes_on_send() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(std::time::Duration::from_millis(20));
        tx.send(42u32).unwrap();
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn reserve_keeps_semantics() {
        let (tx, rx) = unbounded();
        rx.reserve(64);
        assert!(rx.is_empty());
        for i in 0..64 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 64);
        for i in 0..64 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn per_sender_fifo_under_concurrency() {
        let (tx, rx) = unbounded();
        let threads = 4;
        let per = 500;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..per {
                        tx.send((t, i)).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut last = vec![-1i64; threads];
        let mut count = 0;
        while let Ok((t, i)) = rx.recv() {
            assert!(i as i64 > last[t], "sender {t} reordered");
            last[t] = i as i64;
            count += 1;
        }
        assert_eq!(count, threads * per);
        for h in handles {
            h.join().unwrap();
        }
    }
}
