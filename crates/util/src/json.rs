//! Minimal JSON value, writer, and parser replacing `serde`/`serde_json`
//! for the bench result files.
//!
//! The only JSON in the workspace is the experiment result schema
//! (`results/*.json`: arrays of rows with string fields and an f64
//! metrics map), so this module supports exactly full JSON values with
//! f64 numbers — enough to write those files byte-compatibly with the
//! previous `serde_json::to_string_pretty` output and to read them back.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Numbers are `f64` (the schema has no integers wider
/// than 2⁵³); object keys keep insertion order to match the fixed field
/// order the previous derive-based writer emitted.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object constructor preserving field order.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Compact single-line encoding.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Two-space-indented encoding matching `serde_json::to_string_pretty`.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1)
            }),
            Json::Obj(fields) => write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                let (k, v) = &fields[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                v.write(out, indent, depth + 1);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; null is the conventional fallback.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        // Integral values print without an exponent or trailing ".0",
        // matching serde_json's integer formatting for whole numbers.
        let _ = write!(out, "{}", n as i64);
    } else {
        // Rust's shortest-roundtrip f64 Display matches serde_json.
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Converts an ordered metrics map (the common result-row payload).
pub fn from_metrics(metrics: &BTreeMap<String, f64>) -> Json {
    Json::Obj(
        metrics
            .iter()
            .map(|(k, v)| (k.clone(), Json::Num(*v)))
            .collect(),
    )
}

/// Parse error with byte offset for context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                cp
                            };
                            out.push(
                                char::from_u32(c)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // continuation bytes are guaranteed well-formed).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_print_matches_serde_layout() {
        let v = Json::Arr(vec![Json::obj(vec![
            ("experiment", Json::Str("fig3".into())),
            ("p", Json::Num(16.0)),
            (
                "metrics",
                Json::obj(vec![("epoch_seconds", Json::Num(0.0025))]),
            ),
        ])]);
        let expected = "[\n  {\n    \"experiment\": \"fig3\",\n    \"p\": 16,\n    \"metrics\": {\n      \"epoch_seconds\": 0.0025\n    }\n  }\n]";
        assert_eq!(v.to_string_pretty(), expected);
    }

    #[test]
    fn roundtrip_via_parser() {
        let v = Json::obj(vec![
            ("a", Json::Num(1.5)),
            ("b", Json::Str("x \"quoted\" \n".into())),
            (
                "c",
                Json::Arr(vec![Json::Bool(true), Json::Null, Json::Num(-3.0)]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        assert_eq!(parse(&v.to_string_pretty()).unwrap(), v);
        assert_eq!(parse(&v.to_string_compact()).unwrap(), v);
    }

    #[test]
    fn parses_existing_result_file_shape() {
        let text = r#"[
  {
    "experiment": "fig3_cpu",
    "dataset": "amazon0601",
    "method": "HP",
    "p": 16,
    "metrics": {
      "epoch_seconds": 0.0025182201599999996
    }
  }
]"#;
        let v = parse(text).unwrap();
        let rows = v.as_array().unwrap();
        assert_eq!(rows[0].get("method").unwrap().as_str(), Some("HP"));
        assert_eq!(rows[0].get("p").unwrap().as_f64(), Some(16.0));
        assert_eq!(
            rows[0]
                .get("metrics")
                .unwrap()
                .get("epoch_seconds")
                .unwrap()
                .as_f64(),
            Some(0.0025182201599999996)
        );
    }

    #[test]
    fn number_formatting_roundtrips_f64() {
        for n in [0.1, 1.0 / 3.0, 1e-12, 123456789.25, 0.0025182201599999996] {
            let s = Json::Num(n).to_string_compact();
            assert_eq!(s.parse::<f64>().unwrap(), n, "text {s}");
        }
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""A😀""#).unwrap(), Json::Str("A😀".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{,}").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1}").is_err());
    }
}
