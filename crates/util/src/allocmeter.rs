//! Thread-local heap-allocation counting for "this path must not
//! allocate" assertions.
//!
//! [`CountingAllocator`] wraps the system allocator and bumps a
//! thread-local counter on every `alloc`/`alloc_zeroed`/`realloc`. It is
//! *not* installed by default: a test binary opts in with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: pargcn_util::allocmeter::CountingAllocator = CountingAllocator;
//! ```
//!
//! and production code samples [`current`] around a region to attribute
//! allocations to it (the comm runtime does this for its hot path,
//! reporting the delta as `CommCounters::comm_path_allocs`). When the
//! allocator is not installed the counter never moves and every delta is
//! zero, so the instrumentation costs two thread-local reads and nothing
//! else.
//!
//! The counter is a `const`-initialised, `Drop`-free thread local:
//! touching it can itself never allocate (which would recurse into the
//! allocator) and it needs no lazy-init or destructor bookkeeping, so it
//! is safe to poke from inside `GlobalAlloc` even while a thread is
//! being torn down (`try_with` covers the post-teardown window).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Number of heap allocations (`alloc` + `alloc_zeroed` + `realloc`)
/// performed by the *current thread* since it started — always 0 unless
/// [`CountingAllocator`] is the installed global allocator. Frees are
/// deliberately not counted: a recycled buffer that is later dropped is
/// not a hot-path cost.
#[inline]
pub fn current() -> u64 {
    ALLOCS.try_with(|c| c.get()).unwrap_or(0)
}

#[inline]
fn bump() {
    let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
}

/// A `#[global_allocator]`-installable wrapper over [`System`] that
/// counts allocations per thread (see the module docs).
pub struct CountingAllocator;

// SAFETY: defers every operation to `System`; the counter is a no-alloc,
// no-drop thread local, so the bookkeeping cannot re-enter the allocator.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The allocator is not installed in this crate's unit-test binary, so
    // the counter must stay pinned at zero no matter what allocates.
    #[test]
    fn counter_is_zero_when_not_installed() {
        let before = current();
        let v: Vec<u64> = (0..1024).collect();
        assert_eq!(v.len(), 1024);
        assert_eq!(current(), before);
        assert_eq!(before, 0);
    }
}
