//! Tiny timing/bench harness replacing `criterion` for the four
//! `crates/bench/benches/*` targets.
//!
//! The API mirrors the subset of criterion those targets use
//! (`Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `sample_size`, and the
//! `criterion_group!`/`criterion_main!` macros), so a bench file only
//! swaps its imports. Methodology: a fixed warm-up, then N samples where
//! each sample times a batch of iterations sized so one sample lasts at
//! least ~2ms; median, p95, mean, and min over samples are reported.
//!
//! Output: one aligned text line per benchmark, and — with `--json
//! <path>` after `--`, or `PARGCN_BENCH_JSON=<path>` — machine-readable
//! rows in the same `{experiment, dataset, method, p, metrics}` schema
//! the experiment binaries emit (`results/*.json`), with the timing
//! statistics in `metrics`.

use crate::json::Json;
use std::time::{Duration, Instant};

/// Throughput annotation; reported as elements or bytes per second
/// computed from the median sample time.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter,
/// rendered `name/param` like criterion does.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{param}"),
        }
    }

    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            text: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { text: s }
    }
}

/// Statistics for one completed benchmark.
#[derive(Clone, Debug)]
pub struct BenchStats {
    pub group: String,
    pub name: String,
    pub samples: usize,
    pub iters_per_sample: u64,
    pub median: Duration,
    pub mean: Duration,
    pub min: Duration,
    pub p95: Duration,
    pub throughput: Option<Throughput>,
}

impl BenchStats {
    fn full_name(&self) -> String {
        if self.group.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.group, self.name)
        }
    }

    fn to_json(&self) -> Json {
        let mut metrics = vec![
            ("median_s".to_string(), Json::Num(self.median.as_secs_f64())),
            ("mean_s".to_string(), Json::Num(self.mean.as_secs_f64())),
            ("min_s".to_string(), Json::Num(self.min.as_secs_f64())),
            ("p95_s".to_string(), Json::Num(self.p95.as_secs_f64())),
            ("samples".to_string(), Json::Num(self.samples as f64)),
            (
                "iters_per_sample".to_string(),
                Json::Num(self.iters_per_sample as f64),
            ),
        ];
        match self.throughput {
            Some(Throughput::Elements(n)) => metrics.push((
                "elements_per_s".to_string(),
                Json::Num(n as f64 / self.median.as_secs_f64().max(1e-12)),
            )),
            Some(Throughput::Bytes(n)) => metrics.push((
                "bytes_per_s".to_string(),
                Json::Num(n as f64 / self.median.as_secs_f64().max(1e-12)),
            )),
            None => {}
        }
        Json::Obj(vec![
            ("experiment".to_string(), Json::Str("bench".to_string())),
            ("dataset".to_string(), Json::Str(self.full_name())),
            ("method".to_string(), Json::Str("wall_clock".to_string())),
            ("p".to_string(), Json::Num(1.0)),
            ("metrics".to_string(), Json::Obj(metrics)),
        ])
    }
}

/// Harness configuration and collected results.
pub struct Criterion {
    default_samples: usize,
    warmup: Duration,
    min_sample_time: Duration,
    filter: Option<String>,
    json_path: Option<String>,
    results: Vec<BenchStats>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 20,
            warmup: Duration::from_millis(200),
            min_sample_time: Duration::from_millis(2),
            filter: None,
            json_path: std::env::var("PARGCN_BENCH_JSON").ok(),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Builds a harness from `std::env::args`: a positional substring
    /// filters benchmark names (like criterion/libtest), `--json <path>`
    /// requests machine-readable output, `--quick` cuts sample counts
    /// for CI smoke runs, and harness flags cargo passes (`--bench`,
    /// `--test`) are ignored.
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--json" => {
                    i += 1;
                    c.json_path = args.get(i).cloned();
                }
                "--quick" => {
                    c.default_samples = 5;
                    c.warmup = Duration::from_millis(20);
                }
                "--bench" | "--test" | "--nocapture" => {}
                s if s.starts_with("--") => {
                    // Unknown harness flag: skip, consuming a value if one
                    // follows (cargo forwards libtest-style flags).
                    if matches!(args.get(i + 1), Some(v) if !v.starts_with("--")) {
                        i += 1;
                    }
                }
                s => c.filter = Some(s.to_string()),
            }
            i += 1;
        }
        if std::env::var("PARGCN_BENCH_QUICK").is_ok() {
            c.default_samples = 5;
            c.warmup = Duration::from_millis(20);
        }
        c
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            harness: self,
            name: name.into(),
            samples: None,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(String::new(), id.text, self.default_samples, None, f);
        self
    }

    fn run_one<F>(
        &mut self,
        group: String,
        name: String,
        samples: usize,
        throughput: Option<Throughput>,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher),
    {
        let full = if group.is_empty() {
            name.clone()
        } else {
            format!("{group}/{name}")
        };
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        // Calibration: let the closure run once to measure a single
        // iteration, then size the batch so one sample ≥ min_sample_time.
        let mut cal = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut cal);
        let once = cal.elapsed.max(Duration::from_nanos(1));
        let iters_per_sample =
            (self.min_sample_time.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        // Warm-up: run batches until the warm-up budget is spent.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warmup {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
        }

        let mut times: Vec<Duration> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            times.push(b.elapsed / iters_per_sample as u32);
        }
        times.sort_unstable();
        let median = times[times.len() / 2];
        let p95 = times[((times.len() as f64 * 0.95) as usize).min(times.len() - 1)];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        let min = times[0];
        let stats = BenchStats {
            group,
            name,
            samples,
            iters_per_sample,
            median,
            mean,
            min,
            p95,
            throughput,
        };
        print_stats(&stats);
        self.results.push(stats);
    }

    /// Prints the closing summary and writes the JSON report if requested.
    /// Called by `criterion_main!` after all groups have run.
    pub fn final_summary(&self) {
        eprintln!("\n{} benchmarks run", self.results.len());
        if let Some(path) = &self.json_path {
            let resolved = resolve_output_path(path);
            let rows = Json::Arr(self.results.iter().map(|s| s.to_json()).collect());
            std::fs::write(&resolved, rows.to_string_pretty()).expect("write bench json");
            eprintln!(
                "wrote {} rows to {}",
                self.results.len(),
                resolved.display()
            );
        }
    }
}

/// Anchors a relative `--json` path at the workspace root. `cargo bench`
/// runs bench binaries with the *package* directory as cwd, so a bare
/// `--json results/foo.json` would otherwise try (and fail) to write
/// into `crates/<pkg>/results/`. Walk up from the manifest directory to
/// the first ancestor holding a `Cargo.lock` — the workspace root — and
/// join the path there. Absolute paths pass through untouched.
fn resolve_output_path(path: &str) -> std::path::PathBuf {
    let p = std::path::Path::new(path);
    if p.is_absolute() {
        return p.to_path_buf();
    }
    let start = std::env::var("CARGO_MANIFEST_DIR")
        .map(std::path::PathBuf::from)
        .or_else(|_| std::env::current_dir())
        .unwrap_or_default();
    let mut dir = start.as_path();
    loop {
        if dir.join("Cargo.lock").is_file() {
            return dir.join(p);
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => return p.to_path_buf(),
        }
    }
}

fn print_stats(s: &BenchStats) {
    let extra = match s.throughput {
        Some(Throughput::Elements(n)) => {
            format!(
                "  {:>10.3e} elem/s",
                n as f64 / s.median.as_secs_f64().max(1e-12)
            )
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  {:>10.3e} B/s",
                n as f64 / s.median.as_secs_f64().max(1e-12)
            )
        }
        None => String::new(),
    };
    eprintln!(
        "{:<48} median {:>12?}  p95 {:>12?}  min {:>12?}{extra}",
        s.full_name(),
        s.median,
        s.p95,
        s.min
    );
}

/// A group of related benchmarks sharing sample-count and throughput
/// settings, mirroring criterion's `BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    harness: &'a mut Criterion,
    name: String,
    samples: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = Some(n.max(2));
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let samples = self.samples.unwrap_or(self.harness.default_samples);
        self.harness
            .run_one(self.name.clone(), id.text, samples, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (state is flushed eagerly, so this is a marker for
    /// API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` times the hot loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Mirrors `criterion::criterion_group!`: defines a function running
/// each benchmark in sequence against a shared harness.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name(c: &mut $crate::bench::Criterion) {
            $( $bench(c); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: defines `main` running every
/// group and emitting the final summary/JSON report.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::bench::Criterion::from_args();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_harness() -> Criterion {
        Criterion {
            default_samples: 3,
            warmup: Duration::from_millis(1),
            min_sample_time: Duration::from_micros(50),
            filter: None,
            json_path: None,
            results: Vec::new(),
        }
    }

    #[test]
    fn runs_and_records_stats() {
        let mut c = quiet_harness();
        c.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        assert_eq!(c.results.len(), 1);
        let s = &c.results[0];
        assert_eq!(s.full_name(), "spin");
        assert!(s.median > Duration::ZERO);
        assert!(s.min <= s.median && s.median <= s.p95);
    }

    #[test]
    fn group_settings_apply() {
        let mut c = quiet_harness();
        let mut g = c.benchmark_group("g");
        g.sample_size(4).throughput(Throughput::Elements(100));
        g.bench_with_input(BenchmarkId::new("x", 7), &7u32, |b, &v| b.iter(|| v * 2));
        g.finish();
        let s = &c.results[0];
        assert_eq!(s.full_name(), "g/x/7");
        assert_eq!(s.samples, 4);
        assert!(matches!(s.throughput, Some(Throughput::Elements(100))));
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = quiet_harness();
        c.filter = Some("keep".to_string());
        c.bench_function("keep_me", |b| b.iter(|| 1));
        c.bench_function("drop_me", |b| b.iter(|| 1));
        assert_eq!(c.results.len(), 1);
        assert_eq!(c.results[0].name, "keep_me");
    }

    #[test]
    fn json_rows_match_result_schema() {
        let mut c = quiet_harness();
        c.bench_function("j", |b| b.iter(|| 0));
        let row = c.results[0].to_json();
        assert_eq!(row.get("experiment").unwrap().as_str(), Some("bench"));
        assert_eq!(row.get("dataset").unwrap().as_str(), Some("j"));
        assert!(row
            .get("metrics")
            .unwrap()
            .get("median_s")
            .unwrap()
            .as_f64()
            .is_some());
        // Round-trips through the parser.
        let text = row.to_string_pretty();
        assert_eq!(crate::json::parse(&text).unwrap(), row);
    }
}
