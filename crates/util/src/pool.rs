//! Scoped thread pool for intra-rank kernel parallelism.
//!
//! The paper runs multithreaded SuiteSparse:GraphBLAS kernels under every
//! MPI rank, so each processor is itself parallel. This module supplies the
//! same layer without rayon: a pool of persistent workers fed through the
//! in-house [`channel`](crate::channel), plus row-range chunking helpers
//! (even and nnz-weighted) that the matrix kernels use to split work.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** The pool never reduces or reorders anything — it only
//!    executes caller-supplied chunk closures. Kernels built on it write
//!    disjoint output ranges with the same per-row inner loops as their
//!    serial counterparts, so results are bitwise identical to serial for
//!    any thread count (asserted by `core`'s determinism suite).
//! 2. **Zero dependencies.** Workers block on [`crate::channel::Receiver`];
//!    the completion latch is a `Mutex` + `Condvar`. The workspace still
//!    builds `--offline --locked` against an empty registry.
//! 3. **Scoped borrows.** [`Pool::run`] may capture non-`'static` state:
//!    the shared job frame lives on the caller's stack and `run` does not
//!    return until every worker has finished with it.

use std::any::Any;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};
use std::thread::JoinHandle;

use crate::channel::{unbounded, Receiver, Sender};

/// Environment variable overriding the per-rank thread count everywhere a
/// caller passes `threads = None` (CLI, benches, tests, CI).
pub const THREADS_ENV: &str = "PARGCN_THREADS";

/// A job posted to the worker queue: a type-erased pointer to the stack
/// frame shared by one [`Pool::run`] call, plus which executor this worker
/// plays. The pointer is erased to `usize` so the message is `Send`; the
/// latch in [`Shared`] guarantees the frame outlives every access.
struct Job {
    shared: usize,
    executor: usize,
}

struct Latch {
    remaining: usize,
    panic: Option<Box<dyn Any + Send>>,
}

/// Per-`run` frame shared between the caller and the workers it enlists.
struct Shared {
    /// The chunk closure. A raw fat pointer (not a reference) because the
    /// workers reconstruct it from an erased address with no lifetime.
    f: *const (dyn Fn(usize) + Sync),
    chunks: usize,
    stride: usize,
    latch: Mutex<Latch>,
    done: Condvar,
}

// SAFETY: `f` points at a `Sync` closure on the stack of the `run` caller,
// which blocks until the latch reaches zero, so concurrent shared access
// from workers is within the closure's `Sync` contract and its lifetime.
unsafe impl Sync for Shared {}

/// Executes chunks `executor, executor + stride, executor + 2·stride, …`
/// against the shared frame, capturing panics into the latch.
fn execute(shared: &Shared, executor: usize) {
    // SAFETY: the caller of `run` keeps the closure alive until the latch
    // (which we have not yet decremented) reaches zero.
    let f = unsafe { &*shared.f };
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut c = executor;
        while c < shared.chunks {
            f(c);
            c += shared.stride;
        }
    }));
    let mut latch = shared.latch.lock().unwrap();
    if let Err(payload) = result {
        if latch.panic.is_none() {
            latch.panic = Some(payload);
        }
    }
    latch.remaining -= 1;
    if latch.remaining == 0 {
        shared.done.notify_all();
    }
}

/// A fixed-size pool of persistent worker threads.
///
/// `Pool::new(t)` serves `t`-way parallelism with `t - 1` spawned workers:
/// the thread calling [`Pool::run`] always participates as executor 0, so a
/// 1-thread pool spawns nothing and runs everything inline. Dropping the
/// pool disconnects the queue and joins all workers.
///
/// [`Pool::run`] calls must not be nested from inside a chunk closure (the
/// inner call would deadlock-wait on workers busy with the outer one);
/// kernels therefore only ever use the pool at top level.
pub struct Pool {
    injector: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Creates a pool serving `threads`-way parallelism (min 1).
    pub fn new(threads: usize) -> Self {
        let spawn = threads.max(1) - 1;
        let (tx, rx) = unbounded::<Job>();
        let workers = (0..spawn)
            .map(|w| {
                let rx: Receiver<Job> = rx.clone();
                std::thread::Builder::new()
                    .name(format!("pargcn-pool-{w}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            // SAFETY: see `Shared` — the posting `run` call
                            // is blocked on the latch we decrement last.
                            let shared = unsafe { &*(job.shared as *const Shared) };
                            execute(shared, job.executor);
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            injector: Some(tx),
            workers,
        }
    }

    /// Total executors available to [`Pool::run`] (workers + caller).
    #[inline]
    pub fn threads(&self) -> usize {
        self.workers.len() + 1
    }

    /// Runs `f(0), f(1), …, f(chunks - 1)` across the pool and returns once
    /// all chunks are done. `f` may borrow from the caller's stack.
    ///
    /// Chunks are assigned to executors by stride (executor `e` runs chunks
    /// `e, e + n, e + 2n, …` for `n` enlisted executors), so the mapping of
    /// chunk → executor is a pure function of `chunks` and the pool size —
    /// nothing depends on scheduling. With one thread (or one chunk) this
    /// degenerates to a plain serial loop, no queue traffic at all.
    ///
    /// Panics in any chunk are propagated to the caller after every
    /// executor has finished (first panic wins).
    pub fn run<F: Fn(usize) + Sync>(&self, chunks: usize, f: F) {
        if chunks == 0 {
            return;
        }
        let helpers = self.workers.len().min(chunks - 1);
        if helpers == 0 {
            for c in 0..chunks {
                f(c);
            }
            return;
        }
        let stride = helpers + 1;
        let f_obj: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: erases the borrow's lifetime into the raw pointer; `run`
        // blocks on the latch below, so the pointer never outlives `f`.
        let f_ptr: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(f_obj)
        };
        let shared = Shared {
            f: f_ptr,
            chunks,
            stride,
            latch: Mutex::new(Latch {
                remaining: helpers,
                panic: None,
            }),
            done: Condvar::new(),
        };
        let addr = &shared as *const Shared as usize;
        let injector = self.injector.as_ref().expect("pool injector alive");
        for executor in 1..stride {
            injector
                .send(Job {
                    shared: addr,
                    executor,
                })
                .expect("pool workers exited");
        }
        // The caller is executor 0. Catch its panic too: `shared` lives on
        // this stack frame, so we must wait for the helpers either way.
        let mine = catch_unwind(AssertUnwindSafe(|| {
            let mut c = 0;
            while c < shared.chunks {
                f(c);
                c += stride;
            }
        }));
        let mut latch = shared.latch.lock().unwrap();
        while latch.remaining > 0 {
            latch = shared.done.wait(latch).unwrap();
        }
        let helper_panic = latch.panic.take();
        drop(latch);
        if let Err(payload) = mine {
            resume_unwind(payload);
        }
        if let Some(payload) = helper_panic {
            resume_unwind(payload);
        }
    }

    /// Runs `f(chunk, slice)` over disjoint row ranges of `data`, where row
    /// `r` spans elements `r * width .. (r + 1) * width`. The ranges must be
    /// ascending and non-overlapping (as produced by [`even_chunks`] /
    /// [`weighted_chunks`]); each invocation gets exclusive access to its
    /// rows, which is what makes parallel writes race-free.
    ///
    /// # Panics
    /// Panics if the ranges overlap, descend, or exceed `data.len()`.
    pub fn run_disjoint_rows<T, F>(
        &self,
        data: &mut [T],
        width: usize,
        ranges: &[Range<usize>],
        f: F,
    ) where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let mut prev_end = 0usize;
        for r in ranges {
            assert!(
                prev_end <= r.start && r.start <= r.end,
                "ranges must ascend"
            );
            prev_end = r.end;
        }
        assert!(
            prev_end.checked_mul(width).is_some_and(|n| n <= data.len()),
            "ranges exceed data"
        );
        struct SyncPtr<T>(*mut T);
        // SAFETY: each chunk touches only its own disjoint row range.
        unsafe impl<T> Sync for SyncPtr<T> {}
        impl<T> SyncPtr<T> {
            fn get(&self) -> *mut T {
                self.0
            }
        }
        let base = SyncPtr(data.as_mut_ptr());
        self.run(ranges.len(), |c| {
            let r = &ranges[c];
            // SAFETY: ranges are validated disjoint and in-bounds above, so
            // the reconstructed slices never alias across chunks.
            let slice = unsafe {
                std::slice::from_raw_parts_mut(
                    base.get().add(r.start * width),
                    (r.end - r.start) * width,
                )
            };
            f(c, slice);
        });
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // Disconnect the queue; workers observe RecvError and exit.
        self.injector = None;
        for handle in self.workers.drain(..) {
            // A worker can only panic if a job closure's panic escaped
            // `catch_unwind`; surface that instead of swallowing it.
            handle.join().expect("pool worker panicked");
        }
    }
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads())
            .finish()
    }
}

/// Splits `0..n` into at most `max_chunks` contiguous ranges of near-equal
/// length (`⌈n / c⌉` or `⌊n / c⌋` each). Empty ranges are never produced;
/// fewer than `max_chunks` ranges come back when `n < max_chunks`.
pub fn even_chunks(n: usize, max_chunks: usize) -> Vec<Range<usize>> {
    let chunks = max_chunks.max(1).min(n.max(1));
    if n == 0 {
        return Vec::new();
    }
    (0..chunks)
        .map(|c| (n * c / chunks)..(n * (c + 1) / chunks))
        .filter(|r| !r.is_empty())
        .collect()
}

/// Splits rows `0..prefix.len()-1` into at most `max_chunks` contiguous
/// ranges of near-equal *weight*, where `prefix` is a monotone prefix-sum
/// (a CSR `indptr`: row `i` weighs `prefix[i+1] - prefix[i]`). This is the
/// nnz-balanced split for SpMM — the paper's per-vertex computational load
/// `w(vᵢ) = |cols(A(i,:))|` aggregated per thread instead of per processor.
///
/// Every row lands in exactly one range; zero-weight rows ride along with
/// their neighbours. Empty ranges are never produced.
pub fn weighted_chunks(prefix: &[usize], max_chunks: usize) -> Vec<Range<usize>> {
    let n = prefix.len().saturating_sub(1);
    if n == 0 {
        return Vec::new();
    }
    let chunks = max_chunks.max(1).min(n);
    let total = prefix[n] as u128;
    if total == 0 || chunks == 1 {
        // One chunk spanning every row (a Vec of one Range, not 0..n
        // collected — hence the lint override).
        #[allow(clippy::single_range_in_vec_init)]
        return vec![0..n];
    }
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0usize;
    for c in 1..=chunks {
        if start >= n {
            break;
        }
        let end = if c == chunks {
            n
        } else {
            // First boundary where the cumulative weight reaches c/chunks of
            // the total, but always advancing by at least one row.
            let target = (total * c as u128 / chunks as u128) as usize;
            prefix.partition_point(|&x| x < target).clamp(start + 1, n)
        };
        out.push(start..end);
        start = end;
    }
    out
}

/// Resolves the per-rank thread count: an explicit `threads` wins, then the
/// `PARGCN_THREADS` environment variable, then `available_parallelism / ranks`
/// (each of `ranks` simulated processors gets an equal CPU share), min 1.
pub fn auto_threads(ranks: usize, threads: Option<usize>) -> usize {
    if let Some(t) = threads {
        return t.max(1);
    }
    if let Some(t) = std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        return t.max(1);
    }
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    (cores / ranks.max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_covers_every_chunk_exactly_once() {
        for threads in [1, 2, 3, 7] {
            let pool = Pool::new(threads);
            for chunks in [0, 1, 2, 7, 64] {
                let hits: Vec<AtomicUsize> = (0..chunks).map(|_| AtomicUsize::new(0)).collect();
                pool.run(chunks, |c| {
                    hits[c].fetch_add(1, Ordering::Relaxed);
                });
                for (c, h) in hits.iter().enumerate() {
                    assert_eq!(
                        h.load(Ordering::Relaxed),
                        1,
                        "chunk {c} at {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn run_borrows_stack_state() {
        let pool = Pool::new(4);
        let input = vec![3usize; 100];
        let sum = AtomicUsize::new(0);
        pool.run(10, |c| {
            let local: usize = input[c * 10..(c + 1) * 10].iter().sum();
            sum.fetch_add(local, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 300);
    }

    #[test]
    fn run_disjoint_rows_writes_every_row() {
        let pool = Pool::new(3);
        let width = 4;
        let rows = 13;
        let mut data = vec![0u32; rows * width];
        let ranges = even_chunks(rows, 5);
        pool.run_disjoint_rows(&mut data, width, &ranges, |_, slice| {
            for x in slice.iter_mut() {
                *x += 1;
            }
        });
        assert!(data.iter().all(|&x| x == 1));
    }

    #[test]
    fn pool_survives_panicking_chunk() {
        let pool = Pool::new(3);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, |c| {
                if c == 5 {
                    panic!("chunk 5 exploded");
                }
            });
        }));
        assert!(caught.is_err());
        // The pool is still usable afterwards.
        let n = AtomicUsize::new(0);
        pool.run(4, |_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn even_chunks_partition_exactly() {
        for n in [0usize, 1, 2, 5, 16, 1000] {
            for c in [1usize, 2, 3, 7, 50] {
                let ranges = even_chunks(n, c);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    assert!(r.end > r.start);
                    next = r.end;
                }
                assert_eq!(next, n);
                assert!(ranges.len() <= c);
            }
        }
    }

    #[test]
    fn weighted_chunks_partition_and_balance() {
        // Skewed weights: one heavy row among many light ones.
        let mut prefix = vec![0usize];
        for i in 0..100 {
            let w = if i == 3 { 1000 } else { 1 };
            prefix.push(prefix.last().unwrap() + w);
        }
        let ranges = weighted_chunks(&prefix, 4);
        let mut next = 0;
        for r in &ranges {
            assert_eq!(r.start, next);
            assert!(r.end > r.start);
            next = r.end;
        }
        assert_eq!(next, 100);
        assert!(ranges.len() <= 4);
        // The heavy row's chunk should be small in row count.
        let heavy = ranges.iter().find(|r| r.contains(&3)).unwrap();
        assert!(heavy.len() < 50, "heavy chunk spans {heavy:?}");
    }

    #[test]
    fn weighted_chunks_all_zero_weight() {
        let prefix = vec![0usize; 11];
        let ranges = weighted_chunks(&prefix, 4);
        assert_eq!(ranges, vec![0..10]);
    }

    #[test]
    fn weighted_chunks_empty() {
        assert!(weighted_chunks(&[0], 4).is_empty());
        assert!(weighted_chunks(&[], 4).is_empty());
    }

    #[test]
    fn auto_threads_explicit_wins() {
        assert_eq!(auto_threads(4, Some(3)), 3);
        assert_eq!(auto_threads(4, Some(0)), 1);
    }

    #[test]
    fn deterministic_chunk_assignment_is_scheduling_free() {
        // Same chunking at any thread count ⇒ per-chunk work is identical;
        // here each chunk writes a pure function of its index.
        let mut reference: Option<Vec<u64>> = None;
        for threads in [1, 2, 7] {
            let pool = Pool::new(threads);
            let mut out = vec![0u64; 64];
            let ranges = even_chunks(64, pool.threads() * 2);
            pool.run_disjoint_rows(&mut out, 1, &ranges, |_, slice| {
                for x in slice.iter_mut() {
                    *x = 41;
                }
            });
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(r, &out),
            }
        }
    }
}
