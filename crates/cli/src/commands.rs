//! Implementations of the `pargcn` subcommands.

use crate::args::{Args, ParseError};
use pargcn_comm::MachineProfile;
use pargcn_core::dist::train_full_batch_spec;
use pargcn_core::metrics::{simulate_epoch, simulate_serial_epoch};
use pargcn_core::minibatch::MinibatchEngine;
use pargcn_core::optim::Optimizer;
use pargcn_core::{checkpoint, loss, CommPlan, GcnConfig, LayerOrder};
use pargcn_graph::{analysis, Dataset, GraphData, Scale};
use pargcn_matrix::{ComputeSpec, Dense, KernelKind};
use pargcn_partition::stochastic::{sample_batches, Sampler};
use pargcn_partition::{metrics as pmetrics, partition_rows, Hypergraph, Method};
use pargcn_util::rng::SeedableRng;
use pargcn_util::rng::StdRng;
use std::path::Path;

pub const USAGE: &str = "pargcn — distributed-memory GCN training (paper reproduction)

USAGE:
  pargcn info      --dataset <name> [--scale <div>] [--seed <n>]
  pargcn info      --list true
  pargcn partition --dataset <name> --method <rp|gp|hp|shp|bp> --p <n>
                   [--epsilon 0.01] [--scale <div>] [--seed <n>] [--out <file>]
  pargcn train     --dataset <name> [--method hp] [--p 4] [--epochs 30]
                   [--hidden 16] [--lr 0.1] [--optimizer sgd|adam]
                   [--threads <n>] [--kernel naive|blocked]
                   [--batch-size <n>] [--batches <count>]
                   [--scale <div>] [--seed <n>] [--save-params <file>]

--threads sets the kernel thread-pool size per rank (also: PARGCN_THREADS
env var); default auto = available_parallelism / p. --kernel picks the
local kernel engine (also: PARGCN_KERNEL env var; default blocked — the
cache-blocked GEMM/tiled SpMM engine; naive is the reference loops).
Results are bitwise identical for any thread count and either kernel.
--batch-size > 0 switches to stochastic mini-batch training (§4.3.3)
through the persistent engine: uniform-vertex batches of that size,
one step each, --batches steps (default: epochs).
  pargcn simulate  --dataset <name> [--method hp] [--p 512] [--machine cpu|gpu]
                   [--layers 2] [--d 32] [--scale <div>] [--seed <n>]

Dataset names are the paper's Table 1 names (pargcn info --list true).";

/// Resolves a Table 1 dataset by name (case-insensitive).
fn dataset(name: &str) -> Result<Dataset, ParseError> {
    Dataset::ALL
        .into_iter()
        .find(|d| d.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            ParseError(format!(
                "unknown dataset '{name}' (try: {})",
                Dataset::ALL.map(|d| d.name()).join(", ")
            ))
        })
}

fn method(name: &str, n: usize) -> Result<Method, ParseError> {
    match name.to_ascii_lowercase().as_str() {
        "rp" => Ok(Method::Rp),
        "gp" => Ok(Method::Gp),
        "hp" => Ok(Method::Hp),
        "bp" => Ok(Method::Bp),
        "shp" => Ok(Method::Shp {
            sampler: Sampler::UniformVertex {
                batch_size: (n / 16).max(8),
            },
            batches: 200,
        }),
        other => Err(ParseError(format!(
            "unknown method '{other}' (rp|gp|hp|shp|bp)"
        ))),
    }
}

fn load(args: &Args) -> Result<(Dataset, GraphData), ParseError> {
    let ds = dataset(args.require("dataset")?)?;
    let extra: u32 = args.num_or("scale", 1u32)?;
    let seed: u64 = args.num_or("seed", 1u64)?;
    let scale = Scale(ds.default_scale().0.saturating_mul(extra.max(1)));
    Ok((ds, ds.generate(scale, seed)))
}

/// `pargcn info`.
pub fn info(args: &Args) -> Result<(), ParseError> {
    if args.get_or("list", "false") == "true" {
        println!(
            "{:<18} {:>12} {:>14} {:>9} {:>8}",
            "Dataset", "paper |V|", "paper |E|", "directed", "scale"
        );
        for ds in Dataset::ALL {
            let (v, e, dir) = ds.paper_properties();
            println!(
                "{:<18} {:>12} {:>14} {:>9} {:>8}",
                ds.name(),
                v,
                e,
                if dir { "yes" } else { "no" },
                ds.default_scale().0
            );
        }
        return Ok(());
    }
    let (ds, data) = load(args)?;
    let stats = data.graph.degree_stats();
    let comps = analysis::connected_components(&data.graph);
    println!("dataset:      {}", ds.name());
    println!("vertices:     {}", data.graph.n());
    println!("edges:        {}", data.graph.num_edges());
    println!("directed:     {}", data.graph.directed());
    println!(
        "degree:       min {} / avg {:.2} / max {} (skew {:.1})",
        stats.min, stats.avg, stats.max, stats.skew
    );
    println!("components:   {} (largest {})", comps.count, comps.largest);
    println!("pseudo-diam:  {}", analysis::pseudo_diameter(&data.graph));
    println!("labelled:     {}", data.labels.is_some());
    Ok(())
}

/// `pargcn partition`.
pub fn partition(args: &Args) -> Result<(), ParseError> {
    let (ds, data) = load(args)?;
    let p: usize = args.num_or("p", 16usize)?;
    let epsilon: f64 = args.num_or("epsilon", pargcn_partition::DEFAULT_EPSILON)?;
    let seed: u64 = args.num_or("seed", 1u64)?;
    let m = method(args.get_or("method", "hp"), data.graph.n())?;

    let a = data.graph.normalized_adjacency();
    let start = std::time::Instant::now();
    let part = partition_rows(&data.graph, &a, m, p, epsilon, seed);
    let took = start.elapsed().as_secs_f64();

    let stats = pmetrics::spmm_comm_stats(&a, &part);
    let h = Hypergraph::column_net_model(&a);
    println!(
        "dataset:        {} (n={}, nnz={})",
        ds.name(),
        data.graph.n(),
        a.nnz()
    );
    println!("method:         {} into p={p} parts ({took:.2}s)", m.name());
    println!(
        "volume:         {} rows/sweep (avg {:.1}, max {} per rank)",
        stats.total_rows,
        stats.avg_rows(),
        stats.max_rows()
    );
    println!(
        "messages:       {} (avg {:.1}, max {} per rank)",
        stats.total_messages,
        stats.avg_messages(),
        stats.max_messages()
    );
    println!(
        "hypergraph cut: {} (= volume, §4.3.2)",
        h.connectivity_cut(&part)
    );
    println!("imbalance:      {:.4}", part.imbalance(h.vertex_weights()));

    if let Ok(path) = args.require("out") {
        let body: String = part
            .assignment()
            .iter()
            .enumerate()
            .map(|(v, &a)| format!("{v}\t{a}\n"))
            .collect();
        std::fs::write(path, body).map_err(|e| ParseError(format!("write {path}: {e}")))?;
        println!("assignment written to {path}");
    }
    Ok(())
}

/// `pargcn train`.
pub fn train(args: &Args) -> Result<(), ParseError> {
    let (ds, data) = load(args)?;
    let p: usize = args.num_or("p", 4usize)?;
    let epochs: usize = args.num_or("epochs", 30usize)?;
    let hidden: usize = args.num_or("hidden", 16usize)?;
    let lr: f32 = args.num_or("lr", 0.1f32)?;
    let seed: u64 = args.num_or("seed", 1u64)?;
    // 0 = auto (PARGCN_THREADS env, else available_parallelism / p).
    let threads: usize = args.num_or("threads", 0usize)?;
    let threads = (threads > 0).then_some(threads);
    // Default: PARGCN_KERNEL env var, else the blocked engine.
    let kernel = match args.require("kernel") {
        Ok(name) => Some(
            KernelKind::parse(name)
                .ok_or_else(|| ParseError(format!("unknown kernel '{name}' (naive|blocked)")))?,
        ),
        Err(_) => None,
    };
    let m = method(args.get_or("method", "hp"), data.graph.n())?;
    let optimizer = match args.get_or("optimizer", "sgd") {
        "sgd" => Optimizer::Sgd,
        "adam" => Optimizer::adam(),
        other => return Err(ParseError(format!("unknown optimizer '{other}'"))),
    };

    // Labelled datasets use their real features/labels; others follow the
    // paper's Table 2 protocol (random features and labels).
    let n = data.graph.n();
    let (features, labels, mask) = match (data.features, data.labels, data.train_mask) {
        (Some(f), Some(l), Some(m)) => (f, l, m),
        _ => {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xfea7);
            let f = Dense::random(n, 32, &mut rng);
            let l: Vec<u32> = (0..n).map(|i| (i % 8) as u32).collect();
            (f, l, vec![true; n])
        }
    };
    let classes = (*labels.iter().max().unwrap_or(&1) + 1) as usize;
    let config = GcnConfig {
        dims: vec![features.cols(), hidden, classes],
        learning_rate: lr,
        order: LayerOrder::SpmmFirst,
        optimizer,
    };

    let a = data.graph.normalized_adjacency();
    let part = partition_rows(
        &data.graph,
        &a,
        m,
        p,
        pargcn_partition::DEFAULT_EPSILON,
        seed,
    );
    let batch_size: usize = args.num_or("batch-size", 0usize)?;
    if batch_size > 0 {
        let count: usize = args.num_or("batches", epochs)?;
        let batches = sample_batches(
            &data.graph,
            Sampler::UniformVertex { batch_size },
            count,
            seed ^ 0xba7c,
        );
        println!(
            "mini-batch training {} on {} ranks ({}), {} batches of {}, {} optimizer",
            ds.name(),
            p,
            m.name(),
            count,
            batch_size,
            args.get_or("optimizer", "sgd")
        );
        let mut engine = MinibatchEngine::new(
            &data.graph,
            &features,
            &labels,
            &mask,
            &part,
            &config,
            seed,
            ComputeSpec { threads, kernel },
        );
        let out = engine.train(&batches);
        for (b, l) in out.losses.iter().enumerate() {
            if b % 5 == 0 || b + 1 == out.losses.len() {
                println!("batch {b:>3}: loss {l:.4}");
            }
        }
        if out.skipped_batches > 0 {
            println!(
                "skipped {} unlabelled batch(es) ({} would-be rows)",
                out.skipped_batches, out.skipped_volume_rows
            );
        }
        let predictions = pargcn_core::serial::SerialTrainer::from_adjacency(
            a,
            data.graph.directed(),
            config.clone(),
            out.params.clone(),
        )
        .predict(&features);
        let test_mask: Vec<bool> = mask.iter().map(|&m| !m).collect();
        if test_mask.iter().any(|&m| m) {
            println!(
                "test accuracy: {:.3}",
                loss::accuracy(&predictions, &labels, &test_mask)
            );
        }
        println!(
            "train accuracy: {:.3}",
            loss::accuracy(&predictions, &labels, &mask)
        );
        let bytes: u64 = engine.counters().iter().map(|c| c.sent_bytes).sum();
        println!(
            "p2p traffic: {:.2} MiB over {} trained rows",
            bytes as f64 / (1 << 20) as f64,
            out.total_volume_rows
        );
        if let Ok(path) = args.require("save-params") {
            checkpoint::save(&out.params, Path::new(path))
                .map_err(|e| ParseError(format!("save {path}: {e}")))?;
            println!("parameters saved to {path}");
        }
        return Ok(());
    }

    println!(
        "training {} on {} ranks ({}), {} threads/rank, {} kernel, {} epochs, {} optimizer",
        ds.name(),
        p,
        m.name(),
        pargcn_util::pool::auto_threads(p, threads),
        kernel.unwrap_or_else(KernelKind::from_env).name(),
        epochs,
        args.get_or("optimizer", "sgd")
    );
    let out = train_full_batch_spec(
        &data.graph,
        &features,
        &labels,
        &mask,
        &part,
        &config,
        epochs,
        seed,
        ComputeSpec { threads, kernel },
    );
    for (e, l) in out.losses.iter().enumerate() {
        if e % 5 == 0 || e + 1 == out.losses.len() {
            println!("epoch {e:>3}: loss {l:.4}");
        }
    }
    let test_mask: Vec<bool> = mask.iter().map(|&m| !m).collect();
    if test_mask.iter().any(|&m| m) {
        println!(
            "test accuracy: {:.3}",
            loss::accuracy(&out.predictions, &labels, &test_mask)
        );
    }
    println!(
        "train accuracy: {:.3}",
        loss::accuracy(&out.predictions, &labels, &mask)
    );
    let bytes: u64 = out.counters.iter().map(|c| c.sent_bytes).sum();
    println!(
        "p2p traffic: {:.2} MiB, wall {:.2}s",
        bytes as f64 / (1 << 20) as f64,
        out.wall_seconds()
    );

    if let Ok(path) = args.require("save-params") {
        checkpoint::save(&out.params, Path::new(path))
            .map_err(|e| ParseError(format!("save {path}: {e}")))?;
        println!("parameters saved to {path}");
    }
    Ok(())
}

/// `pargcn simulate`.
pub fn simulate(args: &Args) -> Result<(), ParseError> {
    let (ds, data) = load(args)?;
    let p: usize = args.num_or("p", 512usize)?;
    let layers: usize = args.num_or("layers", 2usize)?;
    let d: usize = args.num_or("d", 32usize)?;
    let seed: u64 = args.num_or("seed", 1u64)?;
    let m = method(args.get_or("method", "hp"), data.graph.n())?;
    let profile = match args.get_or("machine", "cpu") {
        "cpu" => MachineProfile::cpu_cluster(),
        "gpu" => MachineProfile::gpu_cluster(),
        other => return Err(ParseError(format!("unknown machine '{other}' (cpu|gpu)"))),
    };

    let mut dims = vec![d; layers];
    dims.push(16);
    let config = GcnConfig {
        dims,
        learning_rate: 0.1,
        order: LayerOrder::SpmmFirst,
        optimizer: Optimizer::Sgd,
    };

    let a = data.graph.normalized_adjacency();
    let part = partition_rows(
        &data.graph,
        &a,
        m,
        p,
        pargcn_partition::DEFAULT_EPSILON,
        seed,
    );
    let plan_f = CommPlan::build(&a, &part);
    let plan_b = if data.graph.directed() {
        CommPlan::build(&a.transpose(), &part)
    } else {
        plan_f.clone()
    };

    let t = simulate_epoch(&plan_f, &plan_b, &config, &profile);
    let serial = simulate_serial_epoch(
        a.nnz(),
        data.graph.n(),
        &config,
        &MachineProfile::single_node(),
    );
    println!(
        "dataset:    {} (n={}, nnz={})",
        ds.name(),
        data.graph.n(),
        a.nnz()
    );
    println!(
        "machine:    {} | method {} | p={p} | L={layers} d={d}",
        profile.name,
        m.name()
    );
    println!(
        "epoch time: {:.6}s (comm {:.6}s, comp {:.6}s)",
        t.total, t.comm, t.comp
    );
    println!("speedup vs single-node baseline: {:.2}x", serial / t.total);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Args {
        Args::parse(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn dataset_lookup_is_case_insensitive() {
        assert_eq!(dataset("cora").unwrap(), Dataset::Cora);
        assert_eq!(dataset("ROADNET-CA").unwrap(), Dataset::RoadNetCa);
        assert!(dataset("nope").is_err());
    }

    #[test]
    fn method_lookup() {
        assert_eq!(method("hp", 100).unwrap(), Method::Hp);
        assert_eq!(method("BP", 100).unwrap(), Method::Bp);
        assert!(matches!(method("shp", 100).unwrap(), Method::Shp { .. }));
        assert!(method("xx", 100).is_err());
    }

    #[test]
    fn info_runs_on_tiny_instance() {
        let a = args(&["info", "--dataset", "com-Amazon", "--scale", "64"]);
        info(&a).unwrap();
        let l = args(&["info", "--list", "true"]);
        info(&l).unwrap();
    }

    #[test]
    fn partition_runs_and_writes_assignment() {
        let out = std::env::temp_dir().join(format!("pargcn_cli_part_{}.txt", std::process::id()));
        let a = args(&[
            "partition",
            "--dataset",
            "roadNet-CA",
            "--scale",
            "64",
            "--method",
            "hp",
            "--p",
            "4",
            "--out",
            out.to_str().unwrap(),
        ]);
        partition(&a).unwrap();
        let body = std::fs::read_to_string(&out).unwrap();
        assert!(body.lines().count() > 100, "assignment file too small");
        std::fs::remove_file(out).ok();
    }

    #[test]
    fn train_runs_on_scaled_cora_and_saves_params() {
        let ckpt = std::env::temp_dir().join(format!("pargcn_cli_ckpt_{}.bin", std::process::id()));
        let a = args(&[
            "train",
            "--dataset",
            "Cora",
            "--scale",
            "8",
            "--p",
            "2",
            "--epochs",
            "3",
            "--save-params",
            ckpt.to_str().unwrap(),
        ]);
        train(&a).unwrap();
        let params = checkpoint::load(&ckpt).unwrap();
        assert_eq!(params.weights.len(), 2);
        std::fs::remove_file(ckpt).ok();
    }

    #[test]
    fn simulate_runs_on_both_machines() {
        for machine in ["cpu", "gpu"] {
            let a = args(&[
                "simulate",
                "--dataset",
                "com-Amazon",
                "--scale",
                "32",
                "--p",
                "16",
                "--machine",
                machine,
            ]);
            simulate(&a).unwrap();
        }
    }

    #[test]
    fn kernel_flag_is_parsed_and_validated() {
        let a = args(&[
            "train",
            "--dataset",
            "Cora",
            "--scale",
            "16",
            "--p",
            "2",
            "--epochs",
            "1",
            "--kernel",
            "naive",
        ]);
        train(&a).unwrap();
        let bad = args(&[
            "train",
            "--dataset",
            "Cora",
            "--scale",
            "16",
            "--kernel",
            "simd",
        ]);
        assert!(train(&bad).is_err());
    }

    #[test]
    fn unknown_optimizer_is_rejected() {
        let a = args(&[
            "train",
            "--dataset",
            "Cora",
            "--scale",
            "16",
            "--optimizer",
            "sgdm",
        ]);
        assert!(train(&a).is_err());
    }
}
