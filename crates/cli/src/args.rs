//! Minimal flag parser for the `pargcn` binary — `--key value` pairs and
//! bare subcommands, no external dependency.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Args {
    pub command: String,
    options: BTreeMap<String, String>,
}

/// Parse failure with a user-facing message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Args {
    /// Parses `argv[1..]`: first token is the subcommand, the rest must be
    /// `--key value` pairs.
    pub fn parse(argv: &[String]) -> Result<Args, ParseError> {
        let mut it = argv.iter();
        let command = it
            .next()
            .cloned()
            .ok_or_else(|| ParseError("missing subcommand".into()))?;
        if command.starts_with("--") {
            return Err(ParseError(format!(
                "expected a subcommand, got flag {command}"
            )));
        }
        let mut options = BTreeMap::new();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(ParseError(format!("expected --flag, got {key}")));
            };
            let value = it
                .next()
                .ok_or_else(|| ParseError(format!("flag --{name} needs a value")))?;
            if options.insert(name.to_string(), value.clone()).is_some() {
                return Err(ParseError(format!("flag --{name} given twice")));
            }
        }
        Ok(Args { command, options })
    }

    /// String option with default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.options.get(key).map(String::as_str).unwrap_or(default)
    }

    /// Required string option.
    pub fn require(&self, key: &str) -> Result<&str, ParseError> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| ParseError(format!("missing required flag --{key}")))
    }

    /// Parsed numeric option with default.
    pub fn num_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ParseError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ParseError(format!("flag --{key}: cannot parse '{v}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_subcommand_and_flags() {
        let a = Args::parse(&argv(&["train", "--dataset", "Cora", "--p", "4"])).unwrap();
        assert_eq!(a.command, "train");
        assert_eq!(a.require("dataset").unwrap(), "Cora");
        assert_eq!(a.num_or("p", 1usize).unwrap(), 4);
        assert_eq!(a.num_or("epochs", 30usize).unwrap(), 30);
    }

    #[test]
    fn rejects_missing_subcommand() {
        assert!(Args::parse(&[]).is_err());
        assert!(Args::parse(&argv(&["--p", "4"])).is_err());
    }

    #[test]
    fn rejects_dangling_flag() {
        assert!(Args::parse(&argv(&["train", "--p"])).is_err());
    }

    #[test]
    fn rejects_duplicate_flag() {
        assert!(Args::parse(&argv(&["train", "--p", "4", "--p", "8"])).is_err());
    }

    #[test]
    fn rejects_bad_number() {
        let a = Args::parse(&argv(&["train", "--p", "four"])).unwrap();
        assert!(a.num_or("p", 1usize).is_err());
    }

    #[test]
    fn defaults_apply() {
        let a = Args::parse(&argv(&["info"])).unwrap();
        assert_eq!(a.get_or("method", "hp"), "hp");
    }
}
