//! `pargcn` — command-line driver for the library.
//!
//! ```text
//! pargcn info      --dataset roadNet-CA [--scale 2] [--seed 1]
//! pargcn partition --dataset com-Amazon --method hp --p 16 [--epsilon 0.01] [--out part.txt]
//! pargcn train     --dataset Cora --method hp --p 4 --epochs 30
//!                  [--hidden 16] [--optimizer adam] [--lr 0.1] [--save-params model.pgcn]
//! pargcn simulate  --dataset roadNet-CA --method hp --p 512 --machine cpu [--layers 2] [--d 32]
//! ```
//!
//! Dataset names are the paper's Table 1 names (see `pargcn info --list`).

mod args;
mod commands;

use args::Args;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Args::parse(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", commands::USAGE);
            std::process::exit(2);
        }
    };
    let result = match parsed.command.as_str() {
        "info" => commands::info(&parsed),
        "partition" => commands::partition(&parsed),
        "train" => commands::train(&parsed),
        "simulate" => commands::simulate(&parsed),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(args::ParseError(format!("unknown subcommand '{other}'"))),
    };
    if let Err(e) = result {
        eprintln!("error: {e}\n");
        eprintln!("{}", commands::USAGE);
        std::process::exit(2);
    }
}
