//! Carrier crate for the repository-level integration tests (`tests/`) and
//! runnable examples (`examples/`). It holds no code of its own: Cargo
//! integration tests and examples must belong to a package, and keeping
//! them in a dedicated member keeps every library crate's dev-dependency
//! graph minimal.
