//! Stress and edge-case tests for the message-passing runtime: ordering
//! guarantees under load, many ranks, interleaved collectives and
//! point-to-point traffic, and payload integrity.

use pargcn_comm::Communicator;

/// MPI's non-overtaking guarantee: messages with the same (source, tag)
/// arrive in send order, even under heavy interleaving with other tags.
#[test]
fn same_tag_messages_are_fifo() {
    Communicator::run(2, |ctx| {
        if ctx.rank() == 0 {
            for i in 0..500u32 {
                ctx.isend(1, 7, vec![i as f32]);
                // Interleave noise on another tag.
                ctx.isend(1, 8, vec![-1.0]);
            }
        } else {
            for i in 0..500u32 {
                let m = ctx.recv(0, 7);
                assert_eq!(m[0], i as f32, "message {i} out of order");
            }
            for _ in 0..500 {
                assert_eq!(ctx.recv(0, 8), vec![-1.0]);
            }
        }
    });
}

/// All-to-all with per-pair tags: every rank sends to every other rank and
/// receives everything back, with payload contents checked.
#[test]
fn all_to_all_payload_integrity() {
    let p = 8;
    Communicator::run(p, |ctx| {
        let me = ctx.rank();
        for to in 0..p {
            if to != me {
                let payload: Vec<f32> = (0..64).map(|k| (me * 1000 + to * 10 + k) as f32).collect();
                ctx.isend(to, 42, payload);
            }
        }
        for from in 0..p {
            if from != me {
                let m = ctx.recv(from, 42);
                assert_eq!(m.len(), 64);
                assert_eq!(m[0], (from * 1000 + me * 10) as f32);
                assert_eq!(m[63], (from * 1000 + me * 10 + 63) as f32);
            }
        }
    });
}

/// Collectives and point-to-point traffic interleave without cross-talk
/// (collectives use reserved tags internally).
#[test]
fn collectives_do_not_steal_p2p_messages() {
    Communicator::run(4, |ctx| {
        let me = ctx.rank();
        let next = (me + 1) % 4;
        let prev = (me + 3) % 4;
        ctx.isend(next, 3, vec![me as f32]);
        let mut buf = vec![1.0f32];
        ctx.allreduce_sum(&mut buf);
        assert_eq!(buf[0], 4.0);
        let mut b = if me == 2 { vec![7.0, 8.0] } else { Vec::new() };
        ctx.broadcast(2, &mut b);
        assert_eq!(b, vec![7.0, 8.0]);
        let m = ctx.recv(prev, 3);
        assert_eq!(m[0], prev as f32);
    });
}

/// Sequential allreduces stay correctly separated (no payload mixing
/// between rounds, values accumulate as expected).
#[test]
fn repeated_allreduce_rounds() {
    let results = Communicator::run(5, |ctx| {
        let mut acc = 0.0f32;
        for round in 0..50 {
            let mut buf = vec![(ctx.rank() + round) as f32];
            ctx.allreduce_sum(&mut buf);
            acc += buf[0];
        }
        acc
    });
    // Round r sums to (0+1+2+3+4) + 5r = 10 + 5r; total over 50 rounds.
    let expect: f32 = (0..50).map(|r| 10.0 + 5.0 * r as f32).sum();
    for r in results {
        assert_eq!(r, expect);
    }
}

/// 64 ranks — far beyond physical cores — complete a full exchange, which
/// is what lets the training tests run functionally at any p.
#[test]
fn many_ranks_functional() {
    let p = 64;
    let results = Communicator::run(p, |ctx| {
        let me = ctx.rank();
        ctx.isend((me + 1) % p, 0, vec![me as f32; 8]);
        let m = ctx.recv((me + p - 1) % p, 0);
        let mut buf = vec![m[0]];
        ctx.allreduce_sum(&mut buf);
        buf[0]
    });
    // Sum of all predecessor ranks = sum 0..p.
    let expect = (p * (p - 1) / 2) as f32;
    for r in results {
        assert_eq!(r, expect);
    }
}

/// Empty payloads are legal (a rank may own zero rows of a mini-batch).
#[test]
fn empty_payloads() {
    Communicator::run(2, |ctx| {
        if ctx.rank() == 0 {
            ctx.isend(1, 1, Vec::new());
        } else {
            assert!(ctx.recv(0, 1).is_empty());
        }
    });
}

/// Gather returns rank-ordered buffers of heterogeneous lengths.
#[test]
fn gather_heterogeneous_lengths() {
    let results = Communicator::run(4, |ctx| {
        let buf = vec![ctx.rank() as f32; ctx.rank()]; // rank r sends r floats
        ctx.gather(2, buf)
    });
    let gathered = results[2].as_ref().unwrap();
    for (r, b) in gathered.iter().enumerate() {
        assert_eq!(b.len(), r);
        assert!(b.iter().all(|&x| x == r as f32));
    }
}
