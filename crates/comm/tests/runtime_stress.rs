//! Stress and edge-case tests for the message-passing runtime: ordering
//! guarantees under load, many ranks, interleaved collectives and
//! point-to-point traffic, payload integrity, buffer-pool recycling, and
//! the binomial-tree collectives' bitwise determinism.
//!
//! This binary installs the counting global allocator so the pool tests
//! can additionally assert the warm-path no-allocation contract.

use pargcn_comm::Communicator;
use pargcn_util::allocmeter::CountingAllocator;
use pargcn_util::rng::{Rng, SeedableRng, StdRng};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// MPI's non-overtaking guarantee: messages with the same (source, tag)
/// arrive in send order, even under heavy interleaving with other tags.
#[test]
fn same_tag_messages_are_fifo() {
    Communicator::run(2, |ctx| {
        if ctx.rank() == 0 {
            for i in 0..500u32 {
                ctx.isend(1, 7, vec![i as f32]);
                // Interleave traffic on another tag; distinct payloads so
                // reordering inside the pending queue would be caught.
                ctx.isend(1, 8, vec![-(i as f32)]);
            }
        } else {
            for i in 0..500u32 {
                let m = ctx.recv(0, 7);
                assert_eq!(m[0], i as f32, "message {i} out of order");
            }
            // The tag-8 messages all sat in the pending queue; they must
            // still come out in send order.
            for i in 0..500u32 {
                assert_eq!(
                    ctx.recv(0, 8),
                    vec![-(i as f32)],
                    "pending message {i} out of order"
                );
            }
        }
    });
}

/// All-to-all with per-pair tags: every rank sends to every other rank and
/// receives everything back, with payload contents checked.
#[test]
fn all_to_all_payload_integrity() {
    let p = 8;
    Communicator::run(p, |ctx| {
        let me = ctx.rank();
        for to in 0..p {
            if to != me {
                let payload: Vec<f32> = (0..64).map(|k| (me * 1000 + to * 10 + k) as f32).collect();
                ctx.isend(to, 42, payload);
            }
        }
        for from in 0..p {
            if from != me {
                let m = ctx.recv(from, 42);
                assert_eq!(m.len(), 64);
                assert_eq!(m[0], (from * 1000 + me * 10) as f32);
                assert_eq!(m[63], (from * 1000 + me * 10 + 63) as f32);
            }
        }
    });
}

/// Collectives and point-to-point traffic interleave without cross-talk
/// (collectives use reserved tags internally).
#[test]
fn collectives_do_not_steal_p2p_messages() {
    Communicator::run(4, |ctx| {
        let me = ctx.rank();
        let next = (me + 1) % 4;
        let prev = (me + 3) % 4;
        ctx.isend(next, 3, vec![me as f32]);
        let mut buf = vec![1.0f32];
        ctx.allreduce_sum(&mut buf);
        assert_eq!(buf[0], 4.0);
        let mut b = if me == 2 { vec![7.0, 8.0] } else { Vec::new() };
        ctx.broadcast(2, &mut b);
        assert_eq!(b, vec![7.0, 8.0]);
        let m = ctx.recv(prev, 3);
        assert_eq!(m[0], prev as f32);
    });
}

/// Sequential allreduces stay correctly separated (no payload mixing
/// between rounds, values accumulate as expected).
#[test]
fn repeated_allreduce_rounds() {
    let results = Communicator::run(5, |ctx| {
        let mut acc = 0.0f32;
        for round in 0..50 {
            let mut buf = vec![(ctx.rank() + round) as f32];
            ctx.allreduce_sum(&mut buf);
            acc += buf[0];
        }
        acc
    });
    // Round r sums to (0+1+2+3+4) + 5r = 10 + 5r; total over 50 rounds.
    let expect: f32 = (0..50).map(|r| 10.0 + 5.0 * r as f32).sum();
    for r in results {
        assert_eq!(r, expect);
    }
}

/// 64 ranks — far beyond physical cores — complete a full exchange, which
/// is what lets the training tests run functionally at any p.
#[test]
fn many_ranks_functional() {
    let p = 64;
    let results = Communicator::run(p, |ctx| {
        let me = ctx.rank();
        ctx.isend((me + 1) % p, 0, vec![me as f32; 8]);
        let m = ctx.recv((me + p - 1) % p, 0);
        let mut buf = vec![m[0]];
        ctx.allreduce_sum(&mut buf);
        buf[0]
    });
    // Sum of all predecessor ranks = sum 0..p.
    let expect = (p * (p - 1) / 2) as f32;
    for r in results {
        assert_eq!(r, expect);
    }
}

/// Empty payloads are legal (a rank may own zero rows of a mini-batch).
#[test]
fn empty_payloads() {
    Communicator::run(2, |ctx| {
        if ctx.rank() == 0 {
            ctx.isend(1, 1, Vec::new());
        } else {
            assert!(ctx.recv(0, 1).is_empty());
        }
    });
}

/// Buffer recycling under adversarial load: 16 ranks exchange two tags
/// received in the *opposite* order they were sent (exercising the
/// pending-message buffering), interleaved with allreduces and rotating-
/// root broadcasts, for many rounds. Every payload is validated (no loss,
/// no corruption), the pools must serve the steady-state rounds from
/// resident buffers, and — because this binary installs the counting
/// allocator — the post-warmup rounds must be *amortized* allocation-free:
/// a handful of queue/pool high-water-mark growths are tolerated (the
/// rotating roots make peak per-destination demand scheduling-dependent),
/// but anything per-message would be hundreds of counts and fails. The
/// strict-zero contract for the trainer's structured traffic is pinned
/// separately by `pargcn-core`'s `no_alloc_steady_state` test.
#[test]
fn pooled_buffers_recycle_under_reordered_load() {
    let p = 16;
    let rounds = 12;
    let warmup = 3;
    let len = 96;
    let outcomes = Communicator::run(p, |ctx| {
        let me = ctx.rank();
        let targets = [(me + 1) % p, (me + 5) % p];
        let sources = [(me + p - 1) % p, (me + p - 5) % p];
        for &t in &targets {
            ctx.prewarm(t, 2, len);
        }
        ctx.prewarm_collectives(2, 4);
        let value = |from: usize, round: usize, tag: u32, k: usize| {
            (from * 100_000 + round * 1_000 + tag as usize + k) as f32
        };
        let mut bcast: Vec<f32> = Vec::new();
        for round in 0..rounds {
            if round == warmup {
                ctx.reset_counters();
            }
            for &t in &targets {
                for tag in [100u32, 200u32] {
                    let mut payload = ctx.acquire(t, len);
                    payload.extend((0..len).map(|k| value(me, round, tag, k)));
                    ctx.isend(t, tag, payload);
                }
            }
            // Collectives interleave with the in-flight point-to-point
            // messages; the broadcast root rotates so several distinct
            // tree shapes (and pool destinations) are exercised.
            let mut acc = [1.0f32];
            ctx.allreduce_sum(&mut acc);
            assert_eq!(acc[0], p as f32);
            let root = round % warmup;
            bcast.clear();
            if me == root {
                bcast.extend([round as f32; 4]);
            }
            ctx.broadcast(root, &mut bcast);
            assert_eq!(bcast, [round as f32; 4]);
            // Receive tag 200 *before* tag 100 — the runtime must hold the
            // earlier-sent tag-100 payloads aside without losing them.
            for &s in &sources {
                for tag in [200u32, 100u32] {
                    let got = ctx.recv(s, tag);
                    assert_eq!(got.len(), len, "round {round}: truncated payload");
                    for (k, &v) in got.iter().enumerate() {
                        assert_eq!(v, value(s, round, tag, k), "round {round}: corrupt payload");
                    }
                    ctx.release(s, got);
                }
            }
        }
        (ctx.pool_stats(), ctx.counters().comm_path_allocs)
    });
    for (rank, (stats, allocs)) in outcomes.iter().enumerate() {
        // After warmup every point-to-point acquire (4 per round) hits.
        assert!(
            stats.hits >= ((rounds - warmup) * 4) as u64,
            "rank {rank}: only {} pool hits of {} acquires",
            stats.hits,
            stats.acquires
        );
        // Recycling converges: buffers circulate instead of accreting.
        assert!(
            stats.free_buffers <= 16,
            "rank {rank}: {} resident buffers — pool is accreting",
            stats.free_buffers
        );
        // 9 post-warmup rounds × ~14 metered runtime calls per rank: any
        // per-message allocation would land in the hundreds.
        assert!(
            *allocs <= 8,
            "rank {rank}: {allocs} comm-path allocations after warmup — recycling broken"
        );
    }
}

/// The binomial-tree allreduce folds children in a fixed (ascending-rank)
/// order, so repeated runs over identical inputs are **bitwise** identical
/// — on every rank, at a non-power-of-two p, with sign-mixed data whose
/// sum order would otherwise show in the low mantissa bits.
#[test]
fn tree_allreduce_is_bitwise_deterministic_across_runs() {
    let p = 13;
    let len = 257;
    let run = || {
        Communicator::run(p, |ctx| {
            let mut rng = StdRng::seed_from_u64(1000 + ctx.rank() as u64);
            let mut buf: Vec<f32> = (0..len).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect();
            ctx.allreduce_sum(&mut buf);
            buf.iter().map(|v| v.to_bits()).collect::<Vec<u32>>()
        })
    };
    let first = run();
    // Within a run, every rank must hold the identical result (replicated
    // parameters stay in lock-step only if this is exact).
    for (rank, bits) in first.iter().enumerate() {
        assert_eq!(bits, &first[0], "rank {rank} diverged within a run");
    }
    for attempt in 0..2 {
        assert_eq!(run(), first, "attempt {attempt}: allreduce not repeatable");
    }
}

/// Gather returns rank-ordered buffers of heterogeneous lengths.
#[test]
fn gather_heterogeneous_lengths() {
    let results = Communicator::run(4, |ctx| {
        let buf = vec![ctx.rank() as f32; ctx.rank()]; // rank r sends r floats
        ctx.gather(2, buf)
    });
    let gathered = results[2].as_ref().unwrap();
    for (r, b) in gathered.iter().enumerate() {
        assert_eq!(b.len(), r);
        assert!(b.iter().all(|&x| x == r as f32));
    }
}
