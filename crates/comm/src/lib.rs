//! Thread-based message-passing runtime and network cost model — the
//! distributed-memory substrate of this reproduction (DESIGN.md §1).
//!
//! The paper runs on MPI over a 180-node InfiniBand cluster; here each MPI
//! rank is an OS thread and messages travel over lock-free channels, with
//! the same semantics the algorithm needs: ranks, tags, **non-blocking
//! sends** ([`RankCtx::isend`]), blocking tag/source-matched receives
//! ([`RankCtx::recv`]), and the collectives (binomial-tree allreduce and
//! broadcast, barrier). Every byte and message is counted per rank exactly
//! as an MPI profiler would ([`counters::CommCounters`]). Payload buffers
//! are recycled through per-rank pools ([`bufpool::BufPool`]) with return
//! channels — MPI persistent requests in spirit — so the steady-state
//! message path performs no heap allocation.
//!
//! Wall-clock time at 512 ranks cannot be measured on one machine, so the
//! [`costmodel`] composes the *exact* measured per-rank computation (FLOPs)
//! and communication (messages/bytes) into epoch times under an α–β–γ
//! machine model with CPU-cluster and GPU-cluster profiles.
//!
//! ```
//! use pargcn_comm::Communicator;
//!
//! // Four "MPI ranks" exchange a ring of non-blocking messages and
//! // allreduce a sum — the primitives Algorithms 1–2 are built on.
//! let results = Communicator::run(4, |ctx| {
//!     let next = (ctx.rank() + 1) % 4;
//!     ctx.isend(next, 0, vec![ctx.rank() as f32]);
//!     let from_prev = ctx.recv((ctx.rank() + 3) % 4, 0);
//!     let mut buf = [from_prev[0]];
//!     ctx.allreduce_sum(&mut buf);
//!     buf[0]
//! });
//! assert_eq!(results, vec![6.0; 4]); // 0+1+2+3 on every rank
//! ```

pub mod bufpool;
pub mod comm;
pub mod costmodel;
pub mod counters;

pub use bufpool::{BufPool, BufPoolStats};
pub use comm::{CommSession, Communicator, RankCtx};
pub use costmodel::MachineProfile;
pub use counters::CommCounters;
