//! The rank runtime: MPI-flavoured non-blocking point-to-point messaging
//! and collectives over threads and lock-free channels.
//!
//! Semantics mirror the MPI subset Algorithms 1–2 of the paper need:
//!
//! * [`RankCtx::isend`] is non-blocking (the payload is handed to an
//!   unbounded channel and the sender continues immediately — the "overlap
//!   communication with local computation" behaviour of Algorithm 1 line 6);
//! * [`RankCtx::recv`] blocks until a message with matching `(source, tag)`
//!   arrives, buffering non-matching arrivals (MPI tag matching);
//! * channel FIFO order per sender gives MPI's non-overtaking guarantee;
//! * [`RankCtx::allreduce_sum`] combines contributions **in rank order**,
//!   so results are bitwise deterministic run to run.

use crate::counters::CommCounters;
use pargcn_util::channel::{unbounded, Receiver, Sender};
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// Reserved tag space for collectives; user tags must stay below this.
pub const RESERVED_TAG_BASE: u32 = u32::MAX - 16;
const TAG_ALLREDUCE: u32 = RESERVED_TAG_BASE;
const TAG_BROADCAST: u32 = RESERVED_TAG_BASE + 1;
const TAG_GATHER: u32 = RESERVED_TAG_BASE + 2;

struct Message {
    from: u32,
    tag: u32,
    payload: Vec<f32>,
}

/// Spawns `p` rank threads and runs `f` on each.
pub struct Communicator;

impl Communicator {
    /// Runs `f(rank_ctx)` on `p` threads, returning per-rank results in rank
    /// order. Panics in any rank propagate.
    pub fn run<F, R>(p: usize, f: F) -> Vec<R>
    where
        F: Fn(&mut RankCtx) -> R + Sync,
        R: Send,
    {
        assert!(p >= 1, "need at least one rank");
        let mut senders: Vec<Sender<Message>> = Vec::with_capacity(p);
        let mut receivers: Vec<Option<Receiver<Message>>> = Vec::with_capacity(p);
        for _ in 0..p {
            let (s, r) = unbounded();
            senders.push(s);
            receivers.push(Some(r));
        }
        let barrier = Arc::new(Barrier::new(p));
        let f = &f;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, recv_slot) in receivers.iter_mut().enumerate() {
                let receiver = recv_slot.take().expect("receiver taken once");
                let senders = senders.clone();
                let barrier = Arc::clone(&barrier);
                handles.push(scope.spawn(move || {
                    let mut ctx = RankCtx {
                        rank,
                        p,
                        senders,
                        receiver,
                        pending: Vec::new(),
                        barrier,
                        counters: CommCounters::default(),
                    };
                    f(&mut ctx)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        })
    }
}

/// Per-rank handle: identity, message endpoints, and counters.
pub struct RankCtx {
    rank: usize,
    p: usize,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    /// Arrived messages not yet claimed by a matching `recv`.
    pending: Vec<Message>,
    barrier: Arc<Barrier>,
    counters: CommCounters,
}

impl RankCtx {
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    pub fn p(&self) -> usize {
        self.p
    }

    /// Read access to this rank's counters.
    pub fn counters(&self) -> &CommCounters {
        &self.counters
    }

    /// Resets this rank's counters (e.g. between warm-up and measured epochs).
    pub fn reset_counters(&mut self) {
        self.counters.reset();
    }

    /// Credits `seconds` of local (non-blocked) kernel time to this rank.
    ///
    /// The runtime times blocking receives and collectives itself
    /// (`comm_seconds`); compute time is the complement and only the caller
    /// knows the span it covers, so the trainers report it explicitly as
    /// `span wall time − comm_seconds accrued in the span`.
    pub fn add_compute_seconds(&mut self, seconds: f64) {
        self.counters.compute_seconds += seconds.max(0.0);
    }

    /// Non-blocking point-to-point send. Returns immediately; the payload
    /// is owned by the runtime from here on.
    ///
    /// # Panics
    /// Panics on self-sends (local data never travels through the runtime in
    /// Algorithms 1–2) and on reserved tags.
    pub fn isend(&mut self, to: usize, tag: u32, payload: Vec<f32>) {
        assert_ne!(to, self.rank, "self-sends are a bug: local rows stay local");
        assert!(
            tag < RESERVED_TAG_BASE,
            "tag {tag} is reserved for collectives"
        );
        self.counters.sent_messages += 1;
        self.counters.sent_bytes += (payload.len() * 4) as u64;
        self.senders[to]
            .send(Message {
                from: self.rank as u32,
                tag,
                payload,
            })
            .expect("peer rank hung up");
    }

    /// Blocking receive of the next message with matching source and tag.
    pub fn recv(&mut self, from: usize, tag: u32) -> Vec<f32> {
        let start = Instant::now();
        let payload = self.recv_inner(from as u32, tag);
        self.counters.comm_seconds += start.elapsed().as_secs_f64();
        self.counters.recv_messages += 1;
        self.counters.recv_bytes += (payload.len() * 4) as u64;
        payload
    }

    /// Non-blocking probe-and-receive: returns a matching message if one has
    /// already arrived. Used by the trainer to drain whichever remote block
    /// lands first (Algorithm 1 lines 7–9 iterate the receive set in any
    /// completion order).
    pub fn try_recv(&mut self, from: usize, tag: u32) -> Option<Vec<f32>> {
        if let Some(pos) = self
            .pending
            .iter()
            .position(|m| m.from == from as u32 && m.tag == tag)
        {
            let m = self.pending.swap_remove(pos);
            self.counters.recv_messages += 1;
            self.counters.recv_bytes += (m.payload.len() * 4) as u64;
            return Some(m.payload);
        }
        while let Ok(m) = self.receiver.try_recv() {
            if m.from == from as u32 && m.tag == tag {
                self.counters.recv_messages += 1;
                self.counters.recv_bytes += (m.payload.len() * 4) as u64;
                return Some(m.payload);
            }
            self.pending.push(m);
        }
        None
    }

    fn recv_inner(&mut self, from: u32, tag: u32) -> Vec<f32> {
        if let Some(pos) = self
            .pending
            .iter()
            .position(|m| m.from == from && m.tag == tag)
        {
            return self.pending.swap_remove(pos).payload;
        }
        loop {
            let m = self.receiver.recv().expect("peer rank hung up");
            if m.from == from && m.tag == tag {
                return m.payload;
            }
            self.pending.push(m);
        }
    }

    /// Synchronizes all ranks.
    pub fn barrier(&mut self) {
        let start = Instant::now();
        self.barrier.wait();
        self.counters.comm_seconds += start.elapsed().as_secs_f64();
    }

    /// Allreduce-sum over `buf` (Algorithm 2 line 13: `ΔW` aggregation).
    ///
    /// Rank 0 gathers contributions, sums them **in rank order** (bitwise
    /// deterministic), and broadcasts the result. Costed as 2(p−1) messages
    /// at the root, like a flat-tree MPI implementation; the cost *model*
    /// prices allreduce separately as a log-tree (costmodel::allreduce_time).
    pub fn allreduce_sum(&mut self, buf: &mut [f32]) {
        let start = Instant::now();
        let bytes = (buf.len() * 4) as u64;
        if self.p > 1 {
            if self.rank == 0 {
                for from in 1..self.p {
                    let contrib = self.recv_inner(from as u32, TAG_ALLREDUCE);
                    assert_eq!(contrib.len(), buf.len(), "allreduce length mismatch");
                    for (b, &c) in buf.iter_mut().zip(&contrib) {
                        *b += c;
                    }
                    self.counters.collective_messages += 1;
                    self.counters.collective_bytes += bytes;
                }
                for to in 1..self.p {
                    self.send_internal(to, TAG_ALLREDUCE, buf.to_vec());
                    self.counters.collective_messages += 1;
                    self.counters.collective_bytes += bytes;
                }
            } else {
                self.send_internal(0, TAG_ALLREDUCE, buf.to_vec());
                let result = self.recv_inner(0, TAG_ALLREDUCE);
                buf.copy_from_slice(&result);
                self.counters.collective_messages += 1;
                self.counters.collective_bytes += bytes;
            }
        }
        self.counters.comm_seconds += start.elapsed().as_secs_f64();
    }

    /// Broadcast from `root`: on the root `buf` is the source, elsewhere it
    /// is overwritten. Used by the CAGNET baseline's turn-wise broadcasts.
    pub fn broadcast(&mut self, root: usize, buf: &mut Vec<f32>) {
        let start = Instant::now();
        if self.p > 1 {
            if self.rank == root {
                for to in 0..self.p {
                    if to != root {
                        self.send_internal(to, TAG_BROADCAST, buf.clone());
                    }
                }
                self.counters.collective_messages += (self.p - 1) as u64;
                self.counters.collective_bytes += ((self.p - 1) * buf.len() * 4) as u64;
            } else {
                *buf = self.recv_inner(root as u32, TAG_BROADCAST);
                self.counters.collective_messages += 1;
                self.counters.collective_bytes += (buf.len() * 4) as u64;
            }
        }
        self.counters.comm_seconds += start.elapsed().as_secs_f64();
    }

    /// Gathers each rank's buffer to `root`, returning `Some(vec-of-bufs)`
    /// in rank order at the root and `None` elsewhere.
    pub fn gather(&mut self, root: usize, buf: Vec<f32>) -> Option<Vec<Vec<f32>>> {
        let start = Instant::now();
        let out = if self.rank == root {
            let mut all: Vec<Vec<f32>> = Vec::with_capacity(self.p);
            for from in 0..self.p {
                if from == root {
                    all.push(buf.clone());
                } else {
                    let m = self.recv_inner(from as u32, TAG_GATHER);
                    self.counters.collective_messages += 1;
                    self.counters.collective_bytes += (m.len() * 4) as u64;
                    all.push(m);
                }
            }
            Some(all)
        } else {
            self.send_internal(root, TAG_GATHER, buf);
            None
        };
        self.counters.comm_seconds += start.elapsed().as_secs_f64();
        out
    }

    /// Internal send without the user-facing counter/tag policy.
    fn send_internal(&mut self, to: usize, tag: u32, payload: Vec<f32>) {
        self.senders[to]
            .send(Message {
                from: self.rank as u32,
                tag,
                payload,
            })
            .expect("peer rank hung up");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_exchange() {
        let results = Communicator::run(4, |ctx| {
            let next = (ctx.rank() + 1) % 4;
            let prev = (ctx.rank() + 3) % 4;
            ctx.isend(next, 7, vec![ctx.rank() as f32]);
            let got = ctx.recv(prev, 7);
            got[0] as usize
        });
        assert_eq!(results, vec![3, 0, 1, 2]);
    }

    #[test]
    fn tag_matching_reorders() {
        let results = Communicator::run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.isend(1, 1, vec![1.0]);
                ctx.isend(1, 2, vec![2.0]);
                0.0
            } else {
                // Receive in reverse tag order: matching must buffer tag 1.
                let b = ctx.recv(0, 2);
                let a = ctx.recv(0, 1);
                a[0] * 10.0 + b[0]
            }
        });
        assert_eq!(results[1], 12.0);
    }

    #[test]
    fn allreduce_sums_in_rank_order() {
        let results = Communicator::run(5, |ctx| {
            let mut buf = vec![ctx.rank() as f32, 1.0];
            ctx.allreduce_sum(&mut buf);
            buf
        });
        for r in &results {
            assert_eq!(r, &vec![10.0, 5.0]);
        }
    }

    #[test]
    fn broadcast_delivers_to_all() {
        let results = Communicator::run(3, |ctx| {
            let mut buf = if ctx.rank() == 1 {
                vec![3.5, 4.5]
            } else {
                Vec::new()
            };
            ctx.broadcast(1, &mut buf);
            buf
        });
        for r in &results {
            assert_eq!(r, &vec![3.5, 4.5]);
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let results = Communicator::run(3, |ctx| ctx.gather(0, vec![ctx.rank() as f32]));
        assert_eq!(results[0], Some(vec![vec![0.0], vec![1.0], vec![2.0]]));
        assert_eq!(results[1], None);
    }

    #[test]
    fn counters_track_p2p_volume() {
        let results = Communicator::run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.isend(1, 0, vec![0.0; 10]);
                ctx.counters().clone()
            } else {
                ctx.recv(0, 0);
                ctx.counters().clone()
            }
        });
        assert_eq!(results[0].sent_messages, 1);
        assert_eq!(results[0].sent_bytes, 40);
        assert_eq!(results[1].recv_messages, 1);
        assert_eq!(results[1].recv_bytes, 40);
    }

    #[test]
    fn try_recv_returns_none_before_arrival() {
        Communicator::run(2, |ctx| {
            if ctx.rank() == 1 {
                // Nothing sent yet (rank 0 waits on a barrier first).
                assert!(ctx.try_recv(0, 3).is_none());
            }
            ctx.barrier();
            if ctx.rank() == 0 {
                ctx.isend(1, 3, vec![9.0]);
            } else {
                // Spin until it lands.
                loop {
                    if let Some(m) = ctx.try_recv(0, 3) {
                        assert_eq!(m, vec![9.0]);
                        break;
                    }
                    std::thread::yield_now();
                }
            }
            ctx.barrier();
        });
    }

    #[test]
    fn single_rank_collectives_are_noops() {
        let results = Communicator::run(1, |ctx| {
            let mut buf = vec![5.0];
            ctx.allreduce_sum(&mut buf);
            ctx.broadcast(0, &mut buf);
            ctx.barrier();
            buf
        });
        assert_eq!(results[0], vec![5.0]);
    }

    #[test]
    fn nonblocking_send_does_not_deadlock_without_receiver_progress() {
        // Both ranks send many messages before either receives: with
        // blocking sends this deadlocks; with isend it must complete.
        Communicator::run(2, |ctx| {
            let other = 1 - ctx.rank();
            for i in 0..100u32 {
                ctx.isend(other, i, vec![i as f32; 64]);
            }
            for i in 0..100u32 {
                let m = ctx.recv(other, i);
                assert_eq!(m[0], i as f32);
            }
        });
    }

    #[test]
    #[should_panic(expected = "self-sends")]
    fn self_send_panics() {
        Communicator::run(1, |ctx| {
            ctx.isend(0, 0, vec![1.0]);
        });
    }
}
