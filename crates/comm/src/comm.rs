//! The rank runtime: MPI-flavoured non-blocking point-to-point messaging
//! and collectives over threads and lock-free channels.
//!
//! Semantics mirror the MPI subset Algorithms 1–2 of the paper need:
//!
//! * [`RankCtx::isend`] is non-blocking (the payload is handed to an
//!   unbounded channel and the sender continues immediately — the "overlap
//!   communication with local computation" behaviour of Algorithm 1 line 6);
//! * [`RankCtx::recv`] blocks until a message with matching `(source, tag)`
//!   arrives, buffering non-matching arrivals (MPI tag matching);
//! * channel FIFO order per sender gives MPI's non-overtaking guarantee;
//! * [`RankCtx::allreduce_sum`] and [`RankCtx::broadcast`] run over a
//!   binomial tree — O(log p) rounds — with a *fixed* combine order
//!   (children folded in ascending rank order), so results are bitwise
//!   deterministic run to run.
//!
//! # Buffer recycling
//!
//! Message payloads are pooled like MPI persistent requests: a sender
//! [`acquire`](RankCtx::acquire)s a buffer keyed by destination, and the
//! receiver hands the payload back over a dedicated *return channel* with
//! [`release`](RankCtx::release) (or implicitly via
//! [`recv_into`](RankCtx::recv_into)), where it rejoins the sender's
//! free list. After the pools are warm, no message round-trip — p2p or
//! collective — touches the heap; `CommCounters::comm_path_allocs`
//! measures exactly that (see `pargcn_util::allocmeter`) and the
//! steady-state tests assert it is zero.

use crate::bufpool::{BufPool, BufPoolStats};
use crate::counters::CommCounters;
use pargcn_util::allocmeter;
use pargcn_util::channel::{unbounded, Receiver, Sender};
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Barrier, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Reserved tag space for collectives; user tags must stay below this.
pub const RESERVED_TAG_BASE: u32 = u32::MAX - 16;
const TAG_ALLREDUCE: u32 = RESERVED_TAG_BASE;
const TAG_BROADCAST: u32 = RESERVED_TAG_BASE + 1;
const TAG_GATHER: u32 = RESERVED_TAG_BASE + 2;

struct Message {
    from: u32,
    tag: u32,
    payload: Vec<f32>,
}

/// A payload travelling back to the rank that sent it, so its buffer can
/// rejoin that rank's free list. `from` is the rank doing the returning —
/// i.e. the *destination* the buffer was originally acquired for.
struct ReturnMsg {
    from: u32,
    buf: Vec<f32>,
}

/// Lowest set bit of `v` (the binomial-tree round in which virtual rank
/// `v` talks to its parent); `0` maps to `0`.
#[inline]
fn lowbit(v: usize) -> usize {
    v & v.wrapping_neg()
}

/// Spawns `p` rank threads and runs `f` on each.
pub struct Communicator;

impl Communicator {
    /// Runs `f(rank_ctx)` on `p` threads, returning per-rank results in rank
    /// order. Panics in any rank propagate.
    ///
    /// This is the one-shot convenience wrapper around [`CommSession`]:
    /// spawn the ranks, run a single step, join. Callers issuing many
    /// steps against the same ranks (the mini-batch engine) keep the
    /// session alive instead, so channels, buffer pools, and counters
    /// persist across steps.
    pub fn run<F, R>(p: usize, f: F) -> Vec<R>
    where
        F: Fn(&mut RankCtx) -> R + Sync,
        R: Send,
    {
        let mut session = CommSession::new(p);
        session.run_step(&f)
    }
}

/// The closure one step runs on every rank, with its borrow lifetime
/// erased so it can cross into the long-lived rank threads. Soundness is
/// the scoped-pool argument (`pargcn_util::pool::Shared`): the submitter
/// keeps the closure alive until every rank has acknowledged the step.
struct ErasedStep(*const (dyn Fn(&mut RankCtx) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from any thread are fine)
// and `CommSession` blocks in `collect_step` before the pointee can die.
unsafe impl Send for ErasedStep {}

/// One rank's acknowledgement that it finished (or panicked in) a step.
struct StepDone {
    rank: usize,
    panic: Option<Box<dyn Any + Send>>,
}

/// A long-lived rank runtime: `p` rank threads spawned **once**, each
/// owning its [`RankCtx`] — message channels, payload pools, pending
/// queue, counters — for the whole session. Work arrives as *steps*
/// (closures run on every rank); state persists across steps, so a
/// stream of mini-batch steps pays the thread-spawn, channel-build and
/// pool-warmup cost once instead of per batch.
///
/// Panic semantics match [`Communicator::run`]: a panicking rank
/// acknowledges its step with the payload (rethrown on the submitter),
/// then exits, dropping its endpoints — peers blocked on it observe
/// "peer rank hung up", exactly as if the scoped thread had died. The
/// session is poisoned afterwards; further steps are refused.
pub struct CommSession {
    p: usize,
    jobs: Vec<Sender<ErasedStep>>,
    done_rx: Receiver<StepDone>,
    handles: Vec<JoinHandle<()>>,
    in_flight: bool,
    poisoned: bool,
}

impl CommSession {
    /// Spawns the `p` rank threads and their channel mesh.
    pub fn new(p: usize) -> CommSession {
        assert!(p >= 1, "need at least one rank");
        let mut senders: Vec<Sender<Message>> = Vec::with_capacity(p);
        let mut receivers: Vec<Option<Receiver<Message>>> = Vec::with_capacity(p);
        let mut returns: Vec<Sender<ReturnMsg>> = Vec::with_capacity(p);
        let mut return_rxs: Vec<Option<Receiver<ReturnMsg>>> = Vec::with_capacity(p);
        for _ in 0..p {
            let (s, r) = unbounded();
            senders.push(s);
            receivers.push(Some(r));
            let (s, r) = unbounded();
            returns.push(s);
            return_rxs.push(Some(r));
        }
        let barrier = Arc::new(Barrier::new(p));
        let (done_tx, done_rx) = unbounded();
        let mut jobs = Vec::with_capacity(p);
        let mut handles = Vec::with_capacity(p);
        for (rank, (recv_slot, ret_slot)) in
            receivers.iter_mut().zip(return_rxs.iter_mut()).enumerate()
        {
            let receiver = recv_slot.take().expect("receiver taken once");
            let return_rx = ret_slot.take().expect("return receiver taken once");
            let senders = senders.clone();
            let returns = returns.clone();
            let barrier = Arc::clone(&barrier);
            let done_tx = done_tx.clone();
            let (job_tx, job_rx) = unbounded::<ErasedStep>();
            jobs.push(job_tx);
            let handle = std::thread::Builder::new()
                .name(format!("pargcn-rank-{rank}"))
                .spawn(move || {
                    let mut ctx = RankCtx {
                        rank,
                        p,
                        senders,
                        receiver,
                        returns,
                        return_rx,
                        pool: BufPool::new(p),
                        pending: Vec::new(),
                        barrier,
                        counters: CommCounters::default(),
                    };
                    while let Ok(step) = job_rx.recv() {
                        // SAFETY: the submitter blocks in `collect_step`
                        // until this rank's `done` message below, so the
                        // closure (and everything it borrows) is alive.
                        let result =
                            catch_unwind(AssertUnwindSafe(|| unsafe { (*step.0)(&mut ctx) }));
                        let failed = result.is_err();
                        let _ = done_tx.send(StepDone {
                            rank,
                            panic: result.err(),
                        });
                        if failed {
                            // Exit, dropping `ctx`: peers blocked on this
                            // rank unblock with "peer rank hung up" — the
                            // same observable behaviour a dying scoped
                            // thread had under the one-shot runtime.
                            break;
                        }
                    }
                })
                .expect("spawn rank thread");
            handles.push(handle);
        }
        CommSession {
            p,
            jobs,
            done_rx,
            handles,
            in_flight: false,
            poisoned: false,
        }
    }

    /// Number of ranks in the session.
    #[inline]
    pub fn p(&self) -> usize {
        self.p
    }

    /// Runs `f` on every rank — against the *persistent* per-rank state —
    /// and blocks until all ranks finish, returning results in rank order.
    /// Panics in any rank propagate (and poison the session).
    pub fn run_step<F, R>(&mut self, f: F) -> Vec<R>
    where
        F: Fn(&mut RankCtx) -> R + Sync,
        R: Send,
    {
        let slots: Vec<Mutex<Option<R>>> = (0..self.p).map(|_| Mutex::new(None)).collect();
        let step = |ctx: &mut RankCtx| {
            let r = f(ctx);
            *slots[ctx.rank()].lock().unwrap() = Some(r);
        };
        // SAFETY: `step` (and the `slots`/`f` it borrows) outlives the
        // blocking `collect_step` below; no other step is in flight.
        unsafe { self.submit_step(&step) };
        self.collect_step();
        slots
            .into_iter()
            .map(|s| s.into_inner().unwrap().expect("rank produced no result"))
            .collect()
    }

    /// Posts `f` to every rank **without waiting**. The caller's thread is
    /// free until the matching [`collect_step`](Self::collect_step) — the
    /// hook the mini-batch engine uses to prepare batch `t+1` while the
    /// ranks train batch `t`.
    ///
    /// # Safety
    /// The closure (and everything it borrows) must stay alive and
    /// unmodified until `collect_step` returns, and at most one step may
    /// be in flight at a time (enforced by assertion).
    pub unsafe fn submit_step(&mut self, f: &(dyn Fn(&mut RankCtx) + Sync)) {
        assert!(
            !self.poisoned,
            "comm session poisoned by an earlier rank panic"
        );
        assert!(!self.in_flight, "a step is already in flight");
        // Erase the borrow's lifetime into the raw pointer; `collect_step`
        // blocks until every rank is done with it.
        let ptr = unsafe {
            std::mem::transmute::<
                &(dyn Fn(&mut RankCtx) + Sync),
                *const (dyn Fn(&mut RankCtx) + Sync),
            >(f)
        };
        for job in &self.jobs {
            job.send(ErasedStep(ptr)).expect("rank thread exited");
        }
        self.in_flight = true;
    }

    /// Blocks until every rank has finished the in-flight step. Rethrows
    /// the first rank panic (poisoning the session) after all
    /// acknowledgements arrive.
    pub fn collect_step(&mut self) {
        assert!(self.in_flight, "no step in flight");
        let mut first_panic: Option<Box<dyn Any + Send>> = None;
        for _ in 0..self.p {
            let done = self
                .done_rx
                .recv()
                .expect("rank thread died without acknowledging its step");
            if let Some(payload) = done.panic {
                self.poisoned = true;
                let _ = done.rank;
                if first_panic.is_none() {
                    first_panic = Some(payload);
                }
            }
        }
        self.in_flight = false;
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
    }
}

impl Drop for CommSession {
    fn drop(&mut self) {
        // Disconnect the job queues; rank threads observe the hangup and
        // exit, dropping their contexts.
        self.jobs.clear();
        for handle in self.handles.drain(..) {
            // Rank panics were already captured and rethrown by
            // `collect_step`; a join error here can only happen during an
            // unwind that is already in progress, so never double-panic.
            let _ = handle.join();
        }
    }
}

/// Per-rank handle: identity, message endpoints, payload pool, counters.
pub struct RankCtx {
    rank: usize,
    p: usize,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    /// Return-channel endpoints: `returns[s]` carries recycled payload
    /// buffers back to rank `s`'s pool.
    returns: Vec<Sender<ReturnMsg>>,
    return_rx: Receiver<ReturnMsg>,
    pool: BufPool,
    /// Arrived messages not yet claimed by a matching `recv`.
    pending: Vec<Message>,
    barrier: Arc<Barrier>,
    counters: CommCounters,
}

impl RankCtx {
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    pub fn p(&self) -> usize {
        self.p
    }

    /// Read access to this rank's counters.
    pub fn counters(&self) -> &CommCounters {
        &self.counters
    }

    /// Resets this rank's counters (e.g. between warm-up and measured epochs).
    pub fn reset_counters(&mut self) {
        self.counters.reset();
    }

    /// Snapshot of this rank's payload-pool statistics.
    pub fn pool_stats(&self) -> BufPoolStats {
        self.pool.stats()
    }

    /// Credits `seconds` of local (non-blocked) kernel time to this rank.
    ///
    /// The runtime times blocking receives and collectives itself
    /// (`comm_seconds`); compute time is the complement and only the caller
    /// knows the span it covers, so the trainers report it explicitly as
    /// `span wall time − comm_seconds accrued in the span`.
    pub fn add_compute_seconds(&mut self, seconds: f64) {
        self.counters.compute_seconds += seconds.max(0.0);
    }

    /// Credits shape-counted kernel FLOPs to this rank; the trainers drain
    /// their `ComputeCtx` meter here once per run so `compute_flops /
    /// compute_seconds` is the rank's sustained arithmetic rate.
    pub fn add_compute_flops(&mut self, flops: u64) {
        self.counters.compute_flops += flops;
    }

    /// Moves every buffer waiting on the return channel back into the pool.
    fn drain_returns(&mut self) {
        while let Ok(r) = self.return_rx.try_recv() {
            self.pool.put(r.from as usize, r.buf);
        }
    }

    /// Takes a cleared payload buffer with capacity for `len` floats for a
    /// message to rank `to`, recycling returned buffers when possible.
    /// Pair with [`isend`](Self::isend); the receiver sends the buffer
    /// back via [`release`](Self::release) / [`recv_into`](Self::recv_into).
    pub fn acquire(&mut self, to: usize, len: usize) -> Vec<f32> {
        let a0 = allocmeter::current();
        self.drain_returns();
        let buf = self.pool.acquire(to, len);
        self.counters.comm_path_allocs += allocmeter::current() - a0;
        buf
    }

    /// Hands a received payload buffer back to the rank that sent it
    /// (`from`), where it rejoins that rank's free list. Self-returns
    /// (e.g. a root's own gather contribution) go straight to the pool.
    pub fn release(&mut self, from: usize, buf: Vec<f32>) {
        let a0 = allocmeter::current();
        if from == self.rank {
            self.pool.put(from, buf);
        } else {
            // The receiver ignoring returns (rank exited) is fine: the
            // buffer is simply dropped with the channel.
            let _ = self.returns[from].send(ReturnMsg {
                from: self.rank as u32,
                buf,
            });
        }
        self.counters.comm_path_allocs += allocmeter::current() - a0;
    }

    /// Pre-fills the pool with `count` payload buffers of capacity `len`
    /// for destination `to`, so steady-state `acquire`s never allocate.
    pub fn prewarm(&mut self, to: usize, count: usize, len: usize) {
        self.pool.prewarm(to, count, len);
    }

    /// Idempotent [`prewarm`](Self::prewarm): drains the return channel,
    /// then tops the pool up until `count` resident buffers for `to` fit
    /// `len` floats (see [`BufPool::ensure`]). At a step boundary every
    /// buffer is back in flight toward its pool, so draining first makes
    /// the resident count exact and repeated calls with a stream of
    /// varying demands allocate only when the high-water mark rises.
    pub fn ensure_pool(&mut self, to: usize, count: usize, len: usize) {
        self.drain_returns();
        self.pool.ensure(to, count, len);
    }

    /// Reserves capacity for `msgs` in-flight messages in this rank's
    /// mailbox, pending queue, and return channel. Queue depth is
    /// scheduling-dependent (a fast sender can run ahead), so without a
    /// reservation a container can hit a new high-water mark — and grow —
    /// in a steady-state epoch under an unlucky interleaving. Callers
    /// that need the strict zero-allocation contract reserve an epoch's
    /// worth of messages up front (see `prewarm_comm_pools` in
    /// `pargcn-core`).
    pub fn reserve_queues(&mut self, msgs: usize) {
        self.receiver.reserve(msgs);
        self.return_rx.reserve(msgs);
        self.pending.reserve(msgs);
    }

    /// Pre-fills the pool for this rank's binomial-tree collective
    /// neighbours (parent and children of the rank-0-rooted allreduce
    /// tree): `count` buffers of capacity `len` per neighbour.
    pub fn prewarm_collectives(&mut self, count: usize, len: usize) {
        self.for_collective_neighbours(|pool, peer| pool.prewarm(peer, count, len));
    }

    /// Idempotent [`prewarm_collectives`](Self::prewarm_collectives),
    /// with [`ensure_pool`](Self::ensure_pool)'s top-up semantics.
    pub fn ensure_collectives(&mut self, count: usize, len: usize) {
        self.drain_returns();
        self.for_collective_neighbours(|pool, peer| pool.ensure(peer, count, len));
    }

    fn for_collective_neighbours(&mut self, mut f: impl FnMut(&mut BufPool, usize)) {
        if self.p == 1 {
            return;
        }
        if self.rank != 0 {
            f(&mut self.pool, self.rank - lowbit(self.rank));
        }
        let low = if self.rank == 0 {
            self.p.next_power_of_two()
        } else {
            lowbit(self.rank)
        };
        let mut m = low >> 1;
        while m > 0 {
            let child = self.rank + m;
            if child < self.p {
                f(&mut self.pool, child);
            }
            m >>= 1;
        }
    }

    /// Non-blocking point-to-point send. Returns immediately; the payload
    /// is owned by the runtime from here on (and, if it came from
    /// [`acquire`](Self::acquire), eventually returns to this rank's pool
    /// once the receiver releases it).
    ///
    /// # Panics
    /// Panics on self-sends (local data never travels through the runtime in
    /// Algorithms 1–2) and on reserved tags.
    pub fn isend(&mut self, to: usize, tag: u32, payload: Vec<f32>) {
        assert_ne!(to, self.rank, "self-sends are a bug: local rows stay local");
        assert!(
            tag < RESERVED_TAG_BASE,
            "tag {tag} is reserved for collectives"
        );
        let a0 = allocmeter::current();
        self.counters.sent_messages += 1;
        self.counters.sent_bytes += (payload.len() * 4) as u64;
        self.senders[to]
            .send(Message {
                from: self.rank as u32,
                tag,
                payload,
            })
            .expect("peer rank hung up");
        self.counters.comm_path_allocs += allocmeter::current() - a0;
    }

    /// Blocking receive of the next message with matching source and tag.
    /// The returned payload is owned by the caller; hand it back with
    /// [`release`](Self::release) (or use [`recv_into`](Self::recv_into))
    /// to keep the sender's pool warm.
    pub fn recv(&mut self, from: usize, tag: u32) -> Vec<f32> {
        let start = Instant::now();
        let a0 = allocmeter::current();
        let payload = self.recv_inner(from as u32, tag);
        self.counters.comm_path_allocs += allocmeter::current() - a0;
        self.counters.comm_seconds += start.elapsed().as_secs_f64();
        self.counters.recv_messages += 1;
        self.counters.recv_bytes += (payload.len() * 4) as u64;
        payload
    }

    /// Blocking receive that copies the payload into `buf` (cleared
    /// first, capacity reused) and recycles the payload buffer back to
    /// the sender's pool. With a warm `buf` this allocates nothing.
    pub fn recv_into(&mut self, from: usize, tag: u32, buf: &mut Vec<f32>) {
        let start = Instant::now();
        let a0 = allocmeter::current();
        let payload = self.recv_inner(from as u32, tag);
        self.counters.recv_messages += 1;
        self.counters.recv_bytes += (payload.len() * 4) as u64;
        buf.clear();
        buf.extend_from_slice(&payload);
        self.release_unmetered(from, payload);
        self.counters.comm_path_allocs += allocmeter::current() - a0;
        self.counters.comm_seconds += start.elapsed().as_secs_f64();
    }

    /// Non-blocking [`recv_into`](Self::recv_into): returns `false` (and
    /// leaves `buf` untouched) if no matching message has arrived yet.
    pub fn try_recv_into(&mut self, from: usize, tag: u32, buf: &mut Vec<f32>) -> bool {
        let a0 = allocmeter::current();
        let got = match self.try_recv_match(|m| m.from == from as u32 && m.tag == tag) {
            Some(m) => {
                self.counters.recv_messages += 1;
                self.counters.recv_bytes += (m.payload.len() * 4) as u64;
                buf.clear();
                buf.extend_from_slice(&m.payload);
                self.release_unmetered(from, m.payload);
                true
            }
            None => false,
        };
        self.counters.comm_path_allocs += allocmeter::current() - a0;
        got
    }

    /// Non-blocking probe-and-receive: returns a matching message if one has
    /// already arrived. Used by the trainer to drain whichever remote block
    /// lands first (Algorithm 1 lines 7–9 iterate the receive set in any
    /// completion order).
    pub fn try_recv(&mut self, from: usize, tag: u32) -> Option<Vec<f32>> {
        let a0 = allocmeter::current();
        let got = self
            .try_recv_match(|m| m.from == from as u32 && m.tag == tag)
            .map(|m| {
                self.counters.recv_messages += 1;
                self.counters.recv_bytes += (m.payload.len() * 4) as u64;
                m.payload
            });
        self.counters.comm_path_allocs += allocmeter::current() - a0;
        got
    }

    /// Non-blocking receive of the next message with tag `tag` from *any*
    /// source, returning `(source, payload)`. One mailbox scan serves a
    /// whole receive set — the trainer's exchange drains with this instead
    /// of probing every peer individually.
    pub fn try_recv_any(&mut self, tag: u32) -> Option<(usize, Vec<f32>)> {
        let a0 = allocmeter::current();
        let got = self.try_recv_match(|m| m.tag == tag).map(|m| {
            self.counters.recv_messages += 1;
            self.counters.recv_bytes += (m.payload.len() * 4) as u64;
            (m.from as usize, m.payload)
        });
        self.counters.comm_path_allocs += allocmeter::current() - a0;
        got
    }

    /// Blocking receive of the next message with tag `tag` from any
    /// source. The blocking complement of [`try_recv_any`](Self::try_recv_any).
    pub fn recv_any(&mut self, tag: u32) -> (usize, Vec<f32>) {
        let start = Instant::now();
        let a0 = allocmeter::current();
        let m = if let Some(pos) = self.pending.iter().position(|m| m.tag == tag) {
            // `remove`, not `swap_remove`: `pending` is kept in arrival
            // order so two same-(source, tag) messages are claimed in the
            // order they were sent (the MPI non-overtaking guarantee).
            self.pending.remove(pos)
        } else {
            loop {
                let m = self.receiver.recv().expect("peer rank hung up");
                if m.tag == tag {
                    break m;
                }
                self.pending.push(m);
            }
        };
        self.counters.comm_path_allocs += allocmeter::current() - a0;
        self.counters.comm_seconds += start.elapsed().as_secs_f64();
        self.counters.recv_messages += 1;
        self.counters.recv_bytes += (m.payload.len() * 4) as u64;
        (m.from as usize, m.payload)
    }

    /// First pending or already-delivered message satisfying `matches`.
    fn try_recv_match(&mut self, matches: impl Fn(&Message) -> bool) -> Option<Message> {
        if let Some(pos) = self.pending.iter().position(&matches) {
            // Order-preserving removal — see `recv_any`.
            return Some(self.pending.remove(pos));
        }
        while let Ok(m) = self.receiver.try_recv() {
            if matches(&m) {
                return Some(m);
            }
            self.pending.push(m);
        }
        None
    }

    fn recv_inner(&mut self, from: u32, tag: u32) -> Vec<f32> {
        if let Some(pos) = self
            .pending
            .iter()
            .position(|m| m.from == from && m.tag == tag)
        {
            // Order-preserving removal — see `recv_any`.
            return self.pending.remove(pos).payload;
        }
        loop {
            let m = self.receiver.recv().expect("peer rank hung up");
            if m.from == from && m.tag == tag {
                return m.payload;
            }
            self.pending.push(m);
        }
    }

    /// [`release`](Self::release) without the alloc metering (for use
    /// inside already-metered spans).
    fn release_unmetered(&mut self, from: usize, buf: Vec<f32>) {
        if from == self.rank {
            self.pool.put(from, buf);
        } else {
            let _ = self.returns[from].send(ReturnMsg {
                from: self.rank as u32,
                buf,
            });
        }
    }

    /// Pool-backed internal send: copies `data` into a recycled buffer
    /// bound for `to`. Collectives route every hop through this, so their
    /// steady state is allocation-free too.
    fn send_pooled(&mut self, to: usize, tag: u32, data: &[f32]) {
        self.drain_returns();
        let mut payload = self.pool.acquire(to, data.len());
        payload.extend_from_slice(data);
        self.send_internal(to, tag, payload);
        self.counters.collective_messages += 1;
        self.counters.collective_bytes += (data.len() * 4) as u64;
    }

    /// Synchronizes all ranks.
    pub fn barrier(&mut self) {
        let start = Instant::now();
        self.barrier.wait();
        self.counters.comm_seconds += start.elapsed().as_secs_f64();
    }

    /// Allreduce-sum over `buf` (Algorithm 2 line 13: `ΔW` aggregation).
    ///
    /// Runs over the binomial tree rooted at rank 0 in O(log p) rounds:
    /// a reduce up the tree followed by a broadcast of the result down the
    /// same edges. Every node folds its children **in ascending rank
    /// order** — the tree shape and combine order are fixed, so results
    /// are bitwise deterministic run to run (`costmodel::allreduce_time`
    /// prices exactly this shape). Note the fold order differs from a
    /// flat rank-order sum: 8-rank example, rank 0 folds 1, 2 (which
    /// already folded 3), 4 (which folded 5 and 6+7).
    pub fn allreduce_sum(&mut self, buf: &mut [f32]) {
        let start = Instant::now();
        let a0 = allocmeter::current();
        if self.p > 1 {
            // Reduce toward rank 0: in round `mask = 2^j`, ranks whose j
            // low bits are clear either fold child `rank + mask` or send
            // up to `rank − mask` and leave the loop.
            let mut mask = 1usize;
            while mask < self.p {
                if self.rank & mask != 0 {
                    let parent = self.rank - mask;
                    self.send_pooled(parent, TAG_ALLREDUCE, buf);
                    break;
                }
                let child = self.rank + mask;
                if child < self.p {
                    let contrib = self.recv_inner(child as u32, TAG_ALLREDUCE);
                    assert_eq!(contrib.len(), buf.len(), "allreduce length mismatch");
                    for (b, &c) in buf.iter_mut().zip(&contrib) {
                        *b += c;
                    }
                    self.release_unmetered(child, contrib);
                }
                mask <<= 1;
            }
            // Broadcast the result back down the same tree.
            if self.rank != 0 {
                let parent = self.rank - lowbit(self.rank);
                let res = self.recv_inner(parent as u32, TAG_ALLREDUCE);
                buf.copy_from_slice(&res);
                self.release_unmetered(parent, res);
            }
            self.tree_fanout(0, TAG_ALLREDUCE, buf);
        }
        self.counters.comm_path_allocs += allocmeter::current() - a0;
        self.counters.comm_seconds += start.elapsed().as_secs_f64();
    }

    /// Broadcast from `root`: on the root `buf` is the source, elsewhere it
    /// is overwritten (capacity reused — a warm caller buffer means no
    /// allocation). Binomial tree, O(log p) rounds; used by the CAGNET
    /// baseline's turn-wise broadcasts.
    pub fn broadcast(&mut self, root: usize, buf: &mut Vec<f32>) {
        let start = Instant::now();
        let a0 = allocmeter::current();
        if self.p > 1 {
            let vrank = (self.rank + self.p - root) % self.p;
            if vrank != 0 {
                let parent = (vrank - lowbit(vrank) + root) % self.p;
                let res = self.recv_inner(parent as u32, TAG_BROADCAST);
                buf.clear();
                buf.extend_from_slice(&res);
                self.release_unmetered(parent, res);
            }
            self.tree_fanout(root, TAG_BROADCAST, buf);
        }
        self.counters.comm_path_allocs += allocmeter::current() - a0;
        self.counters.comm_seconds += start.elapsed().as_secs_f64();
    }

    /// Sends `data` to this rank's children in the binomial tree rooted at
    /// `root`, biggest subtree first (the log-depth schedule).
    fn tree_fanout(&mut self, root: usize, tag: u32, data: &[f32]) {
        let vrank = (self.rank + self.p - root) % self.p;
        let low = if vrank == 0 {
            self.p.next_power_of_two()
        } else {
            lowbit(vrank)
        };
        let mut m = low >> 1;
        while m > 0 {
            let child = vrank + m;
            if child < self.p {
                self.send_pooled((child + root) % self.p, tag, data);
            }
            m >>= 1;
        }
    }

    /// Gathers each rank's buffer to `root`, returning `Some(vec-of-bufs)`
    /// in rank order at the root and `None` elsewhere. Payload buffers
    /// become the result, so this path allocates by design (it is used
    /// once per run, not per epoch); messages are counted at the sender
    /// like every other collective.
    pub fn gather(&mut self, root: usize, buf: Vec<f32>) -> Option<Vec<Vec<f32>>> {
        let start = Instant::now();
        let out = if self.rank == root {
            let mut all: Vec<Vec<f32>> = Vec::with_capacity(self.p);
            for from in 0..self.p {
                if from == root {
                    // Reuse the sentinel below to keep `all` in rank order
                    // without cloning the root's own contribution.
                    all.push(Vec::new());
                } else {
                    all.push(self.recv_inner(from as u32, TAG_GATHER));
                }
            }
            all[root] = buf;
            Some(all)
        } else {
            self.counters.collective_messages += 1;
            self.counters.collective_bytes += (buf.len() * 4) as u64;
            self.send_internal(root, TAG_GATHER, buf);
            None
        };
        self.counters.comm_seconds += start.elapsed().as_secs_f64();
        out
    }

    /// Internal send without the user-facing counter/tag policy.
    fn send_internal(&mut self, to: usize, tag: u32, payload: Vec<f32>) {
        self.senders[to]
            .send(Message {
                from: self.rank as u32,
                tag,
                payload,
            })
            .expect("peer rank hung up");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_exchange() {
        let results = Communicator::run(4, |ctx| {
            let next = (ctx.rank() + 1) % 4;
            let prev = (ctx.rank() + 3) % 4;
            ctx.isend(next, 7, vec![ctx.rank() as f32]);
            let got = ctx.recv(prev, 7);
            got[0] as usize
        });
        assert_eq!(results, vec![3, 0, 1, 2]);
    }

    #[test]
    fn tag_matching_reorders() {
        let results = Communicator::run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.isend(1, 1, vec![1.0]);
                ctx.isend(1, 2, vec![2.0]);
                0.0
            } else {
                // Receive in reverse tag order: matching must buffer tag 1.
                let b = ctx.recv(0, 2);
                let a = ctx.recv(0, 1);
                a[0] * 10.0 + b[0]
            }
        });
        assert_eq!(results[1], 12.0);
    }

    #[test]
    fn allreduce_tree_sums_exactly() {
        // Integer-valued f32s sum exactly under any association, so the
        // binomial-tree fold must reproduce the arithmetic total.
        for p in [2usize, 3, 5, 8, 13] {
            let results = Communicator::run(p, |ctx| {
                let mut buf = vec![ctx.rank() as f32, 1.0];
                ctx.allreduce_sum(&mut buf);
                buf
            });
            let total = (p * (p - 1) / 2) as f32;
            for r in &results {
                assert_eq!(r, &vec![total, p as f32]);
            }
        }
    }

    #[test]
    fn broadcast_delivers_to_all() {
        // Root 1 exercises the virtual-rank rotation of the tree.
        let results = Communicator::run(3, |ctx| {
            let mut buf = if ctx.rank() == 1 {
                vec![3.5, 4.5]
            } else {
                Vec::new()
            };
            ctx.broadcast(1, &mut buf);
            buf
        });
        for r in &results {
            assert_eq!(r, &vec![3.5, 4.5]);
        }
    }

    #[test]
    fn broadcast_from_every_root() {
        for p in [2usize, 5, 8] {
            for root in 0..p {
                let results = Communicator::run(p, |ctx| {
                    let mut buf = if ctx.rank() == root {
                        vec![root as f32, 42.0]
                    } else {
                        Vec::new()
                    };
                    ctx.broadcast(root, &mut buf);
                    buf
                });
                for r in &results {
                    assert_eq!(r, &vec![root as f32, 42.0]);
                }
            }
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let results = Communicator::run(3, |ctx| ctx.gather(0, vec![ctx.rank() as f32]));
        assert_eq!(results[0], Some(vec![vec![0.0], vec![1.0], vec![2.0]]));
        assert_eq!(results[1], None);
    }

    #[test]
    fn counters_track_p2p_volume() {
        let results = Communicator::run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.isend(1, 0, vec![0.0; 10]);
                ctx.counters().clone()
            } else {
                ctx.recv(0, 0);
                ctx.counters().clone()
            }
        });
        assert_eq!(results[0].sent_messages, 1);
        assert_eq!(results[0].sent_bytes, 40);
        assert_eq!(results[1].recv_messages, 1);
        assert_eq!(results[1].recv_bytes, 40);
    }

    #[test]
    fn counters_count_tree_messages_at_the_sender() {
        // Binomial-tree allreduce: p−1 reduce hops + p−1 broadcast hops,
        // each counted once (by its sender), so the merged total is
        // exactly the number of messages on the wire.
        for p in [2usize, 5, 8] {
            let results = Communicator::run(p, |ctx| {
                let mut buf = vec![1.0f32; 3];
                ctx.allreduce_sum(&mut buf);
                ctx.counters().clone()
            });
            let merged = CommCounters::merged(&results);
            assert_eq!(merged.collective_messages, 2 * (p as u64 - 1));
            assert_eq!(merged.collective_bytes, 2 * (p as u64 - 1) * 12);
        }
        let results = Communicator::run(6, |ctx| {
            let mut buf = if ctx.rank() == 2 {
                vec![7.0; 4]
            } else {
                vec![]
            };
            ctx.broadcast(2, &mut buf);
            ctx.counters().clone()
        });
        let merged = CommCounters::merged(&results);
        assert_eq!(merged.collective_messages, 5);
        assert_eq!(merged.collective_bytes, 5 * 16);
    }

    #[test]
    fn try_recv_returns_none_before_arrival() {
        Communicator::run(2, |ctx| {
            if ctx.rank() == 1 {
                // Nothing sent yet (rank 0 waits on a barrier first).
                assert!(ctx.try_recv(0, 3).is_none());
            }
            ctx.barrier();
            if ctx.rank() == 0 {
                ctx.isend(1, 3, vec![9.0]);
            } else {
                // Spin until it lands.
                loop {
                    if let Some(m) = ctx.try_recv(0, 3) {
                        assert_eq!(m, vec![9.0]);
                        break;
                    }
                    std::thread::yield_now();
                }
            }
            ctx.barrier();
        });
    }

    #[test]
    fn recv_any_matches_by_tag_only() {
        let results = Communicator::run(3, |ctx| {
            if ctx.rank() == 0 {
                ctx.isend(2, 5, vec![10.0]);
                0.0
            } else if ctx.rank() == 1 {
                ctx.isend(2, 5, vec![20.0]);
                0.0
            } else {
                let (f1, p1) = ctx.recv_any(5);
                let (f2, p2) = ctx.recv_any(5);
                assert_ne!(f1, f2);
                p1[0] + p2[0]
            }
        });
        assert_eq!(results[2], 30.0);
    }

    #[test]
    fn try_recv_any_leaves_other_tags_pending() {
        Communicator::run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.isend(1, 8, vec![1.0]);
                ctx.isend(1, 9, vec![2.0]);
            } else {
                // Wait for the tag-9 message while tag 8 sits in front of
                // it: try_recv_any must buffer, not drop, the mismatch.
                loop {
                    if let Some((from, p)) = ctx.try_recv_any(9) {
                        assert_eq!(from, 0);
                        assert_eq!(p, vec![2.0]);
                        break;
                    }
                    std::thread::yield_now();
                }
                assert_eq!(ctx.recv(0, 8), vec![1.0]);
            }
        });
    }

    #[test]
    fn recv_into_reuses_caller_capacity() {
        Communicator::run(2, |ctx| {
            if ctx.rank() == 0 {
                for i in 0..4u32 {
                    ctx.isend(1, i, vec![i as f32; 8]);
                }
            } else {
                let mut buf: Vec<f32> = Vec::with_capacity(8);
                let cap_ptr = buf.as_ptr();
                for i in 0..4u32 {
                    ctx.recv_into(0, i, &mut buf);
                    assert_eq!(buf, vec![i as f32; 8]);
                }
                // Same backing storage the whole way through.
                assert_eq!(buf.as_ptr(), cap_ptr);
            }
        });
    }

    #[test]
    fn released_payloads_return_to_the_sender_pool() {
        Communicator::run(2, |ctx| {
            let other = 1 - ctx.rank();
            // Round 0 allocates; after the payload travels there and back,
            // round 2's acquire must be served from the pool.
            for round in 0..4u32 {
                let mut payload = ctx.acquire(other, 16);
                payload.extend_from_slice(&[round as f32; 16]);
                ctx.isend(other, round, payload);
                let mut scratch = Vec::new();
                ctx.recv_into(other, round, &mut scratch);
                assert_eq!(scratch, vec![round as f32; 16]);
                ctx.barrier(); // make the return visible before next acquire
            }
            let stats = ctx.pool_stats();
            assert_eq!(stats.acquires, 4);
            assert!(stats.hits >= 2, "pool should serve later rounds: {stats:?}");
        });
    }

    #[test]
    fn single_rank_collectives_are_noops() {
        let results = Communicator::run(1, |ctx| {
            let mut buf = vec![5.0];
            ctx.allreduce_sum(&mut buf);
            ctx.broadcast(0, &mut buf);
            ctx.barrier();
            buf
        });
        assert_eq!(results[0], vec![5.0]);
    }

    #[test]
    fn nonblocking_send_does_not_deadlock_without_receiver_progress() {
        // Both ranks send many messages before either receives: with
        // blocking sends this deadlocks; with isend it must complete.
        Communicator::run(2, |ctx| {
            let other = 1 - ctx.rank();
            for i in 0..100u32 {
                ctx.isend(other, i, vec![i as f32; 64]);
            }
            for i in 0..100u32 {
                let m = ctx.recv(other, i);
                assert_eq!(m[0], i as f32);
            }
        });
    }

    #[test]
    #[should_panic(expected = "self-sends")]
    fn self_send_panics() {
        Communicator::run(1, |ctx| {
            ctx.isend(0, 0, vec![1.0]);
        });
    }

    #[test]
    fn session_state_persists_across_steps() {
        // Counters accumulate and payload pools stay warm across steps —
        // the property the one-shot runtime could not provide.
        let mut session = CommSession::new(2);
        session.run_step(|ctx| {
            let other = 1 - ctx.rank();
            ctx.prewarm(other, 1, 32);
            let mut payload = ctx.acquire(other, 32);
            payload.resize(32, ctx.rank() as f32);
            ctx.isend(other, 0, payload);
            let got = ctx.recv(other, 0);
            ctx.release(other, got);
            ctx.barrier(); // returns visible before the next step's acquire
        });
        let stats = session.run_step(|ctx| {
            let other = 1 - ctx.rank();
            // Served from the pool warmed in the previous step.
            let payload = ctx.acquire(other, 32);
            ctx.release(ctx.rank(), payload);
            (ctx.counters().clone(), ctx.pool_stats())
        });
        for (counters, pool) in &stats {
            assert_eq!(counters.sent_messages, 1, "counters must span steps");
            assert_eq!(counters.recv_messages, 1);
            assert!(
                pool.hits >= 1,
                "step-2 acquire should hit the step-1 pool: {pool:?}"
            );
        }
    }

    #[test]
    fn session_runs_many_steps_on_same_ranks() {
        let mut session = CommSession::new(4);
        for step in 0..10u32 {
            let results = session.run_step(|ctx| {
                let next = (ctx.rank() + 1) % 4;
                let prev = (ctx.rank() + 3) % 4;
                ctx.isend(next, step, vec![(ctx.rank() as u32 + step) as f32]);
                let got = ctx.recv(prev, step);
                got[0] as u32
            });
            let expect: Vec<u32> = (0..4u32).map(|r| (r + 3) % 4 + step).collect();
            assert_eq!(results, expect);
        }
        let counters = session.run_step(|ctx| ctx.counters().clone());
        for c in &counters {
            assert_eq!(c.sent_messages, 10);
        }
    }

    #[test]
    fn session_submit_overlaps_caller_work() {
        // The pipelining hook: submit a step, do main-thread work while the
        // ranks run, then collect. Results land in caller-owned slots.
        let mut session = CommSession::new(3);
        let slots: Vec<Mutex<f32>> = (0..3).map(|_| Mutex::new(0.0)).collect();
        let step = |ctx: &mut RankCtx| {
            let mut buf = vec![ctx.rank() as f32];
            ctx.allreduce_sum(&mut buf);
            *slots[ctx.rank()].lock().unwrap() = buf[0];
        };
        // SAFETY: `step` and `slots` outlive the collect below; one step.
        unsafe { session.submit_step(&step) };
        let main_thread_work: f32 = (0..100).map(|i| i as f32).sum();
        session.collect_step();
        assert_eq!(main_thread_work, 4950.0);
        for s in &slots {
            assert_eq!(*s.lock().unwrap(), 3.0);
        }
    }

    #[test]
    fn session_panic_propagates_and_poisons() {
        let mut session = CommSession::new(1);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            session.run_step(|_ctx| panic!("step exploded"));
        }));
        assert!(caught.is_err(), "rank panic must propagate");
        let refused = catch_unwind(AssertUnwindSafe(|| {
            session.run_step(|ctx| ctx.rank());
        }));
        assert!(refused.is_err(), "poisoned session must refuse steps");
    }

    #[test]
    fn session_collectives_work_across_steps() {
        let mut session = CommSession::new(5);
        for round in 1..=3 {
            let results = session.run_step(|ctx| {
                let mut buf = vec![round as f32];
                ctx.allreduce_sum(&mut buf);
                buf[0]
            });
            for r in &results {
                assert_eq!(*r, 5.0 * round as f32);
            }
        }
    }
}
