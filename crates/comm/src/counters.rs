//! Per-rank communication counters and phase timers.
//!
//! These counters are the runtime-side ground truth for Table 2's volume and
//! message metrics; the `pargcn-core` tests assert they agree exactly with
//! the static predictions of `pargcn_partition::metrics`.

/// Message/byte counts and blocking-time accounting for one rank.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CommCounters {
    /// Point-to-point messages sent via `isend`.
    pub sent_messages: u64,
    /// Point-to-point payload bytes sent via `isend`.
    pub sent_bytes: u64,
    /// Point-to-point messages received.
    pub recv_messages: u64,
    /// Point-to-point payload bytes received.
    pub recv_bytes: u64,
    /// Messages attributed to collectives (allreduce/broadcast).
    pub collective_messages: u64,
    /// Bytes attributed to collectives.
    pub collective_bytes: u64,
    /// Heap allocations performed *inside* the runtime's hot-path methods
    /// (`acquire`/`isend`/`recv*`/`release`/`allreduce_sum`/`broadcast`)
    /// on this rank's thread. Only counts when
    /// `pargcn_util::allocmeter::CountingAllocator` is the installed
    /// global allocator (test binaries opt in); always 0 otherwise. The
    /// steady-state contract — warm pools make every message round-trip
    /// allocation-free — is asserted on this field.
    pub comm_path_allocs: u64,
    /// Wall seconds this rank spent blocked in receives and collectives.
    pub comm_seconds: f64,
    /// Wall seconds this rank spent *not* blocked on communication — local
    /// kernel work (SpMM/DMM/activations), regardless of how many pool
    /// threads executed it. Recorded by the trainers as
    /// `epoch wall time − comm_seconds`, so `comm + compute` for a rank is
    /// its end-to-end wall time and the compute/comm split of fig4a is
    /// measurable per rank.
    pub compute_seconds: f64,
    /// Floating-point operations this rank's kernels performed, counted
    /// from operand shapes at dispatch (2·m·k·n per GEMM, 2·nnz·d per
    /// SpMM) by `pargcn_matrix::ComputeCtx` and drained here by the
    /// trainers. `compute_flops / compute_seconds` is the rank's
    /// sustained arithmetic rate, reported as GFLOP/s by the bench
    /// harness.
    pub compute_flops: u64,
}

impl CommCounters {
    /// Element-wise sum; used to aggregate counters across ranks.
    pub fn merged(ranks: &[CommCounters]) -> CommCounters {
        let mut out = CommCounters::default();
        for c in ranks {
            out.sent_messages += c.sent_messages;
            out.sent_bytes += c.sent_bytes;
            out.recv_messages += c.recv_messages;
            out.recv_bytes += c.recv_bytes;
            out.collective_messages += c.collective_messages;
            out.collective_bytes += c.collective_bytes;
            out.comm_path_allocs += c.comm_path_allocs;
            out.comm_seconds += c.comm_seconds;
            out.compute_seconds += c.compute_seconds;
            out.compute_flops += c.compute_flops;
        }
        out
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = CommCounters::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_fields() {
        let a = CommCounters {
            sent_messages: 2,
            sent_bytes: 100,
            ..Default::default()
        };
        let b = CommCounters {
            sent_messages: 3,
            recv_bytes: 50,
            ..Default::default()
        };
        let m = CommCounters::merged(&[a, b]);
        assert_eq!(m.sent_messages, 5);
        assert_eq!(m.sent_bytes, 100);
        assert_eq!(m.recv_bytes, 50);
        assert_eq!(m.compute_seconds, 0.0);
    }

    #[test]
    fn reset_zeroes() {
        let mut c = CommCounters {
            sent_messages: 9,
            comm_seconds: 1.5,
            ..Default::default()
        };
        c.reset();
        assert_eq!(c, CommCounters::default());
    }
}
