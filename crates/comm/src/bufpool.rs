//! Per-rank free lists of message payload buffers.
//!
//! MPI programs avoid per-message allocation with persistent requests:
//! the payload buffer outlives any single send and is reused round after
//! round. [`BufPool`] reproduces that shape for the thread-based runtime.
//! Every rank keeps one free list *per destination rank*: a buffer
//! acquired for messages to rank `d` comes back (via the runtime's return
//! channel, see `RankCtx::release`) into the same `d`-indexed list.
//!
//! Keying the lists by destination is what makes the steady state
//! allocation-free and *provably* so: within one training exchange a
//! (sender → destination) pair has at most one message in flight, and at
//! most one buffer from the previous layer still travelling back, so two
//! resident buffers per destination cover the demand — no cross-peer
//! stealing can leave a destination short. The trainer pre-warms exactly
//! that (`RankCtx::prewarm`), and the counting-allocator test pins the
//! resulting zero-allocation steady state down.
//!
//! Within a destination's list, `acquire` picks the smallest buffer whose
//! capacity already fits (so small control payloads don't burn the big
//! row-block buffers); on a miss it grows the largest free buffer rather
//! than allocating a fresh one, so the pool converges to the peak working
//! set instead of accreting every size ever requested.

/// Occupancy and hit-rate statistics for one rank's [`BufPool`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BufPoolStats {
    /// Total `acquire` calls.
    pub acquires: u64,
    /// `acquire` calls served entirely from a resident buffer (no heap
    /// allocation and no growth).
    pub hits: u64,
    /// Buffers currently resident in the free lists.
    pub free_buffers: usize,
}

/// Destination-keyed free lists of `Vec<f32>` payload buffers.
pub struct BufPool {
    /// `free[d]` holds recycled buffers for messages to rank `d`.
    free: Vec<Vec<Vec<f32>>>,
    acquires: u64,
    hits: u64,
}

impl BufPool {
    /// An empty pool for a `p`-rank job.
    pub fn new(p: usize) -> Self {
        BufPool {
            free: vec![Vec::new(); p],
            acquires: 0,
            hits: 0,
        }
    }

    /// Takes a cleared buffer with `capacity >= len` for a message to
    /// rank `to`, recycling a resident buffer when one fits.
    pub fn acquire(&mut self, to: usize, len: usize) -> Vec<f32> {
        self.acquires += 1;
        let list = &mut self.free[to];
        // Smallest resident buffer that already fits.
        let mut pick: Option<usize> = None;
        for (i, b) in list.iter().enumerate() {
            if b.capacity() >= len && pick.is_none_or(|j| list[j].capacity() > b.capacity()) {
                pick = Some(i);
            }
        }
        if let Some(i) = pick {
            self.hits += 1;
            let mut b = list.swap_remove(i);
            b.clear();
            return b;
        }
        // Miss: grow the largest resident buffer (the pool converges on
        // the peak size) or allocate the first one for this destination.
        let mut largest: Option<usize> = None;
        for (i, b) in list.iter().enumerate() {
            if largest.is_none_or(|j| list[j].capacity() < b.capacity()) {
                largest = Some(i);
            }
        }
        match largest {
            Some(i) => {
                let mut b = list.swap_remove(i);
                b.clear();
                b.reserve_exact(len);
                b
            }
            None => Vec::with_capacity(len),
        }
    }

    /// Returns a buffer to the free list for destination `to`.
    pub fn put(&mut self, to: usize, mut buf: Vec<f32>) {
        buf.clear();
        self.free[to].push(buf);
    }

    /// Pre-allocates `count` buffers of capacity `len` for destination
    /// `to`, so later `acquire`s hit without touching the heap. The free
    /// list itself is over-reserved: at a scheduling-dependent peak every
    /// buffer ever created for `to` can be resident at once, and the
    /// list growing to hold them would itself be a heap allocation on
    /// the comm path.
    pub fn prewarm(&mut self, to: usize, count: usize, len: usize) {
        self.free[to].reserve(2 * count + 2);
        for _ in 0..count {
            self.free[to].push(Vec::with_capacity(len));
        }
    }

    /// Idempotent prewarm: tops the pool up until `count` resident
    /// buffers for `to` fit `len` floats, growing too-small resident
    /// buffers (largest first — fewest bytes to add) before allocating
    /// fresh ones. Once the pool has seen the high-water `(count, len)`,
    /// further calls are no-ops, so callers with a *stream* of demands
    /// of varying size (the mini-batch engine: one plan per batch) can
    /// re-ensure per step and keep the analytic steady-state guarantee
    /// without accreting buffers the way repeated `prewarm` would.
    pub fn ensure(&mut self, to: usize, count: usize, len: usize) {
        self.free[to].reserve(2 * count + 2);
        let fitting = self.free[to].iter().filter(|b| b.capacity() >= len).count();
        for _ in fitting..count {
            let largest_small = (0..self.free[to].len())
                .filter(|&i| self.free[to][i].capacity() < len)
                .max_by_key(|&i| self.free[to][i].capacity());
            match largest_small {
                Some(i) => self.free[to][i].reserve_exact(len),
                None => self.free[to].push(Vec::with_capacity(len)),
            }
        }
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> BufPoolStats {
        BufPoolStats {
            acquires: self.acquires,
            hits: self.hits,
            free_buffers: self.free.iter().map(Vec::len).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_prefers_smallest_fitting_buffer() {
        let mut pool = BufPool::new(1);
        pool.prewarm(0, 1, 100);
        pool.prewarm(0, 1, 8);
        let b = pool.acquire(0, 4);
        assert_eq!(b.capacity(), 8);
        let big = pool.acquire(0, 50);
        assert_eq!(big.capacity(), 100);
        assert_eq!(pool.stats().hits, 2);
    }

    #[test]
    fn miss_grows_largest_instead_of_accreting() {
        let mut pool = BufPool::new(1);
        pool.prewarm(0, 1, 4);
        let b = pool.acquire(0, 64);
        assert!(b.capacity() >= 64);
        assert_eq!(pool.stats().hits, 0);
        pool.put(0, b);
        // The grown buffer now serves both sizes; nothing new resides.
        assert_eq!(pool.stats().free_buffers, 1);
        let b = pool.acquire(0, 64);
        assert!(b.capacity() >= 64);
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn destinations_do_not_share_buffers() {
        let mut pool = BufPool::new(2);
        pool.prewarm(1, 1, 32);
        let b = pool.acquire(0, 16);
        // Destination 0 had nothing resident: fresh allocation.
        assert_eq!(pool.stats().hits, 0);
        pool.put(0, b);
        let b = pool.acquire(0, 16);
        assert_eq!(pool.stats().hits, 1);
        drop(b);
        assert_eq!(pool.stats().free_buffers, 1);
    }

    #[test]
    fn ensure_tops_up_without_accreting() {
        let mut pool = BufPool::new(1);
        // From empty: allocates exactly `count` fresh buffers.
        pool.ensure(0, 2, 16);
        assert_eq!(pool.stats().free_buffers, 2);
        // Re-ensuring the same or a smaller demand is a no-op.
        pool.ensure(0, 2, 16);
        pool.ensure(0, 2, 4);
        pool.ensure(0, 1, 16);
        assert_eq!(pool.stats().free_buffers, 2);
        // A larger size grows the resident buffers in place.
        pool.ensure(0, 2, 64);
        assert_eq!(pool.stats().free_buffers, 2);
        let a = pool.acquire(0, 64);
        let b = pool.acquire(0, 64);
        assert!(a.capacity() >= 64 && b.capacity() >= 64);
        assert_eq!(pool.stats().hits, 2);
        pool.put(0, a);
        pool.put(0, b);
        // A larger count accretes only the shortfall.
        pool.ensure(0, 3, 64);
        assert_eq!(pool.stats().free_buffers, 3);
    }

    #[test]
    fn put_clears_contents() {
        let mut pool = BufPool::new(1);
        pool.put(0, vec![1.0, 2.0, 3.0]);
        let b = pool.acquire(0, 2);
        assert!(b.is_empty());
        assert!(b.capacity() >= 2);
    }
}
