//! α–β–γ machine model: composes exact per-rank FLOP and message/byte
//! counts into epoch times at processor counts far beyond one machine.
//!
//! The substitution argument (DESIGN.md §1): the paper's headline results
//! are *shapes* — who wins, where the comm/comp crossover falls, how the
//! scaling curve bends. Those are functions of per-rank work and traffic
//! (which this reproduction measures exactly) composed through a standard
//! LogP-style cost model:
//!
//! * each message costs `α` (latency) plus `β` per byte (bandwidth);
//! * each floating-point operation costs `γ`;
//! * a phase's time is the max over ranks (bulk-synchronous bound);
//! * with `overlap`, point-to-point transfers hide behind the local-block
//!   multiply, as Algorithm 1's non-blocking sends are designed to do; the
//!   NCCL/GPU profile disables overlap ("with the NCCL backend these are
//!   not as effective as with MPI", §5).

/// Machine profile for the cost model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineProfile {
    /// Per-message latency, seconds.
    pub alpha: f64,
    /// Per-byte transfer cost, seconds (inverse effective bandwidth).
    pub beta: f64,
    /// Per-FLOP cost of the memory-bound SpMM, seconds. Sparse kernels run
    /// far below peak (irregular gathers), so this is 1–2 GFLOP/s-class on
    /// CPUs.
    pub gamma: f64,
    /// Per-FLOP cost of dense DMM, seconds. Dense kernels are compute-bound
    /// and 10–30× faster per FLOP than SpMM — the reason the paper's
    /// nnz-only vertex weights balance total compute in practice.
    pub gamma_dmm: f64,
    /// Whether point-to-point transfers overlap the local-block compute.
    pub overlap: bool,
    /// Name for report output.
    pub name: &'static str,
}

impl MachineProfile {
    /// CPU cluster: MPI over 100 Gbit/s InfiniBand, Xeon 8268 cores.
    /// Effective per-core sparse throughput ~2 GFLOP/s; rendezvous latency
    /// ~3 µs; per-core effective bandwidth ~2 GB/s. Non-blocking MPI
    /// overlaps transfers with compute.
    pub fn cpu_cluster() -> Self {
        Self {
            alpha: 3e-6,
            beta: 5e-10,
            gamma: 5e-10,
            gamma_dmm: 3e-11,
            overlap: true,
            name: "cpu",
        }
    }

    /// GPU cluster: NCCL over the same fabric, A100 compute. Effective
    /// sparse throughput ~100 GFLOP/s (memory-bound SpMM), but NCCL's
    /// kernel-launch/rendezvous latency is tens of microseconds and the
    /// PyTorch+NCCL pipeline cannot overlap with compute.
    pub fn gpu_cluster() -> Self {
        Self {
            alpha: 4e-5,
            beta: 4e-10,
            gamma: 1e-11,
            gamma_dmm: 1e-12,
            overlap: false,
            name: "gpu",
        }
    }

    /// Single-node DGL baseline machine: the paper's speedup denominators
    /// come from DGL (PyTorch backend) on a 16-core 3.9 GHz Xeon with
    /// MKL-threaded kernels — a whole multi-core server, not one core. An
    /// effective ~40 GFLOP/s for the SpMM/DMM mix models that, and is what
    /// keeps the Table 2 speedups in the paper's 5–30× band instead of the
    /// ~p× a one-core baseline would give.
    pub fn single_node() -> Self {
        Self {
            alpha: 0.0,
            beta: 0.0,
            gamma: 2.5e-11,
            gamma_dmm: 3e-12,
            overlap: false,
            name: "single",
        }
    }

    /// Time to transfer `messages` messages totalling `bytes`.
    #[inline]
    pub fn transfer_time(&self, messages: u64, bytes: u64) -> f64 {
        self.alpha * messages as f64 + self.beta * bytes as f64
    }

    /// Time to execute `flops` SpMM floating-point operations.
    #[inline]
    pub fn compute_time(&self, flops: f64) -> f64 {
        self.gamma * flops
    }

    /// Time to execute `flops` dense-matrix floating-point operations.
    #[inline]
    pub fn dmm_time(&self, flops: f64) -> f64 {
        self.gamma_dmm * flops
    }

    /// Log-tree allreduce time for a buffer of `bytes` over `p` ranks.
    /// Since the binomial-tree rewrite of `RankCtx::allreduce_sum` this is
    /// also the shape the runtime executes (⌈log₂ p⌉ rounds, 2(p−1)
    /// messages), not just a model of an idealized MPI implementation.
    pub fn allreduce_time(&self, bytes: u64, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let rounds = (p as f64).log2().ceil();
        rounds * (self.alpha + self.beta * bytes as f64)
    }

    /// Log-tree broadcast time for `bytes` over `p` ranks (matches the
    /// runtime's binomial-tree `RankCtx::broadcast`: p−1 messages in
    /// ⌈log₂ p⌉ rounds).
    pub fn broadcast_time(&self, bytes: u64, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let rounds = (p as f64).log2().ceil();
        rounds * (self.alpha + self.beta * bytes as f64)
    }
}

/// Exact per-rank cost of one communication/computation phase (one SpMM
/// layer sweep in feedforward or backpropagation).
#[derive(Clone, Copy, Debug, Default)]
pub struct RankPhaseCost {
    /// FLOPs computable before any remote data is needed (the local block
    /// multiply `Aₘ·Hₘ·W` of Algorithm 1 line 6).
    pub local_flops: f64,
    /// SpMM FLOPs depending on received rows (lines 8–9).
    pub remote_flops: f64,
    /// Dense-matrix FLOPs of the phase (applying the replicated `W`).
    pub dmm_flops: f64,
    /// Point-to-point messages this rank sends in the phase.
    pub sent_messages: u64,
    /// Point-to-point bytes this rank sends in the phase.
    pub sent_bytes: u64,
    /// Point-to-point messages this rank receives.
    pub recv_messages: u64,
    /// Point-to-point bytes this rank receives.
    pub recv_bytes: u64,
}

/// Time and breakdown of one phase: the bulk-synchronous max over ranks.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseTime {
    pub total: f64,
    /// Portion attributable to communication (after overlap).
    pub comm: f64,
    /// Portion attributable to computation.
    pub comp: f64,
}

/// Evaluates one phase under `profile`. Per rank:
///
/// * comm time = max(send cost, receive cost) — full-duplex NICs;
/// * with overlap: `max(local compute, comm) + remote compute`;
/// * without:     `local compute + comm + remote compute`.
///
/// The phase completes when the slowest rank does.
pub fn phase_time(profile: &MachineProfile, ranks: &[RankPhaseCost]) -> PhaseTime {
    let mut worst = PhaseTime::default();
    for r in ranks {
        let send = profile.transfer_time(r.sent_messages, r.sent_bytes);
        let recv = profile.transfer_time(r.recv_messages, r.recv_bytes);
        let comm = send.max(recv);
        let local = profile.compute_time(r.local_flops);
        let remote = profile.compute_time(r.remote_flops) + profile.dmm_time(r.dmm_flops);
        let (total, comm_part) = if profile.overlap {
            let first = local.max(comm);
            (first + remote, (comm - local).max(0.0))
        } else {
            (local + comm + remote, comm)
        };
        if total > worst.total {
            worst = PhaseTime {
                total,
                comm: comm_part,
                comp: total - comm_part,
            };
        }
    }
    worst
}

/// Sums phase times into an epoch, adding collective costs.
pub fn epoch_time(phases: &[PhaseTime], collectives: f64) -> PhaseTime {
    let mut out = PhaseTime {
        total: collectives,
        comm: collectives,
        comp: 0.0,
    };
    for ph in phases {
        out.total += ph.total;
        out.comm += ph.comm;
        out.comp += ph.comp;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_alpha_beta_linear() {
        let m = MachineProfile {
            alpha: 1e-6,
            beta: 1e-9,
            gamma: 0.0,
            gamma_dmm: 0.0,
            overlap: false,
            name: "t",
        };
        let t = m.transfer_time(10, 1_000_000);
        assert!((t - (1e-5 + 1e-3)).abs() < 1e-12);
    }

    #[test]
    fn overlap_hides_communication_behind_local_compute() {
        let m = MachineProfile {
            alpha: 0.0,
            beta: 1e-9,
            gamma: 1e-9,
            gamma_dmm: 1e-9,
            overlap: true,
            name: "o",
        };
        let cost = RankPhaseCost {
            local_flops: 2000.0,
            remote_flops: 100.0,
            sent_bytes: 1000,
            recv_bytes: 500,
            ..Default::default()
        };
        let t = phase_time(&m, &[cost]);
        // comm (1 µs) < local compute (2 µs): fully hidden.
        assert!((t.total - 2.1e-6).abs() < 1e-12, "{t:?}");
        assert_eq!(t.comm, 0.0);
    }

    #[test]
    fn no_overlap_serializes() {
        let m = MachineProfile {
            alpha: 0.0,
            beta: 1e-9,
            gamma: 1e-9,
            gamma_dmm: 1e-9,
            overlap: false,
            name: "s",
        };
        let cost = RankPhaseCost {
            local_flops: 2000.0,
            remote_flops: 100.0,
            sent_bytes: 1000,
            ..Default::default()
        };
        let t = phase_time(&m, &[cost]);
        assert!((t.total - 3.1e-6).abs() < 1e-12, "{t:?}");
        assert!((t.comm - 1.0e-6).abs() < 1e-12);
    }

    #[test]
    fn slowest_rank_bounds_the_phase() {
        let m = MachineProfile::cpu_cluster();
        let fast = RankPhaseCost {
            local_flops: 1e6,
            ..Default::default()
        };
        let slow = RankPhaseCost {
            local_flops: 9e6,
            ..Default::default()
        };
        let t = phase_time(&m, &[fast, slow]);
        assert!((t.total - m.compute_time(9e6)).abs() < 1e-15);
    }

    #[test]
    fn allreduce_scales_logarithmically() {
        let m = MachineProfile::cpu_cluster();
        let t8 = m.allreduce_time(1024, 8);
        let t64 = m.allreduce_time(1024, 64);
        assert!((t64 / t8 - 2.0).abs() < 1e-9, "log2(64)/log2(8) = 2");
        assert_eq!(m.allreduce_time(1024, 1), 0.0);
    }

    #[test]
    fn gpu_profile_has_higher_latency_lower_gamma() {
        let cpu = MachineProfile::cpu_cluster();
        let gpu = MachineProfile::gpu_cluster();
        assert!(gpu.alpha > cpu.alpha);
        assert!(gpu.gamma < cpu.gamma);
        assert!(!gpu.overlap && cpu.overlap);
    }

    #[test]
    fn epoch_time_accumulates() {
        let phases = [
            PhaseTime {
                total: 1.0,
                comm: 0.4,
                comp: 0.6,
            },
            PhaseTime {
                total: 2.0,
                comm: 0.5,
                comp: 1.5,
            },
        ];
        let e = epoch_time(&phases, 0.25);
        assert!((e.total - 3.25).abs() < 1e-12);
        assert!((e.comm - 1.15).abs() < 1e-12);
        assert!((e.comp - 2.1).abs() < 1e-12);
    }
}
