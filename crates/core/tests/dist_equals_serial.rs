//! The correctness contract of the whole paper reproduction: distributed
//! full-batch training must reproduce the serial trainer's losses,
//! parameters, and predictions — for every partitioning method, processor
//! count, graph family, directedness, and layer depth — up to f32
//! reassociation. The same contract covers the CAGNET broadcast baseline,
//! which computes the identical math with a different comm pattern.

use pargcn_core::baselines::cagnet;
use pargcn_core::dist::train_full_batch;
use pargcn_core::model::{GcnConfig, LayerOrder};
use pargcn_core::serial::SerialTrainer;
use pargcn_graph::gen::{community, er, grid, sbm};
use pargcn_graph::Graph;
use pargcn_matrix::Dense;
use pargcn_partition::stochastic::Sampler;
use pargcn_partition::{partition_rows, Method, Partition};
use pargcn_util::rng::SeedableRng;
use pargcn_util::rng::StdRng;

const TOL: f32 = 2e-3;

/// Runs both trainers and asserts agreement.
fn assert_equivalent(
    graph: &Graph,
    config: &GcnConfig,
    part: &Partition,
    epochs: usize,
    data_seed: u64,
) {
    let mut rng = StdRng::seed_from_u64(data_seed);
    let h0 = Dense::random(graph.n(), config.dims[0], &mut rng);
    let labels: Vec<u32> = (0..graph.n())
        .map(|i| (i % config.dims[config.layers()]) as u32)
        .collect();
    let mask: Vec<bool> = (0..graph.n()).map(|i| i % 3 != 2).collect();

    let mut serial = SerialTrainer::new(graph, config.clone(), 42);
    let mut serial_losses = Vec::new();
    for _ in 0..epochs {
        serial_losses.push(serial.train_epoch(&h0, &labels, &mask));
    }
    let serial_pred = serial.predict(&h0);

    let out = train_full_batch(graph, &h0, &labels, &mask, part, config, epochs, 42);

    for (e, (s, d)) in serial_losses.iter().zip(&out.losses).enumerate() {
        assert!(
            (s - d).abs() < 1e-3 * (1.0 + s.abs()),
            "epoch {e} loss diverged: serial {s} vs dist {d} (p={})",
            part.p()
        );
    }
    assert!(
        out.predictions.approx_eq(&serial_pred, TOL),
        "predictions diverged (p={}, max diff {})",
        part.p(),
        out.predictions.max_abs_diff(&serial_pred)
    );
    for (k, (sw, dw)) in serial
        .params
        .weights
        .iter()
        .zip(&out.params.weights)
        .enumerate()
    {
        assert!(
            sw.approx_eq(dw, TOL),
            "W{k} diverged (max diff {})",
            sw.max_abs_diff(dw)
        );
    }
}

#[test]
fn all_partitioners_match_serial_undirected() {
    let g = community::copurchase(180, 6.0, false, 1);
    let a = g.normalized_adjacency();
    let config = GcnConfig::two_layer(6, 8, 3);
    for method in [
        Method::Rp,
        Method::Gp,
        Method::Hp,
        Method::Shp {
            sampler: Sampler::UniformVertex { batch_size: 40 },
            batches: 3,
        },
    ] {
        let part = partition_rows(&g, &a, method, 4, 0.1, 9);
        assert_equivalent(&g, &config, &part, 4, 7);
    }
}

#[test]
fn directed_graph_matches_serial() {
    // Directed: backprop must use the transpose plan.
    let g = er::generate(120, 600, true, 5);
    let a = g.normalized_adjacency();
    let config = GcnConfig::two_layer(5, 7, 2);
    let part = partition_rows(&g, &a, Method::Hp, 3, 0.1, 3);
    assert_equivalent(&g, &config, &part, 4, 11);
}

#[test]
fn deeper_networks_match_serial() {
    let g = grid::road_network(150, 2);
    let a = g.normalized_adjacency();
    let config = GcnConfig {
        dims: vec![4, 6, 6, 6, 3],
        learning_rate: 0.05,
        order: LayerOrder::SpmmFirst,
        optimizer: pargcn_core::optim::Optimizer::Sgd,
    };
    let part = partition_rows(&g, &a, Method::Hp, 5, 0.1, 1);
    assert_equivalent(&g, &config, &part, 3, 13);
}

#[test]
fn dmm_first_order_matches_serial() {
    // §4.4: the GAT-style ordering uses the identical comm plan.
    let g = community::copurchase(140, 5.0, false, 3);
    let a = g.normalized_adjacency();
    let config = GcnConfig {
        dims: vec![6, 5, 3],
        learning_rate: 0.1,
        order: LayerOrder::DmmFirst,
        optimizer: pargcn_core::optim::Optimizer::Sgd,
    };
    let part = partition_rows(&g, &a, Method::Gp, 4, 0.1, 5);
    assert_equivalent(&g, &config, &part, 3, 17);
}

#[test]
fn many_ranks_exceeding_typical_core_count() {
    // Functional correctness at p well beyond physical cores.
    let g = er::generate(200, 1000, false, 8);
    let a = g.normalized_adjacency();
    let config = GcnConfig::two_layer(4, 6, 2);
    let part = partition_rows(&g, &a, Method::Rp, 32, 0.1, 2);
    assert_equivalent(&g, &config, &part, 2, 19);
}

#[test]
fn single_rank_distributed_is_serial() {
    let g = grid::road_network(80, 4);
    let config = GcnConfig::two_layer(3, 5, 2);
    let part = Partition::trivial(g.n());
    assert_equivalent(&g, &config, &part, 5, 23);
}

#[test]
fn cagnet_matches_serial_and_p2p() {
    let g = community::copurchase(150, 6.0, false, 6);
    let a = g.normalized_adjacency();
    let config = GcnConfig::two_layer(5, 6, 3);
    let part = partition_rows(&g, &a, Method::Hp, 4, 0.1, 4);

    let mut rng = StdRng::seed_from_u64(29);
    let h0 = Dense::random(g.n(), 5, &mut rng);
    let labels: Vec<u32> = (0..g.n()).map(|i| (i % 3) as u32).collect();
    let mask = vec![true; g.n()];

    let p2p = train_full_batch(&g, &h0, &labels, &mask, &part, &config, 3, 42);
    let bc = cagnet::train_full_batch(&g, &h0, &labels, &mask, &part, &config, 3, 42);
    assert!(
        p2p.predictions.approx_eq(&bc.predictions, TOL),
        "CAGNET diverged from P2P: max diff {}",
        p2p.predictions.max_abs_diff(&bc.predictions)
    );
    for (s, d) in p2p.losses.iter().zip(&bc.losses) {
        assert!((s - d).abs() < 1e-3 * (1.0 + s.abs()));
    }

    let mut serial = SerialTrainer::new(&g, config.clone(), 42);
    for _ in 0..3 {
        serial.train_epoch(&h0, &labels, &mask);
    }
    assert!(bc.predictions.approx_eq(&serial.predict(&h0), TOL));
}

#[test]
fn cagnet_directed_matches_serial() {
    let g = er::generate(90, 400, true, 9);
    let config = GcnConfig::two_layer(4, 5, 2);
    let part = pargcn_partition::random::partition(g.n(), 3, 6);

    let mut rng = StdRng::seed_from_u64(31);
    let h0 = Dense::random(g.n(), 4, &mut rng);
    let labels: Vec<u32> = (0..g.n()).map(|i| (i % 2) as u32).collect();
    let mask = vec![true; g.n()];

    let bc = cagnet::train_full_batch(&g, &h0, &labels, &mask, &part, &config, 3, 42);
    let mut serial = SerialTrainer::new(&g, config.clone(), 42);
    for _ in 0..3 {
        serial.train_epoch(&h0, &labels, &mask);
    }
    assert!(bc.predictions.approx_eq(&serial.predict(&h0), TOL));
}

#[test]
fn counters_match_static_prediction() {
    // The runtime's measured bytes = plan volume × row width × 4 bytes ×
    // epochs × sweeps — exact, not approximate.
    let g = community::copurchase(160, 6.0, false, 2);
    let a = g.normalized_adjacency();
    let config = GcnConfig {
        dims: vec![8, 8, 4],
        learning_rate: 0.1,
        order: LayerOrder::SpmmFirst,
        optimizer: pargcn_core::optim::Optimizer::Sgd,
    };
    let part = partition_rows(&g, &a, Method::Hp, 4, 0.1, 8);
    let plan = pargcn_core::CommPlan::build(&a, &part);
    let epochs = 2;

    let mut rng = StdRng::seed_from_u64(37);
    let h0 = Dense::random(g.n(), 8, &mut rng);
    let labels: Vec<u32> = (0..g.n()).map(|i| (i % 4) as u32).collect();
    let mask = vec![true; g.n()];
    let out = train_full_batch(&g, &h0, &labels, &mask, &part, &config, epochs, 1);

    // Per epoch: feedforward sends d_{k-1}-wide rows per layer, backprop
    // d_k-wide rows; plus one extra forward pass for final predictions.
    let vol = plan.total_volume_rows();
    let per_epoch_bytes: u64 = vol * (8 + 8) * 4 + vol * (8 + 4) * 4;
    let final_forward: u64 = vol * (8 + 8) * 4;
    let expected = per_epoch_bytes * epochs as u64 + final_forward;
    let measured: u64 = out.counters.iter().map(|c| c.sent_bytes).sum();
    assert_eq!(measured, expected);

    let per_epoch_msgs = plan.total_messages() * 2 /* layers */ * 2 /* directions */;
    let expected_msgs = per_epoch_msgs * epochs as u64 + plan.total_messages() * 2;
    let measured_msgs: u64 = out.counters.iter().map(|c| c.sent_messages).sum();
    assert_eq!(measured_msgs, expected_msgs);
}

#[test]
fn accuracy_unaffected_by_parallelism_fig4c() {
    // Fig. 4c in miniature: train the Cora-like SBM serially and at several
    // processor counts; accuracies agree and beat chance.
    let d = sbm::generate(
        sbm::SbmParams {
            n: 350,
            classes: 5,
            features: 12,
            feature_separation: 1.6,
            ..Default::default()
        },
        13,
    );
    let config = GcnConfig::two_layer(12, 16, 5);
    let test_mask: Vec<bool> = d.train_mask.iter().map(|&m| !m).collect();

    let mut serial = SerialTrainer::new(&d.graph, config.clone(), 3);
    for _ in 0..30 {
        serial.train_epoch(&d.features, &d.labels, &d.train_mask);
    }
    let serial_acc =
        pargcn_core::loss::accuracy(&serial.predict(&d.features), &d.labels, &test_mask);
    assert!(serial_acc > 0.5, "serial accuracy {serial_acc} too low");

    let a = d.graph.normalized_adjacency();
    for p in [2usize, 5, 9] {
        let part = partition_rows(&d.graph, &a, Method::Hp, p, 0.1, 21);
        let out = train_full_batch(
            &d.graph,
            &d.features,
            &d.labels,
            &d.train_mask,
            &part,
            &config,
            30,
            3,
        );
        let acc = pargcn_core::loss::accuracy(&out.predictions, &d.labels, &test_mask);
        assert!(
            (acc - serial_acc).abs() < 0.05,
            "p={p}: accuracy {acc} deviates from serial {serial_acc}"
        );
    }
}

#[test]
fn adam_optimizer_matches_serial() {
    // The optimizer state is replicated like the parameters; Adam's
    // nonlinear update must stay in lock-step across ranks and match the
    // serial trainer exactly.
    let g = community::copurchase(160, 6.0, false, 12);
    let a = g.normalized_adjacency();
    let mut config = GcnConfig::two_layer(6, 8, 3);
    config.learning_rate = 0.01;
    config.optimizer = pargcn_core::optim::Optimizer::adam();
    let part = partition_rows(&g, &a, Method::Hp, 4, 0.1, 6);
    assert_equivalent(&g, &config, &part, 5, 31);
}

#[test]
fn adam_converges_on_learnable_data() {
    let d = sbm::generate(
        sbm::SbmParams {
            n: 260,
            classes: 4,
            features: 8,
            feature_separation: 1.4,
            ..Default::default()
        },
        19,
    );
    let mut config = GcnConfig::two_layer(8, 12, 4);
    config.learning_rate = 0.02;
    config.optimizer = pargcn_core::optim::Optimizer::adam();
    let a = d.graph.normalized_adjacency();
    let part = partition_rows(&d.graph, &a, Method::Hp, 3, 0.1, 2);
    let out = train_full_batch(
        &d.graph,
        &d.features,
        &d.labels,
        &d.train_mask,
        &part,
        &config,
        25,
        4,
    );
    assert!(
        out.losses.last().unwrap() < &(out.losses[0] * 0.7),
        "Adam failed to converge: {:?} → {:?}",
        out.losses[0],
        out.losses.last().unwrap()
    );
}

#[test]
fn rank_with_no_labelled_vertices_is_fine() {
    // All labels concentrated on one rank's rows: other ranks contribute
    // zero loss/gradient but must stay in the collective lock-step.
    let g = community::copurchase(120, 6.0, false, 21);
    let a = g.normalized_adjacency();
    let config = GcnConfig::two_layer(4, 6, 2);
    let part = partition_rows(&g, &a, Method::Gp, 4, 0.1, 7);
    // Mask only the vertices of part 0.
    let mask: Vec<bool> = (0..g.n()).map(|v| part.part_of(v) == 0).collect();
    assert!(mask.iter().any(|&m| m));
    let mut rng = StdRng::seed_from_u64(41);
    let h0 = Dense::random(g.n(), 4, &mut rng);
    let labels: Vec<u32> = (0..g.n()).map(|i| (i % 2) as u32).collect();

    let out = train_full_batch(&g, &h0, &labels, &mask, &part, &config, 3, 9);
    let mut serial = SerialTrainer::new(&g, config, 9);
    for (e, d) in out.losses.iter().enumerate() {
        let s = serial.train_epoch(&h0, &labels, &mask);
        assert!(
            (s - d).abs() < 1e-3 * (1.0 + s.abs()),
            "epoch {e}: {s} vs {d}"
        );
    }
}

#[test]
fn empty_rank_participates_correctly() {
    // A partition with an empty part: that rank owns no rows, sends and
    // receives nothing in the SpMM, but still joins every allreduce.
    let g = er::generate(60, 300, false, 33);
    let mut assignment: Vec<u32> = (0..60).map(|i| (i % 3) as u32).collect();
    for a in assignment.iter_mut() {
        if *a == 2 {
            *a = 0; // part 2 emptied
        }
    }
    let part = Partition::new(assignment, 3);
    let config = GcnConfig::two_layer(4, 5, 2);
    assert_equivalent(&g, &config, &part, 3, 43);
}
