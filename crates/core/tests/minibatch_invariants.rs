//! Invariants of the mini-batch training path (§4.3.3's workload):
//! a full-cover batch reduces to a full-batch step, batch volumes are
//! consistent with the plan machinery, and parameters flow across batches.

use pargcn_core::minibatch;
use pargcn_core::serial::SerialTrainer;
use pargcn_core::GcnConfig;
use pargcn_graph::gen::community;
use pargcn_matrix::Dense;
use pargcn_partition::stochastic::{sample_batches, Sampler};
use pargcn_partition::{partition_rows, Method, Partition};
use pargcn_util::rng::SeedableRng;
use pargcn_util::rng::StdRng;

fn setup(n: usize, seed: u64) -> (pargcn_graph::Graph, Dense, Vec<u32>, Vec<bool>) {
    let g = community::copurchase(n, 6.0, false, seed);
    let mut rng = StdRng::seed_from_u64(seed + 1);
    let h0 = Dense::random(n, 6, &mut rng);
    let labels: Vec<u32> = (0..n).map(|i| (i % 3) as u32).collect();
    let mask = vec![true; n];
    (g, h0, labels, mask)
}

/// A single "mini-batch" containing every vertex (in id order) is exactly a
/// full-batch step: same loss, same parameters as the serial trainer.
#[test]
fn full_cover_batch_is_full_batch_step() {
    let (g, h0, labels, mask) = setup(150, 3);
    let config = GcnConfig::two_layer(6, 8, 3);
    let part = partition_rows(&g, &g.normalized_adjacency(), Method::Hp, 3, 0.1, 1);
    let all: Vec<u32> = (0..150u32).collect();

    let out = minibatch::train(&g, &h0, &labels, &mask, &part, &config, &[all], 42);

    let mut serial = SerialTrainer::new(&g, config, 42);
    let serial_loss = serial.train_epoch(&h0, &labels, &mask);

    assert!((out.losses[0] - serial_loss).abs() < 1e-3 * (1.0 + serial_loss.abs()));
    for (a, b) in out.params.weights.iter().zip(&serial.params.weights) {
        assert!(
            a.approx_eq(b, 2e-3),
            "params diverged: {}",
            a.max_abs_diff(b)
        );
    }
}

/// The same batch sequence yields the same result regardless of how many
/// ranks execute it (the mini-batch path inherits the exactness contract).
#[test]
fn minibatch_result_independent_of_rank_count() {
    let (g, h0, labels, mask) = setup(200, 5);
    let config = GcnConfig::two_layer(6, 8, 3);
    let a = g.normalized_adjacency();
    let batches = sample_batches(&g, Sampler::UniformVertex { batch_size: 80 }, 6, 7);

    let p2 = partition_rows(&g, &a, Method::Rp, 2, 0.1, 1);
    let p5 = partition_rows(&g, &a, Method::Rp, 5, 0.1, 2);
    let out2 = minibatch::train(&g, &h0, &labels, &mask, &p2, &config, &batches, 9);
    let out5 = minibatch::train(&g, &h0, &labels, &mask, &p5, &config, &batches, 9);

    assert_eq!(out2.losses.len(), out5.losses.len());
    for (a, b) in out2.losses.iter().zip(&out5.losses) {
        assert!((a - b).abs() < 1e-3 * (1.0 + a.abs()), "{a} vs {b}");
    }
    for (a, b) in out2.params.weights.iter().zip(&out5.params.weights) {
        assert!(a.approx_eq(b, 5e-3));
    }
}

/// Mini-batch volume is bounded by the full-batch volume for the same
/// partition (a subgraph can only need fewer rows).
#[test]
fn batch_volume_bounded_by_full_volume() {
    let (g, ..) = setup(300, 11);
    let a = g.normalized_adjacency();
    let part = partition_rows(&g, &a, Method::Hp, 4, 0.1, 3);
    let full = pargcn_partition::metrics::spmm_comm_stats(&a, &part).total_rows;
    for batch in sample_batches(&g, Sampler::UniformVertex { batch_size: 100 }, 5, 13) {
        let v = minibatch::batch_comm_volume(&g, &batch, &part);
        assert!(
            v <= full,
            "batch volume {v} exceeds full-batch volume {full}"
        );
    }
}

/// Batches with no labelled vertices are skipped without touching
/// parameters.
#[test]
fn unlabelled_batches_are_skipped() {
    let (g, h0, labels, _) = setup(120, 17);
    let config = GcnConfig::two_layer(6, 8, 3);
    let part = Partition::trivial(120);
    // Mask labels only vertices ≥ 60; batch contains only vertices < 60.
    let mask: Vec<bool> = (0..120).map(|i| i >= 60).collect();
    let batch: Vec<u32> = (0..60u32).collect();
    let out = minibatch::train(&g, &h0, &labels, &mask, &part, &config, &[batch], 21);
    assert!(out.losses.is_empty(), "unlabelled batch should be skipped");
    let init = config.init_params(21);
    assert_eq!(
        out.params.max_abs_diff(&init),
        0.0,
        "params must be untouched"
    );
}

/// `restrict_partition` is stable under permutation of the batch list and
/// preserves ownership.
#[test]
fn restrict_partition_preserves_ownership() {
    let part = Partition::new((0..40).map(|i| (i % 4) as u32).collect(), 4);
    let batch: Vec<u32> = vec![5, 11, 23, 38];
    let sub = minibatch::restrict_partition(&part, &batch);
    for (local, &global) in batch.iter().enumerate() {
        assert_eq!(sub.part_of(local), part.part_of(global as usize));
    }
}
