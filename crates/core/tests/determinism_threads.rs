//! Full-training bitwise determinism across kernel thread counts.
//!
//! The pooled kernels are individually bitwise identical to serial (see
//! `pargcn-matrix`'s determinism suite); these tests close the loop at the
//! trainer level: whole distributed and serial training runs — losses,
//! final parameters, and predictions — are bitwise equal at 1, 2, and 7
//! threads per rank. Combined with the plan-order accumulation guarantee
//! of the exchange, thread count can never leak into results.

use pargcn_core::dist;
use pargcn_core::model::GcnConfig;
use pargcn_core::serial::SerialTrainer;
use pargcn_graph::gen::sbm::{self, SbmParams};
use pargcn_matrix::{ComputeCtx, Dense};
use pargcn_partition::random;

const THREAD_COUNTS: [usize; 3] = [1, 2, 7];

fn setup() -> (pargcn_graph::Graph, Dense, Vec<u32>, Vec<bool>) {
    let d = sbm::generate(
        SbmParams {
            n: 250,
            classes: 4,
            features: 12,
            feature_separation: 1.2,
            ..Default::default()
        },
        11,
    );
    (d.graph, d.features, d.labels, d.train_mask)
}

fn dense_bits(d: &Dense) -> Vec<u32> {
    d.data().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn dist_trainer_epochs_bitwise_equal_across_thread_counts() {
    let (g, h0, labels, mask) = setup();
    let config = GcnConfig::two_layer(12, 16, 4);
    let part = random::partition(g.n(), 3, 7);

    type RunBits = (Vec<u64>, Vec<u32>, Vec<Vec<u32>>);
    let mut reference: Option<RunBits> = None;
    for t in THREAD_COUNTS {
        let out =
            dist::train_full_batch_threads(&g, &h0, &labels, &mask, &part, &config, 3, 99, Some(t));
        let losses: Vec<u64> = out.losses.iter().map(|l| l.to_bits()).collect();
        let preds = dense_bits(&out.predictions);
        let weights: Vec<Vec<u32>> = out.params.weights.iter().map(dense_bits).collect();
        match &reference {
            None => reference = Some((losses, preds, weights)),
            Some((rl, rp, rw)) => {
                assert_eq!(rl, &losses, "losses differ at {t} threads");
                assert_eq!(rp, &preds, "predictions differ at {t} threads");
                assert_eq!(rw, &weights, "weights differ at {t} threads");
            }
        }
    }
}

#[test]
fn serial_trainer_bitwise_equal_across_thread_counts() {
    let (g, h0, labels, mask) = setup();
    let config = GcnConfig::two_layer(12, 16, 4);

    let mut reference: Option<(Vec<u64>, Vec<u32>)> = None;
    for t in THREAD_COUNTS {
        let mut trainer =
            SerialTrainer::new(&g, config.clone(), 7).with_ctx(ComputeCtx::with_threads(t));
        let losses: Vec<u64> = (0..3)
            .map(|_| trainer.train_epoch(&h0, &labels, &mask).to_bits())
            .collect();
        let preds = dense_bits(&trainer.predict(&h0));
        match &reference {
            None => reference = Some((losses, preds)),
            Some((rl, rp)) => {
                assert_eq!(rl, &losses, "serial losses differ at {t} threads");
                assert_eq!(rp, &preds, "serial predictions differ at {t} threads");
            }
        }
    }
}

#[test]
fn cagnet_trainer_bitwise_equal_across_thread_counts() {
    let (g, h0, labels, mask) = setup();
    let config = GcnConfig::two_layer(12, 16, 4);
    let part = random::partition(g.n(), 2, 5);

    let mut reference: Option<(Vec<u64>, Vec<u32>)> = None;
    for t in THREAD_COUNTS {
        let out = pargcn_core::baselines::cagnet::train_full_batch_threads(
            &g,
            &h0,
            &labels,
            &mask,
            &part,
            &config,
            2,
            13,
            Some(t),
        );
        let losses: Vec<u64> = out.losses.iter().map(|l| l.to_bits()).collect();
        let preds = dense_bits(&out.predictions);
        match &reference {
            None => reference = Some((losses, preds)),
            Some((rl, rp)) => {
                assert_eq!(rl, &losses, "cagnet losses differ at {t} threads");
                assert_eq!(rp, &preds, "cagnet predictions differ at {t} threads");
            }
        }
    }
}

#[test]
fn compute_seconds_are_recorded_per_rank() {
    let (g, h0, labels, mask) = setup();
    let config = GcnConfig::two_layer(12, 16, 4);
    let part = random::partition(g.n(), 2, 3);
    let out = dist::train_full_batch(&g, &h0, &labels, &mask, &part, &config, 2, 1);
    for (m, (c, &wall)) in out.counters.iter().zip(&out.rank_seconds).enumerate() {
        assert!(c.compute_seconds > 0.0, "rank {m} recorded no compute time");
        // comm + compute is the rank's wall time by construction.
        let sum = c.comm_seconds + c.compute_seconds;
        assert!(
            (sum - wall).abs() <= 1e-6 + wall * 1e-3,
            "rank {m}: comm {} + compute {} != wall {}",
            c.comm_seconds,
            c.compute_seconds,
            wall
        );
    }
}
