//! The persistent mini-batch engine's correctness contract (DESIGN.md
//! §11): the long-lived session + pooled plan builder + pipelined prep
//! must be a pure performance change. Losses, parameters, predictions,
//! and the volume/skip accounting all have to match the per-batch-spawn
//! path **bitwise**, for every rank count and kernel engine, and the
//! steady-state batch loop must stay off the allocator on the comm path
//! (the §9 contract extended to the whole batch stream).
//!
//! The counting global allocator is installed binary-wide so the
//! allocation test sees real numbers; it only counts, so the equivalence
//! tests are unaffected.

use pargcn_core::minibatch::{self, MinibatchEngine, MinibatchOutcome};
use pargcn_core::plan::PlanBuilder;
use pargcn_core::serial::SerialTrainer;
use pargcn_core::{CommPlan, GcnConfig};
use pargcn_graph::gen::er;
use pargcn_graph::gen::sbm::{self, SbmParams};
use pargcn_graph::Graph;
use pargcn_matrix::{ComputeSpec, Dense, KernelKind};
use pargcn_partition::stochastic::{sample_batches, Sampler};
use pargcn_partition::{partition_rows, random, Method, Partition};
use pargcn_util::allocmeter::CountingAllocator;
use pargcn_util::qc;
use pargcn_util::rng::Rng;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn setup(n: usize, seed: u64) -> (Graph, Dense, Vec<u32>, Vec<bool>) {
    let d = sbm::generate(
        SbmParams {
            n,
            classes: 4,
            features: 8,
            ..Default::default()
        },
        seed,
    );
    (d.graph, d.features, d.labels, d.train_mask)
}

/// Batches covering the interesting cases: normal batches plus one with
/// every labelled vertex masked out (the skip path must also pipeline).
fn batches_with_unlabelled(graph: &Graph, mask: &[bool], count: usize) -> Vec<Vec<u32>> {
    let mut batches = sample_batches(graph, Sampler::UniformVertex { batch_size: 60 }, count, 11);
    let unlabelled: Vec<u32> = (0..graph.n() as u32)
        .filter(|&v| !mask[v as usize])
        .take(40)
        .collect();
    assert!(
        !unlabelled.is_empty(),
        "test graph must have unlabelled vertices"
    );
    batches.insert(count / 2, unlabelled);
    batches
}

fn assert_outcomes_identical(old: &MinibatchOutcome, new: &MinibatchOutcome) {
    assert_eq!(old.losses, new.losses, "per-batch losses diverged");
    assert_eq!(old.params, new.params, "final parameters diverged");
    assert_eq!(old.total_volume_rows, new.total_volume_rows);
    assert_eq!(old.skipped_batches, new.skipped_batches);
    assert_eq!(old.skipped_volume_rows, new.skipped_volume_rows);
}

/// Predictions from the final parameters, computed identically for both
/// paths (the mini-batch outcome carries no predictions of its own).
fn predictions_from(
    graph: &Graph,
    config: &GcnConfig,
    out: &MinibatchOutcome,
    h0: &Dense,
) -> Dense {
    let a = graph.normalized_adjacency();
    SerialTrainer::from_adjacency(a, graph.directed(), config.clone(), out.params.clone())
        .predict(h0)
}

fn equivalence_at(p: usize, kernel: KernelKind) {
    let (graph, h0, labels, mask) = setup(240, 3);
    let a = graph.normalized_adjacency();
    let part = partition_rows(&graph, &a, Method::Hp, p, 0.1, 1);
    let config = GcnConfig::two_layer(8, 12, 4);
    let batches = batches_with_unlabelled(&graph, &mask, 12);
    let spec = ComputeSpec {
        threads: Some(2),
        kernel: Some(kernel),
    };

    let old = minibatch::train_spec(
        &graph, &h0, &labels, &mask, &part, &config, &batches, 5, spec,
    );
    let new = minibatch::train_spec_persistent(
        &graph, &h0, &labels, &mask, &part, &config, &batches, 5, spec,
    );

    assert!(!old.losses.is_empty(), "no batch trained — vacuous test");
    assert_eq!(old.skipped_batches, 1, "the unlabelled batch must skip");
    assert_outcomes_identical(&old, &new);
    assert_eq!(
        predictions_from(&graph, &config, &old, &h0),
        predictions_from(&graph, &config, &new, &h0),
        "predictions diverged"
    );
}

#[test]
fn engine_matches_per_batch_path_p2() {
    equivalence_at(2, KernelKind::Naive);
    equivalence_at(2, KernelKind::Blocked);
}

#[test]
fn engine_matches_per_batch_path_p4() {
    equivalence_at(4, KernelKind::Naive);
    equivalence_at(4, KernelKind::Blocked);
}

/// Splitting a batch stream across several `train` calls must behave like
/// one long call: parameters and optimizer state carry across calls.
#[test]
fn engine_streams_across_train_calls() {
    let (graph, h0, labels, mask) = setup(200, 9);
    let a = graph.normalized_adjacency();
    let part = partition_rows(&graph, &a, Method::Hp, 3, 0.1, 2);
    let config = GcnConfig::two_layer(8, 10, 4);
    let batches = sample_batches(&graph, Sampler::UniformVertex { batch_size: 50 }, 8, 4);
    let spec = ComputeSpec {
        threads: Some(1),
        kernel: None,
    };

    let whole = minibatch::train_spec_persistent(
        &graph, &h0, &labels, &mask, &part, &config, &batches, 7, spec,
    );

    let mut engine = MinibatchEngine::new(&graph, &h0, &labels, &mask, &part, &config, 7, spec);
    let first = engine.train(&batches[..3]);
    let second = engine.train(&batches[3..]);

    let mut losses = first.losses;
    losses.extend(&second.losses);
    assert_eq!(whole.losses, losses);
    assert_eq!(whole.params, second.params);
    assert_eq!(
        whole.total_volume_rows,
        first.total_volume_rows + second.total_volume_rows
    );
}

/// The engine's batch loop performs zero comm-path allocations once the
/// pools and workspaces have grown to the batch stream's high-water mark.
#[test]
fn steady_state_batches_do_not_allocate_on_the_comm_path() {
    let (graph, h0, labels, mask) = setup(240, 7);
    let a = graph.normalized_adjacency();
    let part = partition_rows(&graph, &a, Method::Hp, 4, 0.1, 1);
    let config = GcnConfig::two_layer(8, 16, 4);
    let batches = sample_batches(&graph, Sampler::UniformVertex { batch_size: 80 }, 6, 13);
    let spec = ComputeSpec {
        threads: Some(1),
        kernel: None,
    };

    let mut engine = MinibatchEngine::new(&graph, &h0, &labels, &mask, &part, &config, 3, spec);
    // Warm-up: pools, queues and workspaces grow to this batch list's
    // high-water footprint.
    engine.train(&batches);
    engine.reset_counters();
    // Steady state: the identical batch list must stay off the allocator
    // inside the comm runtime on every rank.
    let out = engine.train(&batches);
    assert!(!out.losses.is_empty());
    for (rank, c) in engine.counters().iter().enumerate() {
        assert_eq!(
            c.comm_path_allocs, 0,
            "rank {rank}: steady-state batches allocated {} times inside the comm runtime",
            c.comm_path_allocs
        );
    }
    assert!(
        out.total_volume_rows > 0,
        "batches produced no communication — the assertion above is vacuous"
    );
}

/// Skipped-batch accounting: a batch with no labelled vertices produces
/// no loss and no traffic, and its would-be volume is reported apart.
#[test]
fn skipped_batches_are_counted_apart_from_trained_volume() {
    let (graph, h0, labels, mask) = setup(200, 5);
    let a = graph.normalized_adjacency();
    let part = partition_rows(&graph, &a, Method::Rp, 4, 0.1, 3);
    let config = GcnConfig::two_layer(8, 10, 4);
    let batches = batches_with_unlabelled(&graph, &mask, 4);
    let spec = ComputeSpec::default();

    let out = minibatch::train_spec(
        &graph, &h0, &labels, &mask, &part, &config, &batches, 2, spec,
    );
    assert_eq!(out.skipped_batches, 1);
    assert_eq!(out.losses.len(), batches.len() - 1);
    assert!(
        out.skipped_volume_rows > 0,
        "the unlabelled batch should have cut edges under RP"
    );
    // Trained volume is exactly the sum over trained batches — recompute
    // from the per-batch volumes and compare.
    let (all, per) = minibatch::expected_comm_volume(&graph, &batches, &part);
    assert_eq!(all, out.total_volume_rows + out.skipped_volume_rows);
    let unlabelled_idx = batches
        .iter()
        .position(|b| b.iter().all(|&v| !mask[v as usize]))
        .unwrap();
    assert_eq!(out.skipped_volume_rows, per[unlabelled_idx]);
}

/// `PlanBuilder` with scratch reused across arbitrary graph/partition
/// streams emits plans identical (`==`, i.e. every block, row list and
/// send set) to a fresh `CommPlan::build` per input.
#[test]
fn plan_builder_reuse_matches_fresh_builds() {
    // `qc::run` takes `Fn`, so the reused builder lives in a `RefCell`.
    let builder = std::cell::RefCell::new(PlanBuilder::new());
    qc::run(48, |rng| {
        let n = rng.gen_range(2usize..=60);
        let m = rng.gen_range(0usize..=4 * n);
        let directed = rng.gen_range(0u32..2) == 1;
        let g = er::generate(n, m, directed, rng.gen_range(0u64..1 << 40));
        let a = g.normalized_adjacency();
        let p = rng.gen_range(1usize..=n.min(6));
        let part = random::partition(n, p, rng.gen_range(0u64..1 << 40));
        let fresh = CommPlan::build(&a, &part);
        let reused = builder.borrow_mut().build(&a, &part);
        assert_eq!(fresh, reused, "reused-scratch plan diverged (n={n} p={p})");
        if directed {
            let at = a.transpose();
            assert_eq!(
                CommPlan::build(&at, &part),
                builder.borrow_mut().build(&at, &part)
            );
        }
    });
    // Degenerate shapes the sweep may miss: empty part, p=1.
    let g = er::generate(8, 24, true, 2);
    let a = g.normalized_adjacency();
    let part = Partition::new(vec![0, 0, 1, 1, 1, 0, 1, 0], 3);
    let mut builder = builder.into_inner();
    assert_eq!(CommPlan::build(&a, &part), builder.build(&a, &part));
    assert_eq!(
        CommPlan::build(&a, &Partition::trivial(8)),
        builder.build(&a, &Partition::trivial(8))
    );
}
