//! The PR's headline contract, pinned by a counting global allocator:
//! once the payload pools are warm, a full training epoch performs **zero
//! heap allocations inside the communication runtime** — every `acquire`,
//! `isend`, `recv*`, `release`, `allreduce_sum` and `broadcast` runs on
//! recycled buffers (DESIGN.md §9).
//!
//! This binary installs [`pargcn_util::allocmeter::CountingAllocator`] as
//! the global allocator, which makes `CommCounters::comm_path_allocs`
//! live: each runtime method samples the thread-local allocation counter
//! around its body. Two warm-up epochs let every pool and channel deque
//! reach its steady footprint, the counters reset, and three more epochs
//! must then report zero comm-path allocations on every rank.

use pargcn_comm::Communicator;
use pargcn_core::dist::trainer::epoch_step;
use pargcn_core::dist::{prewarm_comm_pools, EpochWorkspace, RankState};
use pargcn_core::optim::OptimizerState;
use pargcn_core::{CommPlan, GcnConfig};
use pargcn_graph::gen::sbm::{self, SbmParams};
use pargcn_matrix::{gather, ComputeCtx};
use pargcn_partition::{partition_rows, Method};
use pargcn_util::allocmeter::CountingAllocator;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_epochs_do_not_allocate_on_the_comm_path() {
    let p = 4;
    let data = sbm::generate(
        SbmParams {
            n: 200,
            classes: 4,
            features: 8,
            feature_separation: 1.5,
            ..Default::default()
        },
        7,
    );
    let (graph, h0, labels, mask) = (data.graph, data.features, data.labels, data.train_mask);
    let a = graph.normalized_adjacency();
    let part = partition_rows(&graph, &a, Method::Hp, p, 0.1, 1);
    let plan = CommPlan::build(&a, &part);
    let config = GcnConfig::two_layer(8, 16, 4);
    let init = config.init_params(3);
    let mask_total = mask.iter().filter(|&&m| m).count().max(1) as f64;

    let locals: Vec<_> = plan
        .ranks
        .iter()
        .map(|rp| {
            (
                gather::gather_rows(&h0, &rp.local_rows),
                rp.local_rows
                    .iter()
                    .map(|&v| labels[v as usize])
                    .collect::<Vec<u32>>(),
                rp.local_rows
                    .iter()
                    .map(|&v| mask[v as usize])
                    .collect::<Vec<bool>>(),
            )
        })
        .collect();

    let allocs: Vec<(u64, u64)> = Communicator::run(p, |ctx| {
        let m = ctx.rank();
        let (h_local, l_local, m_local) = &locals[m];
        let mut st = RankState {
            plan_f: &plan.ranks[m],
            plan_b: &plan.ranks[m],
            config: &config,
            params: init.clone(),
            h0: h_local,
            labels: l_local,
            mask: m_local,
            mask_total,
            opt_state: OptimizerState::new(config.optimizer, &config.shapes()),
            ctx: ComputeCtx::for_ranks(p, Some(1)),
        };
        prewarm_comm_pools(ctx, st.plan_f, st.plan_b, &config);
        let mut ws = EpochWorkspace::new(st.plan_f, &config, p, &st.ctx);

        // Warm-up: channel deques and any pool shortfall grow to their
        // steady footprint here.
        for _ in 0..2 {
            epoch_step(ctx, &mut st, &mut ws);
        }
        let warmup = ctx.counters().comm_path_allocs;
        ctx.reset_counters();

        // Steady state: every buffer a message needs is already resident.
        for _ in 0..3 {
            epoch_step(ctx, &mut st, &mut ws);
        }
        (warmup, ctx.counters().comm_path_allocs)
    });

    for (rank, &(_, steady)) in allocs.iter().enumerate() {
        assert_eq!(
            steady, 0,
            "rank {rank}: steady-state epochs allocated {steady} times inside the comm runtime"
        );
    }
    // The epochs exercised real traffic: the partition must actually cut
    // edges, or the assertion above would hold vacuously.
    assert!(
        plan.total_volume_rows() > 0,
        "test graph/partition produced no communication"
    );
}

// Meter liveness: the same binary must *see* allocations when pools are
// cold, or the zero above would prove nothing (e.g. a broken allocator
// hook, or sampling around the wrong region).
#[test]
fn cold_pools_do_allocate_and_are_counted() {
    let counts: Vec<u64> = Communicator::run(2, |ctx| {
        let peer = 1 - ctx.rank();
        // No prewarm: the very first acquire must miss and allocate.
        let payload = ctx.acquire(peer, 4096);
        ctx.isend(peer, 0, payload);
        let got = ctx.recv(peer, 0);
        ctx.release(peer, got);
        ctx.counters().comm_path_allocs
    });
    for (rank, &c) in counts.iter().enumerate() {
        assert!(
            c > 0,
            "rank {rank}: cold-pool traffic reported 0 allocations — meter dead"
        );
    }
}
