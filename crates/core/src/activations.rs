//! Activation functions `σ` and their derivatives `σ'` (paper Eq. 1–3).

use pargcn_matrix::Dense;
use pargcn_util::pool::Pool;

/// Element-wise activation applied to `Zᵏ` to form `Hᵏ`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit, the paper's hidden-layer activation.
    Relu,
    /// Identity, used at the output layer (softmax lives in the loss).
    Identity,
}

impl Activation {
    /// `H = σ(Z)`.
    pub fn apply(&self, z: &Dense) -> Dense {
        match self {
            Activation::Relu => z.map(|v| v.max(0.0)),
            Activation::Identity => z.clone(),
        }
    }

    /// `σ'(Z)`, element-wise.
    pub fn derivative(&self, z: &Dense) -> Dense {
        match self {
            Activation::Relu => z.map(|v| if v > 0.0 { 1.0 } else { 0.0 }),
            Activation::Identity => z.map(|_| 1.0),
        }
    }

    /// Pooled [`Activation::apply`]; element-wise, so bitwise identical to
    /// serial at any thread count.
    pub fn apply_pool(&self, z: &Dense, pool: &Pool) -> Dense {
        match self {
            Activation::Relu => z.map_pool(pool, |v| v.max(0.0)),
            Activation::Identity => z.clone(),
        }
    }

    /// [`Activation::apply`] into a caller-provided `out` (same shape,
    /// never reallocates) — the form the persistent forward workspace
    /// uses; pooled, bitwise identical to serial.
    pub fn apply_into_pool(&self, z: &Dense, out: &mut Dense, pool: &Pool) {
        match self {
            Activation::Relu => z.map_into_pool(out, pool, |v| v.max(0.0)),
            Activation::Identity => out.copy_from(z),
        }
    }

    /// [`Activation::derivative`] into a caller-provided `out`; pooled,
    /// bitwise identical to serial.
    pub fn derivative_into_pool(&self, z: &Dense, out: &mut Dense, pool: &Pool) {
        match self {
            Activation::Relu => z.map_into_pool(out, pool, |v| if v > 0.0 { 1.0 } else { 0.0 }),
            Activation::Identity => z.map_into_pool(out, pool, |_| 1.0),
        }
    }

    /// Pooled [`Activation::derivative`]; bitwise identical to serial.
    pub fn derivative_pool(&self, z: &Dense, pool: &Pool) -> Dense {
        match self {
            Activation::Relu => z.map_pool(pool, |v| if v > 0.0 { 1.0 } else { 0.0 }),
            Activation::Identity => z.map_pool(pool, |_| 1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let z = Dense::from_vec(1, 4, vec![-1.0, 0.0, 0.5, 2.0]);
        assert_eq!(Activation::Relu.apply(&z).data(), &[0.0, 0.0, 0.5, 2.0]);
        assert_eq!(
            Activation::Relu.derivative(&z).data(),
            &[0.0, 0.0, 1.0, 1.0]
        );
    }

    #[test]
    fn identity_is_noop_with_unit_derivative() {
        let z = Dense::from_vec(1, 3, vec![-1.0, 0.0, 3.0]);
        assert_eq!(Activation::Identity.apply(&z).data(), z.data());
        assert_eq!(Activation::Identity.derivative(&z).data(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn relu_derivative_consistent_with_finite_difference() {
        let z = Dense::from_vec(1, 2, vec![0.7, -0.3]);
        let eps = 1e-3f32;
        let d = Activation::Relu.derivative(&z);
        for j in 0..2 {
            let mut zp = z.clone();
            zp.set(0, j, z.get(0, j) + eps);
            let mut zm = z.clone();
            zm.set(0, j, z.get(0, j) - eps);
            let fd = (Activation::Relu.apply(&zp).get(0, j)
                - Activation::Relu.apply(&zm).get(0, j))
                / (2.0 * eps);
            assert!((fd - d.get(0, j)).abs() < 1e-3);
        }
    }
}
