//! Distributed mini-batch training (§4.3.3's workload).
//!
//! Each step samples a subgraph `G' ⊂ G`, normalizes its adjacency, builds
//! the per-batch communication plan under the *global* row partition
//! (vertices keep their home processor — DistDGL-style co-location), and
//! runs one full-batch step on the subgraph, carrying parameters across
//! batches. [`expected_comm_volume`] measures the per-batch point-to-point
//! volume a partition induces — the quantity Fig. 5 compares between HP
//! and SHP.

use crate::dist::trainer::{epoch_step, train_with_plans_spec, DistOutcome};
use crate::dist::workspace::{prewarm_comm_pools, BatchWorkspace};
use crate::dist::RankState;
use crate::model::{GcnConfig, Params};
use crate::optim::{Optimizer, OptimizerState};
use crate::plan::{CommPlan, PlanBuilder};
use pargcn_comm::{CommCounters, CommSession, RankCtx};
use pargcn_graph::{Graph, SubgraphScratch};
use pargcn_matrix::{gather, norm, ComputeCtx, ComputeSpec, Dense};
use pargcn_partition::{metrics, Partition};
use std::sync::Mutex;
use std::time::Instant;

/// Restriction of a global partition to a batch's vertices: part ids keep
/// their meaning (rank `m` still owns its vertices), rows renumber to the
/// batch-local space.
pub fn restrict_partition(part: &Partition, batch: &[u32]) -> Partition {
    let assignment: Vec<u32> = batch.iter().map(|&v| part.part_of(v as usize)).collect();
    Partition::new(assignment, part.p())
}

/// Exact point-to-point row volume of one mini-batch convolution sweep
/// under `part`: the sub-adjacency's comm volume with vertices on their
/// home processors.
pub fn batch_comm_volume(graph: &Graph, batch: &[u32], part: &Partition) -> u64 {
    let sub = graph.induced_subgraph(batch);
    let a = norm::normalize_adjacency(sub.adjacency());
    let sub_part = restrict_partition(part, batch);
    metrics::spmm_comm_stats(&a, &sub_part).total_rows
}

/// Total and per-batch expected communication volume over a batch set —
/// the Fig. 5 "Msg Vol" metric (in rows; multiply by `Σ(d_{k-1}+d_k)·4`
/// for bytes across a full training sweep).
pub fn expected_comm_volume(
    graph: &Graph,
    batches: &[Vec<u32>],
    part: &Partition,
) -> (u64, Vec<u64>) {
    let per: Vec<u64> = batches
        .iter()
        .map(|b| batch_comm_volume(graph, b, part))
        .collect();
    (per.iter().sum(), per)
}

/// Outcome of a mini-batch training run.
pub struct MinibatchOutcome {
    /// Per-batch training loss (over the batch's masked vertices).
    pub losses: Vec<f64>,
    /// Final parameters.
    pub params: Params,
    /// Total point-to-point rows exchanged across the *trained* batches
    /// (feedforward-direction plans; one sweep's volume × layers × 2 gives
    /// a full-epoch figure). Skipped batches exchange nothing, so their
    /// would-be volume is reported separately.
    pub total_volume_rows: u64,
    /// Batches skipped because they sampled no labelled vertex (no
    /// gradient, no step, no traffic).
    pub skipped_batches: usize,
    /// The feedforward plan volume those skipped batches *would* have
    /// exchanged — kept out of `total_volume_rows` so Fig. 5's
    /// trained-batch volume is not overstated.
    pub skipped_volume_rows: u64,
}

/// Trains over the given mini-batches (one step each), distributing every
/// batch across the same `part.p()` ranks under the global partition.
// The training entry points take the full problem description by design;
// a config struct would just rename the eight pieces.
#[allow(clippy::too_many_arguments)]
pub fn train(
    graph: &Graph,
    h0: &Dense,
    labels: &[u32],
    mask: &[bool],
    part: &Partition,
    config: &GcnConfig,
    batches: &[Vec<u32>],
    param_seed: u64,
) -> MinibatchOutcome {
    train_spec(
        graph,
        h0,
        labels,
        mask,
        part,
        config,
        batches,
        param_seed,
        ComputeSpec::default(),
    )
}

/// As [`train`] with an explicit per-rank compute spec (thread count and
/// kernel engine), applied to every batch step.
#[allow(clippy::too_many_arguments)]
pub fn train_spec(
    graph: &Graph,
    h0: &Dense,
    labels: &[u32],
    mask: &[bool],
    part: &Partition,
    config: &GcnConfig,
    batches: &[Vec<u32>],
    param_seed: u64,
    spec: ComputeSpec,
) -> MinibatchOutcome {
    let mut params = config.init_params(param_seed);
    let mut losses = Vec::with_capacity(batches.len());
    let mut total_volume = 0u64;
    let mut skipped_batches = 0usize;
    let mut skipped_volume = 0u64;
    for batch in batches {
        let sub = graph.induced_subgraph(batch);
        let a = norm::normalize_adjacency(sub.adjacency());
        let sub_part = restrict_partition(part, batch);
        let plan_f = CommPlan::build(&a, &sub_part);
        let plan_b = if sub.directed() {
            CommPlan::build(&a.transpose(), &sub_part)
        } else {
            plan_f.clone()
        };

        let m_batch: Vec<bool> = batch.iter().map(|&v| mask[v as usize]).collect();
        if !m_batch.iter().any(|&m| m) {
            // No labelled vertices sampled: skip the step (no gradient) —
            // before gathering the batch's feature rows, which would only
            // be thrown away. A skipped batch exchanges nothing, so its
            // volume is tallied separately, not into `total_volume_rows`.
            skipped_batches += 1;
            skipped_volume += plan_f.total_volume_rows();
            continue;
        }
        total_volume += plan_f.total_volume_rows();
        let h_batch = gather::gather_rows(h0, batch);
        let l_batch: Vec<u32> = batch.iter().map(|&v| labels[v as usize]).collect();
        let out: DistOutcome = train_with_plans_spec(
            &plan_f, &plan_b, &h_batch, &l_batch, &m_batch, config, 1, params, spec,
        );
        params = out.params;
        losses.push(out.losses[0]);
    }
    MinibatchOutcome {
        losses,
        params,
        total_volume_rows: total_volume,
        skipped_batches,
        skipped_volume_rows: skipped_volume,
    }
}

/// As [`train_spec`], but through a freshly constructed persistent
/// [`MinibatchEngine`] — same outputs bitwise, batch-sized per-step cost.
#[allow(clippy::too_many_arguments)]
pub fn train_spec_persistent(
    graph: &Graph,
    h0: &Dense,
    labels: &[u32],
    mask: &[bool],
    part: &Partition,
    config: &GcnConfig,
    batches: &[Vec<u32>],
    param_seed: u64,
    spec: ComputeSpec,
) -> MinibatchOutcome {
    let mut engine = MinibatchEngine::new(graph, h0, labels, mask, part, config, param_seed, spec);
    engine.train(batches)
}

/// One rank's per-batch slice, gathered on the main thread while the
/// ranks train the previous batch.
struct RankLocal {
    /// Feature rows of the rank's owned batch vertices (grow-once).
    h: Dense,
    labels: Vec<u32>,
    mask: Vec<bool>,
}

/// Everything one batch needs to train, built ahead of time into the
/// engine's double buffer: plans, per-rank data slices, and bookkeeping.
/// Prep is a pure function of the batch (graph, features, partition,
/// config are fixed), which is why building batch t+1 while the ranks
/// train batch t cannot change any result.
struct BatchPrep {
    plan_f: CommPlan,
    /// `None` for undirected graphs (backward reuses `plan_f`).
    plan_b: Option<CommPlan>,
    locals: Vec<RankLocal>,
    mask_total: f64,
    /// False when the batch sampled no labelled vertex: no step runs.
    trainable: bool,
    volume: u64,
}

impl BatchPrep {
    fn empty(p: usize, width: usize) -> BatchPrep {
        BatchPrep {
            plan_f: CommPlan {
                ranks: Vec::new(),
                n: 0,
                p,
            },
            plan_b: None,
            locals: (0..p)
                .map(|_| RankLocal {
                    h: Dense::zeros(0, width),
                    labels: Vec::new(),
                    mask: Vec::new(),
                })
                .collect(),
            mask_total: 1.0,
            trainable: false,
            volume: 0,
        }
    }

    fn backward_rank(&self, m: usize) -> &crate::plan::RankPlan {
        match &self.plan_b {
            Some(pb) => &pb.ranks[m],
            None => &self.plan_f.ranks[m],
        }
    }
}

/// Per-rank persistent training state, owned by the engine and visited by
/// that rank's step closures. The `Mutex` is uncontended — only rank `m`'s
/// thread (or the main thread between steps) ever touches slot `m`.
struct RankSlot {
    /// Replicated parameters (lock-step across slots).
    params: Params,
    /// Replicated optimizer state.
    opt_state: OptimizerState,
    /// The rank's kernel thread pool, built once for the whole stream.
    cctx: ComputeCtx,
    /// Grow-once epoch workspace, high-water-marked across batches.
    ws: BatchWorkspace,
    last_loss: f64,
}

/// Persistent mini-batch training engine (DESIGN.md §11).
///
/// [`train_spec`] pays full startup cost per batch: `Communicator::run`
/// respawns all `p` rank threads and kernel pools, re-prewarms the comm
/// pools, reallocates an `EpochWorkspace`, and `CommPlan::build` zeroes
/// O(n·p) scratch — all wrapped around a *single* training step. The
/// engine hoists every one of those out of the loop:
///
/// * a [`CommSession`] keeps the rank threads, channels, buffer pools and
///   counters alive across the whole batch stream;
/// * per-rank [`ComputeCtx`]s (kernel pools) are built once;
/// * a [`PlanBuilder`] and [`SubgraphScratch`] reuse their maps, and the
///   [`BatchWorkspace`] grows once to the high-water batch;
/// * batch *t+1*'s subgraph, normalized adjacency, plan, and data slices
///   are prepared on the main thread *while the ranks train batch t*
///   (double buffer). Prep is a pure function of the batch, so the
///   pipelining cannot change results.
///
/// Outputs are bitwise identical to [`train_spec`] (equivalence suite in
/// `tests/minibatch_engine.rs`); only the per-batch overhead changes.
pub struct MinibatchEngine<'a> {
    graph: &'a Graph,
    h0: &'a Dense,
    labels: &'a [u32],
    mask: &'a [bool],
    part: &'a Partition,
    config: &'a GcnConfig,
    session: CommSession,
    slots: Vec<Mutex<RankSlot>>,
    builder: PlanBuilder,
    scratch: SubgraphScratch,
    preps: (BatchPrep, BatchPrep),
    /// Which of `preps` holds the batch being trained (the other is the
    /// build target); flips every batch.
    cur: usize,
}

impl<'a> MinibatchEngine<'a> {
    /// Spawns the rank runtime and builds every per-rank resource. The
    /// parameters start at `config.init_params(param_seed)`, exactly like
    /// the per-batch path.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        graph: &'a Graph,
        h0: &'a Dense,
        labels: &'a [u32],
        mask: &'a [bool],
        part: &'a Partition,
        config: &'a GcnConfig,
        param_seed: u64,
        spec: ComputeSpec,
    ) -> MinibatchEngine<'a> {
        assert_eq!(h0.rows(), graph.n(), "feature rows mismatch");
        assert_eq!(labels.len(), graph.n(), "labels mismatch");
        assert_eq!(mask.len(), graph.n(), "mask mismatch");
        assert_eq!(part.n(), graph.n(), "partition size mismatch");
        let p = part.p();
        let init = config.init_params(param_seed);
        let slots = (0..p)
            .map(|_| {
                Mutex::new(RankSlot {
                    params: init.clone(),
                    opt_state: OptimizerState::new(config.optimizer, &config.shapes()),
                    cctx: ComputeCtx::for_ranks_spec(p, spec),
                    ws: BatchWorkspace::new(),
                    last_loss: 0.0,
                })
            })
            .collect();
        MinibatchEngine {
            graph,
            h0,
            labels,
            mask,
            part,
            config,
            session: CommSession::new(p),
            slots,
            builder: PlanBuilder::new(),
            scratch: SubgraphScratch::new(),
            preps: (
                BatchPrep::empty(p, h0.cols()),
                BatchPrep::empty(p, h0.cols()),
            ),
            cur: 0,
        }
    }

    /// Trains one step per batch, pipelining each batch's preparation
    /// under the previous batch's training step. May be called repeatedly
    /// — parameters and optimizer state carry across calls, so a stream
    /// of `train` calls behaves like one long batch list.
    pub fn train(&mut self, batches: &[Vec<u32>]) -> MinibatchOutcome {
        let mut losses = Vec::with_capacity(batches.len());
        let mut total_volume = 0u64;
        let mut skipped_batches = 0usize;
        let mut skipped_volume = 0u64;
        let p = self.session.p();
        // Split the engine into disjoint borrows: the step closure reads
        // `slots` + the active prep while `prepare_batch` refills the
        // builder scratch and the build prep.
        let MinibatchEngine {
            graph,
            h0,
            labels,
            mask,
            part,
            config,
            session,
            slots,
            builder,
            scratch,
            preps,
            cur,
        } = self;

        if let Some(first) = batches.first() {
            let build = if *cur == 0 {
                &mut preps.0
            } else {
                &mut preps.1
            };
            prepare_batch(
                graph, h0, labels, mask, part, builder, scratch, first, build,
            );
        }
        for t in 0..batches.len() {
            let (active, build) = if *cur == 0 {
                (&preps.0, &mut preps.1)
            } else {
                (&preps.1, &mut preps.0)
            };
            if active.trainable {
                let step = |ctx: &mut RankCtx| {
                    let m = ctx.rank();
                    let mut guard = slots[m].lock().expect("rank slot poisoned");
                    let slot = &mut *guard;
                    let rp_f = &active.plan_f.ranks[m];
                    let rp_b = active.backward_rank(m);
                    // Idempotent: tops pools/queues up to *this* batch's
                    // analytic worst case; a no-op once the stream's
                    // high-water batch has been seen, so steady state
                    // stays allocation-free by construction rather than
                    // by timing-dependent grow-on-miss.
                    prewarm_comm_pools(ctx, rp_f, rp_b, config);
                    let ws = slot.ws.begin_batch(rp_f, config, p, &slot.cctx);
                    let local = &active.locals[m];
                    let mut st = RankState {
                        plan_f: rp_f,
                        plan_b: rp_b,
                        config,
                        params: std::mem::replace(
                            &mut slot.params,
                            Params {
                                weights: Vec::new(),
                            },
                        ),
                        h0: &local.h,
                        labels: &local.labels,
                        mask: &local.mask,
                        mask_total: active.mask_total,
                        opt_state: std::mem::replace(
                            &mut slot.opt_state,
                            OptimizerState::new(Optimizer::Sgd, &[]),
                        ),
                        ctx: slot.cctx.clone(),
                    };
                    let comm_before = ctx.counters().comm_seconds;
                    let start = Instant::now();
                    let loss = epoch_step(ctx, &mut st, ws);
                    let wall = start.elapsed().as_secs_f64();
                    // Keep `comm + compute == wall` per rank across the
                    // session, like the per-run accounting in the trainer.
                    ctx.add_compute_seconds(wall - (ctx.counters().comm_seconds - comm_before));
                    ctx.add_compute_flops(st.ctx.take_flops());
                    slot.params = st.params;
                    slot.opt_state = st.opt_state;
                    slot.last_loss = loss;
                };
                // Safety: `step` outlives the submit/collect pair below —
                // `collect_step` runs before it goes out of scope.
                unsafe { session.submit_step(&step) };
                // Ranks are now training batch t; overlap batch t+1's prep.
                if let Some(next) = batches.get(t + 1) {
                    prepare_batch(graph, h0, labels, mask, part, builder, scratch, next, build);
                }
                session.collect_step();
                total_volume += active.volume;
                losses.push(slots[0].lock().expect("rank slot poisoned").last_loss);
            } else {
                skipped_batches += 1;
                skipped_volume += active.volume;
                if let Some(next) = batches.get(t + 1) {
                    prepare_batch(graph, h0, labels, mask, part, builder, scratch, next, build);
                }
            }
            *cur ^= 1;
        }
        MinibatchOutcome {
            losses,
            params: self.params(),
            total_volume_rows: total_volume,
            skipped_batches,
            skipped_volume_rows: skipped_volume,
        }
    }

    /// The current (replicated) parameters.
    pub fn params(&self) -> Params {
        self.slots[0]
            .lock()
            .expect("rank slot poisoned")
            .params
            .clone()
    }

    /// Per-rank communication counters, accumulated since the engine was
    /// created (or last [`MinibatchEngine::reset_counters`]).
    pub fn counters(&mut self) -> Vec<CommCounters> {
        self.session.run_step(|ctx| ctx.counters().clone())
    }

    /// Zeroes every rank's counters (e.g. after warm-up batches, so a
    /// measurement window sees steady state only).
    pub fn reset_counters(&mut self) {
        self.session.run_step(|ctx| ctx.reset_counters());
    }
}

/// Builds everything batch `batch` needs into `prep` (grow-once where the
/// buffers allow it). Pure in the engine's fixed inputs: no training
/// state is read, so prep for batch t+1 can run while batch t trains.
#[allow(clippy::too_many_arguments)]
fn prepare_batch(
    graph: &Graph,
    h0: &Dense,
    labels: &[u32],
    mask: &[bool],
    part: &Partition,
    builder: &mut PlanBuilder,
    scratch: &mut SubgraphScratch,
    batch: &[u32],
    prep: &mut BatchPrep,
) {
    let sub = graph.induced_subgraph_into(batch, scratch);
    let a = norm::normalize_adjacency(sub.adjacency());
    let sub_part = restrict_partition(part, batch);
    prep.plan_f = builder.build(&a, &sub_part);
    prep.plan_b = if sub.directed() {
        Some(builder.build(&a.transpose(), &sub_part))
    } else {
        None
    };
    prep.volume = prep.plan_f.total_volume_rows();
    let masked = batch.iter().filter(|&&v| mask[v as usize]).count();
    prep.trainable = masked > 0;
    prep.mask_total = masked.max(1) as f64;
    for (rp, local) in prep.plan_f.ranks.iter().zip(&mut prep.locals) {
        local.h.resize_rows(rp.local_rows.len());
        local.labels.clear();
        local.mask.clear();
        for (li, &lr) in rp.local_rows.iter().enumerate() {
            let v = batch[lr as usize] as usize;
            local.h.row_mut(li).copy_from_slice(h0.row(v));
            local.labels.push(labels[v]);
            local.mask.push(mask[v]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargcn_graph::gen::sbm::{self, SbmParams};
    use pargcn_partition::stochastic::{sample_batches, Sampler};
    use pargcn_partition::{partition_rows, Method};

    fn setup() -> (Graph, Dense, Vec<u32>, Vec<bool>) {
        let d = sbm::generate(
            SbmParams {
                n: 240,
                classes: 4,
                features: 8,
                ..Default::default()
            },
            3,
        );
        (d.graph, d.features, d.labels, d.train_mask)
    }

    #[test]
    fn restriction_keeps_home_processors() {
        let part = Partition::new(vec![0, 1, 2, 0, 1, 2], 3);
        let sub = restrict_partition(&part, &[1, 3, 5]);
        assert_eq!(sub.assignment(), &[1, 0, 2]);
    }

    #[test]
    fn batch_volume_zero_for_single_part() {
        let (g, ..) = setup();
        let part = Partition::trivial(g.n());
        assert_eq!(batch_comm_volume(&g, &[0, 1, 2, 3, 4, 5, 6, 7], &part), 0);
    }

    #[test]
    fn minibatch_training_reduces_loss() {
        let (g, h0, labels, mask) = setup();
        let a = g.normalized_adjacency();
        let part = partition_rows(&g, &a, Method::Hp, 3, 0.1, 1);
        let batches = sample_batches(&g, Sampler::UniformVertex { batch_size: 120 }, 30, 2);
        let config = GcnConfig::two_layer(8, 12, 4);
        let out = train(&g, &h0, &labels, &mask, &part, &config, &batches, 5);
        assert!(out.losses.len() >= 25);
        let first: f64 = out.losses[..5].iter().sum::<f64>() / 5.0;
        let last: f64 = out.losses[out.losses.len() - 5..].iter().sum::<f64>() / 5.0;
        assert!(
            last < first,
            "mini-batch loss did not decrease: {first} → {last}"
        );
        assert!(out.total_volume_rows > 0);
    }

    #[test]
    fn expected_volume_sums_batches() {
        let (g, ..) = setup();
        let a = g.normalized_adjacency();
        let part = partition_rows(&g, &a, Method::Rp, 4, 0.1, 7);
        let batches = sample_batches(&g, Sampler::UniformVertex { batch_size: 60 }, 5, 8);
        let (total, per) = expected_comm_volume(&g, &batches, &part);
        assert_eq!(per.len(), 5);
        assert_eq!(total, per.iter().sum::<u64>());
        assert!(total > 0);
    }
}
