//! Distributed mini-batch training (§4.3.3's workload).
//!
//! Each step samples a subgraph `G' ⊂ G`, normalizes its adjacency, builds
//! the per-batch communication plan under the *global* row partition
//! (vertices keep their home processor — DistDGL-style co-location), and
//! runs one full-batch step on the subgraph, carrying parameters across
//! batches. [`expected_comm_volume`] measures the per-batch point-to-point
//! volume a partition induces — the quantity Fig. 5 compares between HP
//! and SHP.

use crate::dist::trainer::{train_with_plans_spec, DistOutcome};
use crate::model::{GcnConfig, Params};
use crate::plan::CommPlan;
use pargcn_graph::Graph;
use pargcn_matrix::{gather, norm, ComputeSpec, Dense};
use pargcn_partition::{metrics, Partition};

/// Restriction of a global partition to a batch's vertices: part ids keep
/// their meaning (rank `m` still owns its vertices), rows renumber to the
/// batch-local space.
pub fn restrict_partition(part: &Partition, batch: &[u32]) -> Partition {
    let assignment: Vec<u32> = batch.iter().map(|&v| part.part_of(v as usize)).collect();
    Partition::new(assignment, part.p())
}

/// Exact point-to-point row volume of one mini-batch convolution sweep
/// under `part`: the sub-adjacency's comm volume with vertices on their
/// home processors.
pub fn batch_comm_volume(graph: &Graph, batch: &[u32], part: &Partition) -> u64 {
    let sub = graph.induced_subgraph(batch);
    let a = norm::normalize_adjacency(sub.adjacency());
    let sub_part = restrict_partition(part, batch);
    metrics::spmm_comm_stats(&a, &sub_part).total_rows
}

/// Total and per-batch expected communication volume over a batch set —
/// the Fig. 5 "Msg Vol" metric (in rows; multiply by `Σ(d_{k-1}+d_k)·4`
/// for bytes across a full training sweep).
pub fn expected_comm_volume(
    graph: &Graph,
    batches: &[Vec<u32>],
    part: &Partition,
) -> (u64, Vec<u64>) {
    let per: Vec<u64> = batches
        .iter()
        .map(|b| batch_comm_volume(graph, b, part))
        .collect();
    (per.iter().sum(), per)
}

/// Outcome of a mini-batch training run.
pub struct MinibatchOutcome {
    /// Per-batch training loss (over the batch's masked vertices).
    pub losses: Vec<f64>,
    /// Final parameters.
    pub params: Params,
    /// Total point-to-point rows exchanged across all batches (feedforward
    /// direction plans; one sweep's volume × layers × 2 gives a full-epoch
    /// figure).
    pub total_volume_rows: u64,
}

/// Trains over the given mini-batches (one step each), distributing every
/// batch across the same `part.p()` ranks under the global partition.
// The training entry points take the full problem description by design;
// a config struct would just rename the eight pieces.
#[allow(clippy::too_many_arguments)]
pub fn train(
    graph: &Graph,
    h0: &Dense,
    labels: &[u32],
    mask: &[bool],
    part: &Partition,
    config: &GcnConfig,
    batches: &[Vec<u32>],
    param_seed: u64,
) -> MinibatchOutcome {
    train_spec(
        graph,
        h0,
        labels,
        mask,
        part,
        config,
        batches,
        param_seed,
        ComputeSpec::default(),
    )
}

/// As [`train`] with an explicit per-rank compute spec (thread count and
/// kernel engine), applied to every batch step.
#[allow(clippy::too_many_arguments)]
pub fn train_spec(
    graph: &Graph,
    h0: &Dense,
    labels: &[u32],
    mask: &[bool],
    part: &Partition,
    config: &GcnConfig,
    batches: &[Vec<u32>],
    param_seed: u64,
    spec: ComputeSpec,
) -> MinibatchOutcome {
    let mut params = config.init_params(param_seed);
    let mut losses = Vec::with_capacity(batches.len());
    let mut total_volume = 0u64;
    for batch in batches {
        let sub = graph.induced_subgraph(batch);
        let a = norm::normalize_adjacency(sub.adjacency());
        let sub_part = restrict_partition(part, batch);
        let plan_f = CommPlan::build(&a, &sub_part);
        let plan_b = if sub.directed() {
            CommPlan::build(&a.transpose(), &sub_part)
        } else {
            plan_f.clone()
        };
        total_volume += plan_f.total_volume_rows();

        let m_batch: Vec<bool> = batch.iter().map(|&v| mask[v as usize]).collect();
        if !m_batch.iter().any(|&m| m) {
            // No labelled vertices sampled: skip the step (no gradient) —
            // before gathering the batch's feature rows, which would only
            // be thrown away.
            continue;
        }
        let h_batch = gather::gather_rows(h0, batch);
        let l_batch: Vec<u32> = batch.iter().map(|&v| labels[v as usize]).collect();
        let out: DistOutcome = train_with_plans_spec(
            &plan_f, &plan_b, &h_batch, &l_batch, &m_batch, config, 1, params, spec,
        );
        params = out.params;
        losses.push(out.losses[0]);
    }
    MinibatchOutcome {
        losses,
        params,
        total_volume_rows: total_volume,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargcn_graph::gen::sbm::{self, SbmParams};
    use pargcn_partition::stochastic::{sample_batches, Sampler};
    use pargcn_partition::{partition_rows, Method};

    fn setup() -> (Graph, Dense, Vec<u32>, Vec<bool>) {
        let d = sbm::generate(
            SbmParams {
                n: 240,
                classes: 4,
                features: 8,
                ..Default::default()
            },
            3,
        );
        (d.graph, d.features, d.labels, d.train_mask)
    }

    #[test]
    fn restriction_keeps_home_processors() {
        let part = Partition::new(vec![0, 1, 2, 0, 1, 2], 3);
        let sub = restrict_partition(&part, &[1, 3, 5]);
        assert_eq!(sub.assignment(), &[1, 0, 2]);
    }

    #[test]
    fn batch_volume_zero_for_single_part() {
        let (g, ..) = setup();
        let part = Partition::trivial(g.n());
        assert_eq!(batch_comm_volume(&g, &[0, 1, 2, 3, 4, 5, 6, 7], &part), 0);
    }

    #[test]
    fn minibatch_training_reduces_loss() {
        let (g, h0, labels, mask) = setup();
        let a = g.normalized_adjacency();
        let part = partition_rows(&g, &a, Method::Hp, 3, 0.1, 1);
        let batches = sample_batches(&g, Sampler::UniformVertex { batch_size: 120 }, 30, 2);
        let config = GcnConfig::two_layer(8, 12, 4);
        let out = train(&g, &h0, &labels, &mask, &part, &config, &batches, 5);
        assert!(out.losses.len() >= 25);
        let first: f64 = out.losses[..5].iter().sum::<f64>() / 5.0;
        let last: f64 = out.losses[out.losses.len() - 5..].iter().sum::<f64>() / 5.0;
        assert!(
            last < first,
            "mini-batch loss did not decrease: {first} → {last}"
        );
        assert!(out.total_volume_rows > 0);
    }

    #[test]
    fn expected_volume_sums_batches() {
        let (g, ..) = setup();
        let a = g.normalized_adjacency();
        let part = partition_rows(&g, &a, Method::Rp, 4, 0.1, 7);
        let batches = sample_batches(&g, Sampler::UniformVertex { batch_size: 60 }, 5, 8);
        let (total, per) = expected_comm_volume(&g, &batches, &part);
        assert_eq!(per.len(), 5);
        assert_eq!(total, per.iter().sum::<u64>());
        assert!(total > 0);
    }
}
