//! The distributed training algorithms: Algorithm 1 (parallel feedforward)
//! and Algorithm 2 (parallel backpropagation) over the message-passing
//! runtime, orchestrated by [`trainer`].

pub mod backprop;
pub mod feedforward;
pub mod trainer;
pub mod workspace;

pub use trainer::{train_full_batch, train_full_batch_spec, train_full_batch_threads, DistOutcome};
pub use workspace::{
    prewarm_comm_pools, reserve_epoch_queues, BatchWorkspace, EpochWorkspace, ExchangeScratch,
};

use crate::model::{GcnConfig, Params};
use crate::optim::OptimizerState;
use crate::plan::RankPlan;
use pargcn_matrix::{ComputeCtx, Dense};

/// Everything one rank holds during training: its slice of the plan and
/// data, plus the replicated parameters.
pub struct RankState<'a> {
    /// Feedforward-direction plan (pattern of `Â`).
    pub plan_f: &'a RankPlan,
    /// Backpropagation-direction plan (pattern of `Âᵀ`; same object as
    /// `plan_f` for undirected graphs).
    pub plan_b: &'a RankPlan,
    pub config: &'a GcnConfig,
    /// Replicated parameter matrices (identical on every rank).
    pub params: Params,
    /// Local block of the input features `H⁰ₘ` (borrowed — never copied
    /// into the forward pass).
    pub h0: &'a Dense,
    /// Labels of owned vertices.
    pub labels: &'a [u32],
    /// Training mask of owned vertices.
    pub mask: &'a [bool],
    /// Global count of masked vertices (loss normalizer, same on all ranks).
    pub mask_total: f64,
    /// Replicated optimizer state (kept in lock-step like the parameters).
    pub opt_state: OptimizerState,
    /// This rank's thread pool for local kernels (the paper's per-processor
    /// multithreaded GraphBLAS layer). Pooled kernels are bitwise identical
    /// to serial, so the thread count never changes results.
    pub ctx: ComputeCtx,
}

/// Local intermediates of one forward pass (per rank), living in the
/// persistent [`EpochWorkspace`] and overwritten every epoch.
pub struct LocalForward {
    /// `Z¹ₘ…Z^Lₘ` (`z[k−1]` is `Zᵏₘ`).
    pub z: Vec<Dense>,
    /// `H¹ₘ…H^Lₘ` (`h[k−1]` is `Hᵏₘ`; `H⁰ₘ` stays in
    /// [`RankState::h0`] — it never changes, so it is never copied).
    pub h: Vec<Dense>,
}

impl LocalForward {
    /// The output-layer activations `H^Lₘ`.
    pub fn output(&self) -> &Dense {
        self.h.last().expect("at least one layer")
    }
}

/// Base tag for feedforward layer messages; layer `k` uses `TAG_FWD + k`.
pub const TAG_FWD: u32 = 0;
/// Base tag for backpropagation layer messages.
pub const TAG_BWD: u32 = 4096;
