//! Algorithm 1: parallel feedforward.
//!
//! Per layer `k`, each rank:
//!
//! 1. for every selector `Xₘₙ ∈ Sₘ`, gathers the needed local `H^{k-1}`
//!    rows (`Xₘₙ ⊗ H`, here a row gather) into a pooled payload buffer
//!    and posts a **non-blocking send** to `Pₙ` (lines 3–5);
//! 2. multiplies its diagonal block against the local feature block
//!    *without waiting* (line 6 — the overlap);
//! 3. receives each peer's rows (any completion order, one mailbox drain
//!    per pass) and accumulates the off-diagonal products (lines 7–9),
//!    releasing every payload back to its sender's pool;
//! 4. applies the replicated `Wᵏ` (pure local DMM) and the activation
//!    (line 10).
//!
//! One deviation from the paper's literal pseudocode: lines 6/9 write
//! `(AₘH)Wᵏ` per contribution; we accumulate `AₘH` first and apply `Wᵏ`
//! once — algebraically identical (distributivity) and fewer DMM FLOPs.
//!
//! All layer outputs land in the persistent [`EpochWorkspace`]; a
//! steady-state forward pass allocates nothing on the comm path.

use super::workspace::{EpochWorkspace, ExchangeScratch};
use super::{RankState, TAG_FWD};
use crate::model::LayerOrder;
use pargcn_comm::RankCtx;
use pargcn_matrix::{gather, ComputeCtx, Dense};

/// Runs the full feedforward pass into `ws.fwd` (`Z¹…Z^L`, `H¹…H^L`).
/// Local kernels (SpMM/DMM/activation) run on the rank's thread pool.
pub fn run(ctx: &mut RankCtx, st: &RankState<'_>, ws: &mut EpochWorkspace) {
    let cctx = &st.ctx;
    let pool = cctx.pool();
    let layers = st.config.layers();
    for k in 1..=layers {
        let w = &st.params.weights[k - 1];
        let tag = TAG_FWD + k as u32;
        let EpochWorkspace {
            exchange,
            fwd,
            ax_f,
            hw,
            ..
        } = ws;
        let h_prev: &Dense = if k == 1 { st.h0 } else { &fwd.h[k - 2] };
        match st.config.order {
            LayerOrder::SpmmFirst => {
                let ax = &mut ax_f[k - 1];
                spmm_exchange_into(ctx, st.plan_f, h_prev, tag, cctx, exchange, ax);
                cctx.matmul_into(ax, w, &mut fwd.z[k - 1], false);
            }
            LayerOrder::DmmFirst => {
                // §4.4: transform locally first, then aggregate with the
                // *same* communication pattern (messages carry d_out-wide
                // rows instead of d_in-wide ones). The aggregate IS `Zᵏ`,
                // so the exchange accumulates straight into it.
                cctx.matmul_into(h_prev, w, &mut hw[k - 1], false);
                spmm_exchange_into(
                    ctx,
                    st.plan_f,
                    &hw[k - 1],
                    tag,
                    cctx,
                    exchange,
                    &mut fwd.z[k - 1],
                );
            }
        }
        st.config
            .activation(k)
            .apply_into_pool(&fwd.z[k - 1], &mut fwd.h[k - 1], pool);
    }
}

/// The communication core shared by feedforward (on `H`) and
/// backpropagation (on `G`): accumulates this rank's block of `A · X`
/// into `ax`, where `x_local` is the locally-owned row block of `X`.
///
/// Payloads are drawn from and returned to the runtime's buffer pools,
/// arrivals are staged in `scratch`, and the output lands in the
/// caller-provided accumulator — after warmup the whole exchange touches
/// no allocator.
pub fn spmm_exchange_into(
    ctx: &mut RankCtx,
    plan: &crate::plan::RankPlan,
    x_local: &Dense,
    tag: u32,
    cctx: &ComputeCtx,
    scratch: &mut ExchangeScratch,
    ax: &mut Dense,
) {
    let d = x_local.cols();
    assert_eq!(ax.rows(), plan.n_local(), "exchange accumulator rows");
    assert_eq!(ax.cols(), d, "exchange accumulator cols");

    // Lines 3–5: gather and non-blocking-send the rows each peer needs,
    // each payload recycled from the pool of its destination.
    for ss in &plan.send {
        let mut payload = ctx.acquire(ss.peer, ss.local_indices.len() * d);
        gather::gather_rows_into(x_local, &ss.local_indices, &mut payload);
        ctx.isend(ss.peer, tag, payload);
    }

    // Line 6: local block product, overlapping the in-flight messages.
    cctx.spmm_into(&plan.a_own, x_local, ax, false);

    // Lines 7–9: drain receives eagerly (any completion order), but
    // *accumulate* strictly in plan order. Remote blocks overlap on output
    // rows, and float addition is not associative, so summing in arrival
    // order would let thread scheduling leak into the results — the
    // repeated-runs-bitwise-identical guarantee the tests pin down.
    //
    // Each pass drains the whole mailbox with one `try_recv_any` sweep
    // (instead of probing every peer individually), folds every in-order
    // block that has landed, and only then blocks — on *any* next arrival,
    // since exactly the planned peers send under this tag.
    scratch.begin(plan);
    let n_blocks = plan.a_remote.len();
    let mut next = 0;
    while next < n_blocks {
        while let Some((from, payload)) = ctx.try_recv_any(tag) {
            let slot = scratch.slot_of(from);
            debug_assert!(scratch.arrived[slot].is_none(), "duplicate block payload");
            scratch.arrived[slot] = Some(payload);
        }
        let mut progressed = false;
        while next < n_blocks {
            let Some(payload) = scratch.arrived[next].take() else {
                break;
            };
            accumulate_block(ctx, plan, next, payload, d, ax, cctx);
            next += 1;
            progressed = true;
        }
        if !progressed {
            // Nothing in order yet: park until any planned payload lands
            // rather than spinning over try_recv.
            let (from, payload) = ctx.recv_any(tag);
            let slot = scratch.slot_of(from);
            debug_assert!(scratch.arrived[slot].is_none(), "duplicate block payload");
            scratch.arrived[slot] = Some(payload);
        }
    }
}

/// Folds remote block `i`'s payload into `ax` and recycles the buffer
/// back to its sender — a zero-copy view via `Dense::from_vec`/`into_vec`.
fn accumulate_block(
    ctx: &mut RankCtx,
    plan: &crate::plan::RankPlan,
    i: usize,
    payload: Vec<f32>,
    d: usize,
    ax: &mut Dense,
    cctx: &ComputeCtx,
) {
    let block = &plan.a_remote[i];
    let x_recv = Dense::from_vec(block.rows.len(), d, payload);
    cctx.spmm_into(&block.a, &x_recv, ax, true);
    ctx.release(block.peer, x_recv.into_vec());
}

/// As [`spmm_exchange_into`] with freshly allocated scratch and output
/// (used directly by tests; the trainers keep persistent versions).
pub fn spmm_exchange_with_plan(
    ctx: &mut RankCtx,
    plan: &crate::plan::RankPlan,
    x_local: &Dense,
    tag: u32,
    cctx: &ComputeCtx,
) -> Dense {
    let mut scratch = ExchangeScratch::new(ctx.p());
    let mut ax = Dense::zeros(plan.n_local(), x_local.cols());
    spmm_exchange_into(ctx, plan, x_local, tag, cctx, &mut scratch, &mut ax);
    ax
}
