//! Algorithm 1: parallel feedforward.
//!
//! Per layer `k`, each rank:
//!
//! 1. for every selector `Xₘₙ ∈ Sₘ`, gathers the needed local `H^{k-1}`
//!    rows (`Xₘₙ ⊗ H`, here a row gather) and posts a **non-blocking send**
//!    to `Pₙ` (lines 3–5);
//! 2. multiplies its diagonal block against the local feature block
//!    *without waiting* (line 6 — the overlap);
//! 3. receives each peer's rows (any completion order, via `try_recv`
//!    draining) and accumulates the off-diagonal products (lines 7–9);
//! 4. applies the replicated `Wᵏ` (pure local DMM) and the activation
//!    (line 10).
//!
//! One deviation from the paper's literal pseudocode: lines 6/9 write
//! `(AₘH)Wᵏ` per contribution; we accumulate `AₘH` first and apply `Wᵏ`
//! once — algebraically identical (distributivity) and fewer DMM FLOPs.

use super::{LocalForward, RankState, TAG_FWD};
use crate::model::LayerOrder;
use pargcn_comm::RankCtx;
use pargcn_matrix::{gather, Dense};
use pargcn_util::pool::Pool;

/// Runs the full feedforward pass, returning local intermediates. Local
/// kernels (SpMM/DMM/activation) run on the rank's thread pool.
pub fn run(ctx: &mut RankCtx, st: &RankState<'_>) -> LocalForward {
    let pool = st.ctx.pool();
    let layers = st.config.layers();
    let mut z = Vec::with_capacity(layers);
    let mut h = Vec::with_capacity(layers + 1);
    h.push(st.h0.clone());
    for k in 1..=layers {
        let w = &st.params.weights[k - 1];
        let zk = match st.config.order {
            LayerOrder::SpmmFirst => {
                let ah = spmm_exchange(ctx, st, &h[k - 1], TAG_FWD + k as u32);
                ah.matmul_pool(w, pool)
            }
            LayerOrder::DmmFirst => {
                // §4.4: transform locally first, then aggregate with the
                // *same* communication pattern (messages carry d_out-wide
                // rows instead of d_in-wide ones).
                let hw = h[k - 1].matmul_pool(w, pool);
                spmm_exchange(ctx, st, &hw, TAG_FWD + k as u32)
            }
        };
        let hk = st.config.activation(k).apply_pool(&zk, pool);
        z.push(zk);
        h.push(hk);
    }
    LocalForward { z, h }
}

/// The communication core shared by feedforward (on `H`) and
/// backpropagation (on `G`): computes this rank's block of `A · X` where
/// `x_local` is the locally-owned row block of `X`.
pub fn spmm_exchange(ctx: &mut RankCtx, st: &RankState<'_>, x_local: &Dense, tag: u32) -> Dense {
    spmm_exchange_with_plan(
        ctx,
        if tag >= super::TAG_BWD {
            st.plan_b
        } else {
            st.plan_f
        },
        x_local,
        tag,
        st.ctx.pool(),
    )
}

/// As [`spmm_exchange`] with an explicit plan and pool (used directly by
/// tests and the SGC sweep).
pub fn spmm_exchange_with_plan(
    ctx: &mut RankCtx,
    plan: &crate::plan::RankPlan,
    x_local: &Dense,
    tag: u32,
    pool: &Pool,
) -> Dense {
    let d = x_local.cols();

    // Lines 3–5: gather and non-blocking-send the rows each peer needs.
    let mut payload = Vec::new();
    for ss in &plan.send {
        gather::gather_rows_into(x_local, &ss.local_indices, &mut payload);
        ctx.isend(ss.peer, tag, std::mem::take(&mut payload));
    }

    // Line 6: local block product, overlapping the in-flight messages.
    let mut ax = Dense::zeros(plan.n_local(), d);
    plan.a_own.spmm_into_pool(x_local, &mut ax, true, pool);

    // Lines 7–9: drain receives eagerly (any completion order), but
    // *accumulate* strictly in plan order. Remote blocks overlap on output
    // rows, and float addition is not associative, so summing in arrival
    // order would let thread scheduling leak into the results — the
    // repeated-runs-bitwise-identical guarantee the tests pin down.
    let mut arrived: Vec<Option<Dense>> = (0..plan.a_remote.len()).map(|_| None).collect();
    let mut next = 0;
    while next < plan.a_remote.len() {
        let mut progressed = false;
        for (i, block) in plan.a_remote.iter().enumerate().skip(next) {
            if arrived[i].is_none() {
                if let Some(data) = ctx.try_recv(block.peer, tag) {
                    arrived[i] = Some(Dense::from_vec(block.rows.len(), d, data));
                }
            }
        }
        while next < plan.a_remote.len() {
            let Some(x_recv) = arrived[next].take() else {
                break;
            };
            plan.a_remote[next]
                .a
                .spmm_into_pool(&x_recv, &mut ax, true, pool);
            next += 1;
            progressed = true;
        }
        if !progressed {
            // The next in-order block hasn't landed: block on it instead of
            // spinning (keeps the thread-based runtime efficient).
            let block = &plan.a_remote[next];
            let data = ctx.recv(block.peer, tag);
            let x_recv = Dense::from_vec(block.rows.len(), d, data);
            block.a.spmm_into_pool(&x_recv, &mut ax, true, pool);
            next += 1;
        }
    }
    ax
}
