//! Persistent per-rank training workspaces.
//!
//! Every buffer one rank needs across a training run — the `A·X`
//! accumulators of the SpMM exchange, the arrived-payload slots, the
//! forward intermediates `Z`/`H`, the backward gradient-flow matrices —
//! is allocated *once* here and reused across layers, epochs,
//! feedforward and backpropagation. Together with the comm runtime's
//! payload pools (`pargcn_comm::bufpool`, pre-warmed by
//! [`prewarm_comm_pools`]) this makes the steady-state epoch loop free of
//! heap allocation on its communication path, which the
//! counting-allocator test (`no_alloc_steady_state`) pins down.

use super::LocalForward;
use crate::model::{GcnConfig, LayerOrder};
use crate::plan::RankPlan;
use pargcn_comm::RankCtx;
use pargcn_matrix::{ComputeCtx, Dense};

/// Scratch state of one in-flight [`spmm_exchange_into`] call: a slot per
/// remote block for payloads that arrived out of plan order, plus the
/// peer → slot map. Reused across every exchange of a run (forward and
/// backward plans may have different receive sets; `begin` re-keys it).
///
/// [`spmm_exchange_into`]: super::feedforward::spmm_exchange_into
pub struct ExchangeScratch {
    /// `arrived[i]` buffers the payload of remote block `i` until every
    /// earlier block has been folded (plan-order accumulation).
    pub(crate) arrived: Vec<Option<Vec<f32>>>,
    /// Peer rank → remote-block index for the current exchange.
    pub(crate) peer_slot: Vec<u32>,
}

impl ExchangeScratch {
    /// Scratch for a `p`-rank job.
    pub fn new(p: usize) -> Self {
        ExchangeScratch {
            arrived: Vec::new(),
            peer_slot: vec![u32::MAX; p],
        }
    }

    /// Re-keys the scratch for an exchange over `plan`. Allocation-free
    /// once `arrived` has grown to the largest receive set.
    pub(crate) fn begin(&mut self, plan: &RankPlan) {
        self.arrived.clear();
        self.arrived.resize_with(plan.a_remote.len(), || None);
        for (i, block) in plan.a_remote.iter().enumerate() {
            self.peer_slot[block.peer] = i as u32;
        }
    }

    #[inline]
    pub(crate) fn slot_of(&self, peer: usize) -> usize {
        let s = self.peer_slot[peer];
        debug_assert_ne!(s, u32::MAX, "message from a peer outside the plan");
        s as usize
    }
}

/// All persistent matrices one rank reuses every epoch.
pub struct EpochWorkspace {
    /// Exchange scratch shared by every layer in both directions.
    pub exchange: ExchangeScratch,
    /// Forward intermediates `Z¹…Z^L` / `H¹…H^L` (`H⁰` stays in
    /// `RankState`, never copied).
    pub fwd: LocalForward,
    /// Forward exchange accumulators (SpmmFirst only): `ax_f[k−1]` holds
    /// this rank's block of `Â·H^{k-1}`. DmmFirst aggregates straight
    /// into `fwd.z`, so the list is empty there.
    pub ax_f: Vec<Dense>,
    /// Backward exchange accumulators: `ax_b[k−1]` holds `(Â'Gᵏ)ₘ`.
    pub ax_b: Vec<Dense>,
    /// DmmFirst-only scratch for the local `H^{k-1}·Wᵏ` products.
    pub hw: Vec<Dense>,
    /// Backward gradient flow: `g[k−1]` holds `Gᵏ`.
    pub g: Vec<Dense>,
    /// Parameter-gradient partials/sums: `dw[k−1]` holds `ΔWᵏ`.
    pub dw: Vec<Dense>,
    /// Output-layer loss gradient `∇_{H^L} Jₘ`.
    pub grad: Dense,
}

impl EpochWorkspace {
    /// Allocates every buffer training needs for one rank of a `p`-rank
    /// job, sized from the plan and model shape, and pre-sizes the
    /// compute context's kernel packing scratch for the run's widest
    /// operands. Called once per run, before the first epoch.
    pub fn new(plan: &RankPlan, config: &GcnConfig, p: usize, cctx: &ComputeCtx) -> Self {
        let n = plan.n_local();
        let dims = &config.dims;
        let layers = config.layers();
        // The blocked GEMM engine packs its widest B operand (≤ dmax²
        // floats for the weight-shaped operands, ≤ n·dmax for the
        // activation-shaped ones); grow the shared scratch to that once,
        // here, so steady-state kernel calls stay allocation-free
        // (DESIGN.md §9).
        let dmax = dims.iter().copied().max().unwrap_or(0);
        cctx.reserve_pack(n.max(dmax) * dmax);
        let zeros = |d: usize| Dense::zeros(n, d);
        EpochWorkspace {
            exchange: ExchangeScratch::new(p),
            fwd: LocalForward {
                z: (1..=layers).map(|k| zeros(dims[k])).collect(),
                h: (1..=layers).map(|k| zeros(dims[k])).collect(),
            },
            ax_f: match config.order {
                LayerOrder::SpmmFirst => (1..=layers).map(|k| zeros(dims[k - 1])).collect(),
                LayerOrder::DmmFirst => Vec::new(),
            },
            ax_b: (1..=layers).map(|k| zeros(dims[k])).collect(),
            hw: match config.order {
                LayerOrder::SpmmFirst => Vec::new(),
                LayerOrder::DmmFirst => (1..=layers).map(|k| zeros(dims[k])).collect(),
            },
            g: (1..=layers).map(|k| zeros(dims[k])).collect(),
            dw: (1..=layers)
                .map(|k| Dense::zeros(dims[k - 1], dims[k]))
                .collect(),
            grad: zeros(dims[layers]),
        }
    }
}

/// Pre-fills this rank's payload pools so every steady-state `acquire`
/// is a hit: two buffers per point-to-point destination (one in flight,
/// one still travelling back from the previous layer — the FIFO
/// non-overtaking argument in DESIGN.md §9 bounds the outstanding count
/// at two) sized for the widest layer, plus two per binomial-tree
/// collective neighbour sized for the largest `ΔW` payload.
pub fn prewarm_comm_pools(
    ctx: &mut RankCtx,
    plan_f: &RankPlan,
    plan_b: &RankPlan,
    config: &GcnConfig,
) {
    let wmax = config.dims.iter().copied().max().unwrap_or(0);
    for ss in plan_f.send.iter().chain(&plan_b.send) {
        ctx.prewarm(ss.peer, 2, ss.local_indices.len() * wmax);
    }
    let dw_max = (0..config.layers())
        .map(|k| config.dims[k] * config.dims[k + 1])
        .max()
        .unwrap_or(1);
    ctx.prewarm_collectives(2, dw_max);
    // Queue depth at this rank is bounded by one epoch's worth of
    // inbound traffic (the per-layer allreduces stop senders running
    // further ahead): per layer, one forward and one backward exchange
    // of the plans' remote-block counts, plus up to 2·⌈log₂ p⌉ tree
    // hops per allreduce. Reserve twice that so no interleaving can
    // grow a queue mid-epoch.
    let log2p = ctx.p().next_power_of_two().trailing_zeros() as usize;
    let per_epoch =
        config.layers() * (plan_f.a_remote.len() + plan_b.a_remote.len() + 2 * log2p + 2);
    ctx.reserve_queues(2 * per_epoch + 8);
}
