//! Persistent per-rank training workspaces.
//!
//! Every buffer one rank needs across a training run — the `A·X`
//! accumulators of the SpMM exchange, the arrived-payload slots, the
//! forward intermediates `Z`/`H`, the backward gradient-flow matrices —
//! is allocated *once* here and reused across layers, epochs,
//! feedforward and backpropagation. Together with the comm runtime's
//! payload pools (`pargcn_comm::bufpool`, pre-warmed by
//! [`prewarm_comm_pools`]) this makes the steady-state epoch loop free of
//! heap allocation on its communication path, which the
//! counting-allocator test (`no_alloc_steady_state`) pins down.

use super::LocalForward;
use crate::model::{GcnConfig, LayerOrder};
use crate::plan::RankPlan;
use pargcn_comm::RankCtx;
use pargcn_matrix::{ComputeCtx, Dense};

/// Scratch state of one in-flight [`spmm_exchange_into`] call: a slot per
/// remote block for payloads that arrived out of plan order, plus the
/// peer → slot map. Reused across every exchange of a run (forward and
/// backward plans may have different receive sets; `begin` re-keys it).
///
/// [`spmm_exchange_into`]: super::feedforward::spmm_exchange_into
pub struct ExchangeScratch {
    /// `arrived[i]` buffers the payload of remote block `i` until every
    /// earlier block has been folded (plan-order accumulation).
    pub(crate) arrived: Vec<Option<Vec<f32>>>,
    /// Peer rank → remote-block index for the current exchange.
    pub(crate) peer_slot: Vec<u32>,
}

impl ExchangeScratch {
    /// Scratch for a `p`-rank job.
    pub fn new(p: usize) -> Self {
        ExchangeScratch {
            arrived: Vec::new(),
            peer_slot: vec![u32::MAX; p],
        }
    }

    /// Re-keys the scratch for an exchange over `plan`. Allocation-free
    /// once `arrived` has grown to the largest receive set.
    pub(crate) fn begin(&mut self, plan: &RankPlan) {
        self.arrived.clear();
        self.arrived.resize_with(plan.a_remote.len(), || None);
        for (i, block) in plan.a_remote.iter().enumerate() {
            self.peer_slot[block.peer] = i as u32;
        }
    }

    #[inline]
    pub(crate) fn slot_of(&self, peer: usize) -> usize {
        let s = self.peer_slot[peer];
        debug_assert_ne!(s, u32::MAX, "message from a peer outside the plan");
        s as usize
    }
}

/// All persistent matrices one rank reuses every epoch.
pub struct EpochWorkspace {
    /// Exchange scratch shared by every layer in both directions.
    pub exchange: ExchangeScratch,
    /// Forward intermediates `Z¹…Z^L` / `H¹…H^L` (`H⁰` stays in
    /// `RankState`, never copied).
    pub fwd: LocalForward,
    /// Forward exchange accumulators (SpmmFirst only): `ax_f[k−1]` holds
    /// this rank's block of `Â·H^{k-1}`. DmmFirst aggregates straight
    /// into `fwd.z`, so the list is empty there.
    pub ax_f: Vec<Dense>,
    /// Backward exchange accumulators: `ax_b[k−1]` holds `(Â'Gᵏ)ₘ`.
    pub ax_b: Vec<Dense>,
    /// DmmFirst-only scratch for the local `H^{k-1}·Wᵏ` products.
    pub hw: Vec<Dense>,
    /// Backward gradient flow: `g[k−1]` holds `Gᵏ`.
    pub g: Vec<Dense>,
    /// Parameter-gradient partials/sums: `dw[k−1]` holds `ΔWᵏ`.
    pub dw: Vec<Dense>,
    /// Output-layer loss gradient `∇_{H^L} Jₘ`.
    pub grad: Dense,
    /// Softmax probabilities of the loss path (`softmax_rows_into`
    /// target), so computing the epoch loss allocates nothing.
    pub probs: Dense,
}

impl EpochWorkspace {
    /// Allocates every buffer training needs for one rank of a `p`-rank
    /// job, sized from the plan and model shape, and pre-sizes the
    /// compute context's kernel packing scratch for the run's widest
    /// operands. Called once per run, before the first epoch.
    pub fn new(plan: &RankPlan, config: &GcnConfig, p: usize, cctx: &ComputeCtx) -> Self {
        let n = plan.n_local();
        let dims = &config.dims;
        let layers = config.layers();
        // The blocked GEMM engine packs its widest B operand (≤ dmax²
        // floats for the weight-shaped operands, ≤ n·dmax for the
        // activation-shaped ones); grow the shared scratch to that once,
        // here, so steady-state kernel calls stay allocation-free
        // (DESIGN.md §9).
        let dmax = dims.iter().copied().max().unwrap_or(0);
        cctx.reserve_pack(n.max(dmax) * dmax);
        let zeros = |d: usize| Dense::zeros(n, d);
        EpochWorkspace {
            exchange: ExchangeScratch::new(p),
            fwd: LocalForward {
                z: (1..=layers).map(|k| zeros(dims[k])).collect(),
                h: (1..=layers).map(|k| zeros(dims[k])).collect(),
            },
            ax_f: match config.order {
                LayerOrder::SpmmFirst => (1..=layers).map(|k| zeros(dims[k - 1])).collect(),
                LayerOrder::DmmFirst => Vec::new(),
            },
            ax_b: (1..=layers).map(|k| zeros(dims[k])).collect(),
            hw: match config.order {
                LayerOrder::SpmmFirst => Vec::new(),
                LayerOrder::DmmFirst => (1..=layers).map(|k| zeros(dims[k])).collect(),
            },
            g: (1..=layers).map(|k| zeros(dims[k])).collect(),
            dw: (1..=layers)
                .map(|k| Dense::zeros(dims[k - 1], dims[k]))
                .collect(),
            grad: zeros(dims[layers]),
            probs: zeros(dims[layers]),
        }
    }

    /// Re-dimensions every row-sized buffer for a plan with a different
    /// local row count (the mini-batch engine's per-batch call). Column
    /// widths are fixed by the model config, `dw` is row-count-independent,
    /// and `exchange` is re-keyed by its own `begin`; everything row-sized
    /// grows once to the high-water batch and is fully overwritten before
    /// being read (the same argument that makes cross-epoch reuse bitwise
    /// safe), so steady-state batches of bounded size allocate nothing.
    pub fn resize_for_plan(&mut self, plan: &RankPlan, config: &GcnConfig, cctx: &ComputeCtx) {
        let n = plan.n_local();
        let dmax = config.dims.iter().copied().max().unwrap_or(0);
        cctx.reserve_pack(n.max(dmax) * dmax);
        for m in self
            .fwd
            .z
            .iter_mut()
            .chain(self.fwd.h.iter_mut())
            .chain(self.ax_f.iter_mut())
            .chain(self.ax_b.iter_mut())
            .chain(self.hw.iter_mut())
            .chain(self.g.iter_mut())
        {
            m.resize_rows(n);
        }
        self.grad.resize_rows(n);
        self.probs.resize_rows(n);
    }
}

/// A grow-once [`EpochWorkspace`] for the mini-batch engine: created on
/// the first batch, row-resized (high-water-marked) for every later one,
/// so a steady stream of bounded-size batches trains without workspace
/// allocation (DESIGN.md §11).
#[derive(Default)]
pub struct BatchWorkspace {
    ws: Option<EpochWorkspace>,
}

impl BatchWorkspace {
    pub fn new() -> Self {
        BatchWorkspace::default()
    }

    /// The workspace sized for `plan`, creating it on first use.
    pub fn begin_batch(
        &mut self,
        plan: &RankPlan,
        config: &GcnConfig,
        p: usize,
        cctx: &ComputeCtx,
    ) -> &mut EpochWorkspace {
        match &mut self.ws {
            slot @ None => slot.insert(EpochWorkspace::new(plan, config, p, cctx)),
            Some(ws) => {
                ws.resize_for_plan(plan, config, cctx);
                ws
            }
        }
    }
}

/// Pre-fills this rank's payload pools so every steady-state `acquire`
/// is a hit: two buffers per point-to-point destination (one in flight,
/// one still travelling back from the previous layer — the FIFO
/// non-overtaking argument in DESIGN.md §9 bounds the outstanding count
/// at two) sized for the widest layer, plus two per binomial-tree
/// collective neighbour sized for the largest `ΔW` payload.
///
/// Idempotent (`ensure_pool` tops up instead of accreting), so callers
/// with a *stream* of plans — the mini-batch engine, one plan per batch
/// — call this at every step boundary: each batch gets its own analytic
/// worst case, pools grow only when the stream hits a new high-water
/// batch, and steady state stays provably allocation-free rather than
/// relying on timing-dependent grow-on-miss convergence.
pub fn prewarm_comm_pools(
    ctx: &mut RankCtx,
    plan_f: &RankPlan,
    plan_b: &RankPlan,
    config: &GcnConfig,
) {
    let wmax = config.dims.iter().copied().max().unwrap_or(0);
    for ss in plan_f.send.iter().chain(&plan_b.send) {
        ctx.ensure_pool(ss.peer, 2, ss.local_indices.len() * wmax);
    }
    let dw_max = (0..config.layers())
        .map(|k| config.dims[k] * config.dims[k + 1])
        .max()
        .unwrap_or(1);
    ctx.ensure_collectives(2, dw_max);
    reserve_epoch_queues(ctx, plan_f, plan_b, config);
}

/// Pre-sizes this rank's inbound queues for one epoch under the given
/// plans. Split from [`prewarm_comm_pools`] because `prewarm` *accretes*
/// pool buffers (calling it per batch would grow the pools without bound)
/// while queue reservation is idempotent — the mini-batch engine prewarms
/// once per session and re-reserves queues per batch as plans change.
pub fn reserve_epoch_queues(
    ctx: &mut RankCtx,
    plan_f: &RankPlan,
    plan_b: &RankPlan,
    config: &GcnConfig,
) {
    // Queue depth at this rank is bounded by one epoch's worth of
    // inbound traffic (the per-layer allreduces stop senders running
    // further ahead): per layer, one forward and one backward exchange
    // of the plans' remote-block counts, plus up to 2·⌈log₂ p⌉ tree
    // hops per allreduce. Reserve twice that so no interleaving can
    // grow a queue mid-epoch.
    let log2p = ctx.p().next_power_of_two().trailing_zeros() as usize;
    let per_epoch =
        config.layers() * (plan_f.a_remote.len() + plan_b.a_remote.len() + 2 * log2p + 2);
    ctx.reserve_queues(2 * per_epoch + 8);
}
