//! Algorithm 2: parallel backpropagation.
//!
//! Per layer `k = L…1`, each rank:
//!
//! 1. exchanges `Gᵏ` rows with the same non-blocking point-to-point pattern
//!    as feedforward (lines 4–10), computing its block of `Â'Gᵏ` where
//!    `Â' = Âᵀ` for directed graphs (§3.1) and `Â` otherwise;
//! 2. forms `Sᵏₘ = (Â'Gᵏ)ₘ(Wᵏ)ᵀ` and the local parameter-gradient partial
//!    `ΔWᵏₘ = (H^{k-1}ₘ)ᵀ(Â'Gᵏ)ₘ` (lines 7, 10–12) — both pure local DMMs
//!    because `(Â'Gᵏ)ₘ` was just computed and `H` is conformably
//!    partitioned;
//! 3. allreduce-sums `ΔWᵏ` (line 13) and applies the SGD update locally on
//!    the replicated `Wᵏ` (line 14) — every rank computes the identical
//!    update, keeping the replicas in lock-step;
//! 4. propagates `G^{k-1} = Sᵏ ⊙ σ'(Z^{k-1})` (line 11).

use super::{feedforward, LocalForward, RankState, TAG_BWD};
use pargcn_comm::RankCtx;
use pargcn_matrix::Dense;

/// Runs backpropagation from the local output-layer loss gradient
/// `∇_{H^L} Jₘ`, updating `st.params` in place (identically on all ranks).
/// Returns the local gradient flow for inspection by tests.
pub fn run(ctx: &mut RankCtx, st: &mut RankState<'_>, fwd: &LocalForward, grad_hl_local: &Dense) {
    // Cheap Arc clone so the pool stays usable across `&mut st` updates.
    let cctx = st.ctx.clone();
    let pool = cctx.pool();
    let layers = st.config.layers();
    // Line 2: G^L = ∇_{H^L} J ⊙ σ'(Z^L).
    let mut g = grad_hl_local.hadamard(
        &st.config
            .activation(layers)
            .derivative_pool(&fwd.z[layers - 1], pool),
    );

    for k in (1..=layers).rev() {
        // Lines 4–10: the point-to-point exchange computing (Â'Gᵏ)ₘ.
        let ag = feedforward::spmm_exchange_with_plan(ctx, st.plan_b, &g, TAG_BWD + k as u32, pool);

        // Line 12: local partial ΔWᵏₘ = (H^{k-1}ₘ)ᵀ (Â'Gᵏ)ₘ.
        let mut delta_w = fwd.h[k - 1].matmul_at_pool(&ag, pool);

        // Sᵏ must use the *pre-update* Wᵏ (line 7 precedes line 14).
        let s = if k > 1 {
            Some(ag.matmul_bt_pool(&st.params.weights[k - 1], pool))
        } else {
            None
        };

        // Line 13: ΔWᵏ = allreduce-sum(ΔWᵏₘ) — deterministic rank-order sum.
        ctx.allreduce_sum(delta_w.data_mut());

        // Line 14: replicated parameter update (SGD or Adam; the optimizer
        // state is replicated and deterministic, so replicas stay in step).
        st.opt_state.apply(
            k - 1,
            &mut st.params.weights[k - 1],
            &delta_w,
            st.config.learning_rate,
        );

        // Line 11: G^{k-1} = Sᵏ ⊙ σ'(Z^{k-1}).
        if let Some(s) = s {
            g = s.hadamard(
                &st.config
                    .activation(k - 1)
                    .derivative_pool(&fwd.z[k - 2], pool),
            );
        }
    }
    st.opt_state.advance();
}
