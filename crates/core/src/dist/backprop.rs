//! Algorithm 2: parallel backpropagation.
//!
//! Per layer `k = L…1`, each rank:
//!
//! 1. exchanges `Gᵏ` rows with the same non-blocking point-to-point pattern
//!    as feedforward (lines 4–10), computing its block of `Â'Gᵏ` where
//!    `Â' = Âᵀ` for directed graphs (§3.1) and `Â` otherwise;
//! 2. forms `Sᵏₘ = (Â'Gᵏ)ₘ(Wᵏ)ᵀ` and the local parameter-gradient partial
//!    `ΔWᵏₘ = (H^{k-1}ₘ)ᵀ(Â'Gᵏ)ₘ` (lines 7, 10–12) — both pure local DMMs
//!    because `(Â'Gᵏ)ₘ` was just computed and `H` is conformably
//!    partitioned;
//! 3. allreduce-sums `ΔWᵏ` (line 13, binomial tree) and applies the SGD
//!    update locally on the replicated `Wᵏ` (line 14) — every rank computes
//!    the identical update, keeping the replicas in lock-step;
//! 4. propagates `G^{k-1} = Sᵏ ⊙ σ'(Z^{k-1})` (line 11).
//!
//! The forward intermediates are read from, and the gradient flow written
//! to, the persistent [`EpochWorkspace`] — including the (small, `d×d`)
//! `ΔW` partials, so a steady-state epoch allocates no matrices at all.

use super::workspace::EpochWorkspace;
use super::{feedforward, RankState, TAG_BWD};

/// Runs backpropagation from the local output-layer loss gradient
/// `∇_{H^L} Jₘ` (in `ws.grad`, filled by the loss), updating `st.params`
/// in place (identically on all ranks).
pub fn run(ctx: &mut pargcn_comm::RankCtx, st: &mut RankState<'_>, ws: &mut EpochWorkspace) {
    // Cheap Arc clone so the pool stays usable across `&mut st` updates.
    let cctx = st.ctx.clone();
    let pool = cctx.pool();
    let layers = st.config.layers();

    // Line 2: G^L = ∇_{H^L} J ⊙ σ'(Z^L), built in place: σ' lands in the
    // persistent G^L buffer, then the loss gradient multiplies on.
    st.config.activation(layers).derivative_into_pool(
        &ws.fwd.z[layers - 1],
        &mut ws.g[layers - 1],
        pool,
    );
    ws.g[layers - 1].hadamard_assign(&ws.grad);

    for k in (1..=layers).rev() {
        let EpochWorkspace {
            exchange,
            fwd,
            ax_b,
            g,
            dw,
            ..
        } = ws;

        // Lines 4–10: the point-to-point exchange computing (Â'Gᵏ)ₘ.
        feedforward::spmm_exchange_into(
            ctx,
            st.plan_b,
            &g[k - 1],
            TAG_BWD + k as u32,
            &cctx,
            exchange,
            &mut ax_b[k - 1],
        );
        let ag = &ax_b[k - 1];

        // Line 12: local partial ΔWᵏₘ = (H^{k-1}ₘ)ᵀ (Â'Gᵏ)ₘ. `H⁰` lives in
        // the rank state; later inputs in the forward workspace.
        let h_in = if k == 1 { st.h0 } else { &fwd.h[k - 2] };
        cctx.matmul_at_into(h_in, ag, &mut dw[k - 1]);

        // Sᵏ must use the *pre-update* Wᵏ (line 7 precedes line 14); it
        // overwrites G^{k-1}'s buffer, which is dead from here on.
        if k > 1 {
            cctx.matmul_bt_into(ag, &st.params.weights[k - 1], &mut g[k - 2]);
        }

        // Line 13: ΔWᵏ = allreduce-sum(ΔWᵏₘ) — binomial tree with a fixed
        // fold order, bitwise deterministic.
        ctx.allreduce_sum(dw[k - 1].data_mut());

        // Line 14: replicated parameter update (SGD or Adam; the optimizer
        // state is replicated and deterministic, so replicas stay in step).
        st.opt_state.apply(
            k - 1,
            &mut st.params.weights[k - 1],
            &dw[k - 1],
            st.config.learning_rate,
        );

        // Line 11: G^{k-1} = Sᵏ ⊙ σ'(Z^{k-1}), finished in place.
        if k > 1 {
            let deriv_scratch = &mut ws.ax_b[k - 2];
            st.config
                .activation(k - 1)
                .derivative_into_pool(&ws.fwd.z[k - 2], deriv_scratch, pool);
            ws.g[k - 2].hadamard_assign(deriv_scratch);
        }
    }
    st.opt_state.advance();
}
