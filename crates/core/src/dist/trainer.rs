//! Orchestration of distributed full-batch training: builds the plans,
//! distributes the data, spawns the ranks, and assembles global results.

use super::workspace::{prewarm_comm_pools, EpochWorkspace};
use super::{backprop, feedforward, RankState};
use crate::loss;
use crate::model::{GcnConfig, Params};
use crate::plan::CommPlan;
use pargcn_comm::RankCtx;
use pargcn_comm::{CommCounters, Communicator};
use pargcn_graph::Graph;
use pargcn_matrix::{gather, ComputeCtx, ComputeSpec, Dense};
use pargcn_partition::Partition;
use std::time::Instant;

/// Global results of a distributed training run.
pub struct DistOutcome {
    /// Per-epoch global training loss (identical on every rank).
    pub losses: Vec<f64>,
    /// Final parameters (replicated; taken from rank 0).
    pub params: Params,
    /// Output-layer logits for every vertex, assembled in global order.
    pub predictions: Dense,
    /// Per-rank communication counters, accumulated over all epochs.
    pub counters: Vec<CommCounters>,
    /// Per-rank wall-clock seconds spent training (excluding plan build).
    pub rank_seconds: Vec<f64>,
}

impl DistOutcome {
    /// Slowest rank's wall time — the parallel running time.
    pub fn wall_seconds(&self) -> f64 {
        self.rank_seconds.iter().copied().fold(0.0, f64::max)
    }
}

struct RankResult {
    pred: Dense,
    counters: CommCounters,
    losses: Vec<f64>,
    params: Params,
    seconds: f64,
}

/// Trains an L-layer GCN for `epochs` full-batch epochs on `p` ranks
/// (one OS thread per rank, plus each rank's kernel thread pool sized by
/// `PARGCN_THREADS` / `available_parallelism / p`), with masked softmax
/// cross-entropy.
///
/// Functionally equivalent to [`crate::serial::SerialTrainer`] with the
/// same `param_seed` — that equivalence, for arbitrary partitions, is the
/// correctness contract of the whole algorithm and is enforced by the
/// test-suite.
// The training entry points take the full problem description by design;
// a config struct would just rename the eight pieces.
#[allow(clippy::too_many_arguments)]
pub fn train_full_batch(
    graph: &Graph,
    h0: &Dense,
    labels: &[u32],
    mask: &[bool],
    part: &Partition,
    config: &GcnConfig,
    epochs: usize,
    param_seed: u64,
) -> DistOutcome {
    train_full_batch_threads(
        graph, h0, labels, mask, part, config, epochs, param_seed, None,
    )
}

/// As [`train_full_batch`] with an explicit per-rank kernel thread count
/// (`None` = `PARGCN_THREADS` env, else `available_parallelism / p`). The
/// thread count never changes results: pooled kernels are bitwise
/// identical to serial (see the determinism test-suite).
#[allow(clippy::too_many_arguments)]
pub fn train_full_batch_threads(
    graph: &Graph,
    h0: &Dense,
    labels: &[u32],
    mask: &[bool],
    part: &Partition,
    config: &GcnConfig,
    epochs: usize,
    param_seed: u64,
    threads: Option<usize>,
) -> DistOutcome {
    train_full_batch_spec(
        graph,
        h0,
        labels,
        mask,
        part,
        config,
        epochs,
        param_seed,
        ComputeSpec::threads(threads),
    )
}

/// As [`train_full_batch`] with a full per-rank compute spec (thread
/// count and kernel engine). Neither choice ever changes results: all
/// engines and pool splits are bitwise identical (determinism suite).
#[allow(clippy::too_many_arguments)]
pub fn train_full_batch_spec(
    graph: &Graph,
    h0: &Dense,
    labels: &[u32],
    mask: &[bool],
    part: &Partition,
    config: &GcnConfig,
    epochs: usize,
    param_seed: u64,
    spec: ComputeSpec,
) -> DistOutcome {
    let a = graph.normalized_adjacency();
    let plan_f = CommPlan::build(&a, part);
    let plan_b = if graph.directed() {
        CommPlan::build(&a.transpose(), part)
    } else {
        plan_f.clone()
    };
    let init = config.init_params(param_seed);
    train_with_plans_spec(
        &plan_f, &plan_b, h0, labels, mask, config, epochs, init, spec,
    )
}

/// Training core over prebuilt plans with explicit initial parameters
/// (mini-batch training reuses this per batch, carrying parameters over).
#[allow(clippy::too_many_arguments)]
pub fn train_with_plans(
    plan_f: &CommPlan,
    plan_b: &CommPlan,
    h0: &Dense,
    labels: &[u32],
    mask: &[bool],
    config: &GcnConfig,
    epochs: usize,
    init: Params,
) -> DistOutcome {
    train_with_plans_threads(plan_f, plan_b, h0, labels, mask, config, epochs, init, None)
}

/// As [`train_with_plans`] with an explicit per-rank kernel thread count.
#[allow(clippy::too_many_arguments)]
pub fn train_with_plans_threads(
    plan_f: &CommPlan,
    plan_b: &CommPlan,
    h0: &Dense,
    labels: &[u32],
    mask: &[bool],
    config: &GcnConfig,
    epochs: usize,
    init: Params,
    threads: Option<usize>,
) -> DistOutcome {
    train_with_plans_spec(
        plan_f,
        plan_b,
        h0,
        labels,
        mask,
        config,
        epochs,
        init,
        ComputeSpec::threads(threads),
    )
}

/// As [`train_with_plans`] with a full per-rank compute spec.
#[allow(clippy::too_many_arguments)]
pub fn train_with_plans_spec(
    plan_f: &CommPlan,
    plan_b: &CommPlan,
    h0: &Dense,
    labels: &[u32],
    mask: &[bool],
    config: &GcnConfig,
    epochs: usize,
    init: Params,
    spec: ComputeSpec,
) -> DistOutcome {
    let p = plan_f.p;
    let n = plan_f.n;
    assert_eq!(h0.rows(), n, "feature rows mismatch");
    assert_eq!(labels.len(), n, "labels mismatch");
    assert_eq!(mask.len(), n, "mask mismatch");
    let mask_total = mask.iter().filter(|&&m| m).count().max(1) as f64;

    // Pre-slice every rank's local data on the main thread.
    let locals: Vec<(Dense, Vec<u32>, Vec<bool>)> = plan_f
        .ranks
        .iter()
        .map(|rp| {
            let h_local = gather::gather_rows(h0, &rp.local_rows);
            let l_local: Vec<u32> = rp.local_rows.iter().map(|&v| labels[v as usize]).collect();
            let m_local: Vec<bool> = rp.local_rows.iter().map(|&v| mask[v as usize]).collect();
            (h_local, l_local, m_local)
        })
        .collect();

    let results: Vec<RankResult> = Communicator::run(p, |ctx| {
        let m = ctx.rank();
        let (h_local, l_local, m_local) = &locals[m];
        let mut st = RankState {
            plan_f: &plan_f.ranks[m],
            plan_b: &plan_b.ranks[m],
            config,
            params: init.clone(),
            h0: h_local,
            labels: l_local,
            mask: m_local,
            mask_total,
            opt_state: crate::optim::OptimizerState::new(config.optimizer, &config.shapes()),
            ctx: ComputeCtx::for_ranks_spec(p, spec),
        };
        // Every buffer the epoch loop reuses, allocated exactly once:
        // the comm pools (sized so steady-state acquires always hit) and
        // the layer workspaces.
        prewarm_comm_pools(ctx, st.plan_f, st.plan_b, config);
        let mut ws = EpochWorkspace::new(st.plan_f, config, p, &st.ctx);
        let start = Instant::now();
        let mut losses = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            losses.push(epoch_step(ctx, &mut st, &mut ws));
        }
        // Final predictions with the trained parameters.
        feedforward::run(ctx, &st, &mut ws);
        let pred = ws.fwd.output().clone();
        let seconds = start.elapsed().as_secs_f64();
        // Compute time is the non-blocked complement of the runtime-timed
        // comm seconds, so `comm + compute == wall` per rank (fig4a split);
        // the kernels' shape-counted FLOPs give the matching rate.
        ctx.add_compute_seconds(seconds - ctx.counters().comm_seconds);
        ctx.add_compute_flops(st.ctx.take_flops());
        RankResult {
            pred,
            counters: ctx.counters().clone(),
            losses,
            params: st.params,
            seconds,
        }
    });

    // Assemble global predictions.
    let classes = config.dims[config.layers()];
    let mut predictions = Dense::zeros(n, classes);
    for (rp, res) in plan_f.ranks.iter().zip(&results) {
        gather::scatter_rows(&res.pred, &rp.local_rows, &mut predictions);
    }
    let losses = results[0].losses.clone();
    let params = results[0].params.clone();
    let counters = results.iter().map(|r| r.counters.clone()).collect();
    let rank_seconds = results.iter().map(|r| r.seconds).collect();
    DistOutcome {
        losses,
        params,
        predictions,
        counters,
        rank_seconds,
    }
}

/// One full training epoch for one rank — forward pass, global loss,
/// backpropagation/update — over the persistent workspace. Returns the
/// global loss (identical on every rank). The trainer loop is just this
/// in a loop; tests (e.g. the steady-state allocation test) drive epochs
/// individually through it.
pub fn epoch_step(ctx: &mut RankCtx, st: &mut RankState<'_>, ws: &mut EpochWorkspace) -> f64 {
    feedforward::run(ctx, st, ws);
    let loss_local = local_loss_and_grad(
        ws.fwd.output(),
        st.labels,
        st.mask,
        st.mask_total,
        &mut ws.probs,
        &mut ws.grad,
    );
    // Global loss: allreduce of the local sums (stack buffer, no heap).
    let mut buf = [loss_local as f32];
    ctx.allreduce_sum(&mut buf);
    backprop::run(ctx, st, ws);
    buf[0] as f64
}

/// Local masked cross-entropy: the *sum* of masked row losses divided by
/// the global mask count, and (into `grad`, overwritten) the loss
/// gradient for the local rows. Allreducing the per-rank values yields
/// the identical global loss the serial trainer computes. `probs` is the
/// workspace's persistent softmax buffer, so the loss path stays
/// allocation-free (§9).
fn local_loss_and_grad(
    hl: &Dense,
    labels: &[u32],
    mask: &[bool],
    mask_total: f64,
    probs: &mut Dense,
    grad: &mut Dense,
) -> f64 {
    loss::softmax_rows_into(hl, probs);
    grad.fill_zero();
    let mut total = 0.0f64;
    for i in 0..hl.rows() {
        if !mask[i] {
            continue;
        }
        let y = labels[i] as usize;
        let pv = probs.get(i, y).max(1e-12);
        total -= (pv as f64).ln();
        let g = grad.row_mut(i);
        for (j, gv) in g.iter_mut().enumerate() {
            let indicator = if j == y { 1.0 } else { 0.0 };
            *gv = (probs.get(i, j) - indicator) / mask_total as f32;
        }
    }
    total / mask_total
}
