//! The communication plan: per-rank local blocks and send/receive sets,
//! precomputed from the adjacency's sparsity pattern and the row partition
//! (paper §4.1, Eqs. 8–9).
//!
//! For each processor `Pₘ` the plan holds:
//!
//! * its owned global rows (the 1-D partition of `Â`, `H`, `G`);
//! * `a_own` — the diagonal block `Aₘ` restricted to owned columns, with
//!   columns renumbered to local row indices (multiplied against the local
//!   feature block without any communication, Algorithm 1 line 6);
//! * `a_remote[n]` — the off-diagonal block restricted to columns owned by
//!   peer `n`, with columns renumbered to positions in the *received row
//!   buffer* from `n` (lines 8–9). The receive set `Rₘ` of Eq. 9 is exactly
//!   the peers with a nonempty block;
//! * `send[n]` — the diagonal selector `Xₘₙ` of Eq. 8, stored as the local
//!   indices of the rows peer `n` needs (`Sₘ` is the peers with a nonempty
//!   list).
//!
//! The plan is built serially once before training and is pure data — unit
//! tests verify it against the paper's equations and against
//! `pargcn_partition::metrics` ground truth.

use pargcn_comm::costmodel::RankPhaseCost;
use pargcn_matrix::Csr;
use pargcn_partition::Partition;

/// Rows to receive from one peer and the block to multiply them against.
#[derive(Clone, Debug, PartialEq)]
pub struct RemoteBlock {
    pub peer: usize,
    /// Global row ids whose `H`/`G` rows arrive from `peer`, ascending —
    /// determines the row order inside the message payload.
    pub rows: Vec<u32>,
    /// `Aₘ` restricted to those columns; column `c` indexes `rows[c]`.
    pub a: Csr,
}

/// The selector `Xₘₙ`: which local rows to gather and send to one peer.
#[derive(Clone, Debug, PartialEq)]
pub struct SendSet {
    pub peer: usize,
    /// Indices into `local_rows` (ascending), i.e. the nonzero diagonal
    /// entries of `Xₘₙ` in local coordinates.
    pub local_indices: Vec<u32>,
}

/// One rank's share of the plan.
#[derive(Clone, Debug, PartialEq)]
pub struct RankPlan {
    pub rank: usize,
    /// Owned global rows, ascending.
    pub local_rows: Vec<u32>,
    /// Diagonal block; columns renumbered to local row indices.
    pub a_own: Csr,
    /// Off-diagonal blocks, one per peer in the receive set `Rₘ`.
    pub a_remote: Vec<RemoteBlock>,
    /// Send sets, one per peer in `Sₘ`.
    pub send: Vec<SendSet>,
}

impl RankPlan {
    /// Number of owned rows `n_m`.
    pub fn n_local(&self) -> usize {
        self.local_rows.len()
    }

    /// Total rows this rank sends per SpMM sweep.
    pub fn sent_rows(&self) -> u64 {
        self.send.iter().map(|s| s.local_indices.len() as u64).sum()
    }

    /// Total rows this rank receives per SpMM sweep.
    pub fn recv_rows(&self) -> u64 {
        self.a_remote.iter().map(|r| r.rows.len() as u64).sum()
    }
}

/// The full p-rank plan for one SpMM direction.
#[derive(Clone, Debug, PartialEq)]
pub struct CommPlan {
    pub ranks: Vec<RankPlan>,
    pub n: usize,
    pub p: usize,
}

impl CommPlan {
    /// Builds the plan for `A · X` under the row partition `part`.
    ///
    /// For backpropagation on a directed graph, pass `Âᵀ` (the paper §3.1);
    /// undirected graphs reuse the feedforward plan.
    ///
    /// This is a convenience wrapper over [`PlanBuilder`] with fresh scratch;
    /// callers building many plans (mini-batch training) should hold a
    /// `PlanBuilder` and reuse it.
    pub fn build(a: &Csr, part: &Partition) -> CommPlan {
        PlanBuilder::new().build(a, part)
    }

    /// Exact per-rank cost of one SpMM+DMM phase under this plan, for the
    /// cost model. Messages carry rows of width `d_msg` (f32); the SpMM
    /// runs at width `d_spmm`; `dmm_per_row_flops` covers the phase's dense
    /// multiplies per local row (`2·d_in·d_out` for the feedforward's
    /// `(ÂH)W`; backpropagation has two DMMs per row, `4·d_k·d_{k-1}`).
    pub fn phase_costs(
        &self,
        d_msg: usize,
        d_spmm: usize,
        dmm_per_row_flops: f64,
    ) -> Vec<RankPhaseCost> {
        self.ranks
            .iter()
            .map(|r| RankPhaseCost {
                local_flops: 2.0 * r.a_own.nnz() as f64 * d_spmm as f64,
                remote_flops: 2.0
                    * r.a_remote.iter().map(|b| b.a.nnz()).sum::<usize>() as f64
                    * d_spmm as f64,
                dmm_flops: r.n_local() as f64 * dmm_per_row_flops,
                sent_messages: r.send.len() as u64,
                sent_bytes: r.sent_rows() * d_msg as u64 * 4,
                recv_messages: r.a_remote.len() as u64,
                recv_bytes: r.recv_rows() * d_msg as u64 * 4,
            })
            .collect()
    }

    /// Total rows exchanged per sweep (= the hypergraph connectivity−1 cut).
    pub fn total_volume_rows(&self) -> u64 {
        self.ranks.iter().map(|r| r.sent_rows()).sum()
    }

    /// Total messages per sweep.
    pub fn total_messages(&self) -> u64 {
        self.ranks.iter().map(|r| r.send.len() as u64).sum()
    }
}

/// Reusable-scratch plan builder for the mini-batch path (DESIGN.md §11).
///
/// [`CommPlan::build`] allocates and zeroes O(n·p) of `u32::MAX` maps on
/// every call (`own_map` per rank, `recv_map` per remote block) — fine for
/// one full-batch plan, ruinous when every mini-batch needs a fresh plan.
/// `PlanBuilder` keeps those maps alive across builds:
///
/// * `local_index` and `own_map` are plain grow-once vectors. Every entry
///   that a build *reads* is written earlier in the same build (all n
///   vertices for `local_index`; the current rank's owned vertices for
///   `own_map`, and `filter_cols` keeps only owned columns before
///   `remap_cols` reads the map), so stale entries from prior builds are
///   never observed.
/// * the receive map is epoch-stamped: `recv_val[c]` is live only when
///   `recv_stamp[c]` equals the current epoch, so "clearing" the map for
///   the next remote block is a counter increment, not an O(n) fill. The
///   column-support scan reuses the same trick (`seen_stamp`).
/// * the p×p `needed` matrix keeps its inner vectors' capacity.
///
/// Emitted plans are **bitwise identical** to `CommPlan::build` (the qc
/// suite in `tests/minibatch_engine.rs` checks `==` across random
/// graph/partition streams); the per-build cost drops from O(n·p) to
/// O(touched) for the scratch, i.e. batch-sized for batch-sized graphs.
#[derive(Debug, Default)]
pub struct PlanBuilder {
    /// Global row id → local index within its owner; fully rewritten per build.
    local_index: Vec<u32>,
    /// Current rank's owned global row → local index; only owned positions
    /// are written then read, so no clearing between ranks or builds.
    own_map: Vec<u32>,
    /// Epoch-stamped receive map: `recv_val[c]` is live iff
    /// `recv_stamp[c] == epoch`.
    recv_stamp: Vec<u32>,
    recv_val: Vec<u32>,
    epoch: u32,
    /// Epoch-stamped column-support marks for the first pass.
    seen_stamp: Vec<u32>,
    seen_epoch: u32,
    /// needed[m][o] = ascending global columns of Aₘ owned by rank o ≠ m.
    needed: Vec<Vec<Vec<u32>>>,
}

impl PlanBuilder {
    pub fn new() -> PlanBuilder {
        PlanBuilder::default()
    }

    /// Grow-once sizing; scratch high-water-marks across builds, so a
    /// stream of same-sized batches reuses every buffer.
    fn reserve(&mut self, n: usize, p: usize) {
        if self.local_index.len() < n {
            self.local_index.resize(n, 0);
            self.own_map.resize(n, u32::MAX);
            // New tail entries carry stamp 0; epochs start at 1, so they
            // read as stale until written.
            self.recv_stamp.resize(n, 0);
            self.recv_val.resize(n, 0);
            self.seen_stamp.resize(n, 0);
        }
        if self.needed.len() < p {
            self.needed.resize_with(p, Vec::new);
        }
        for row in &mut self.needed[..p] {
            if row.len() < p {
                row.resize_with(p, Vec::new);
            }
            for cell in &mut row[..p] {
                cell.clear();
            }
        }
    }

    /// Advances a stamp counter, resetting the buffer on the (practically
    /// unreachable) u32 wraparound so stale stamps can never alias.
    fn next_epoch(epoch: &mut u32, stamp: &mut [u32]) -> u32 {
        if *epoch == u32::MAX {
            stamp.fill(0);
            *epoch = 0;
        }
        *epoch += 1;
        *epoch
    }

    /// Builds the plan for `A · X` under `part` — same contract and bitwise
    /// the same output as [`CommPlan::build`], at batch-sized scratch cost.
    pub fn build(&mut self, a: &Csr, part: &Partition) -> CommPlan {
        assert_eq!(a.n_rows(), a.n_cols(), "plan needs a square matrix");
        assert_eq!(a.n_rows(), part.n(), "partition size mismatch");
        let n = a.n_rows();
        let p = part.p();
        self.reserve(n, p);
        let PlanBuilder {
            local_index,
            own_map,
            recv_stamp,
            recv_val,
            epoch,
            seen_stamp,
            seen_epoch,
            needed,
        } = self;
        let members = part.members();

        // Global row id → local index within its owner.
        for rows in &members {
            for (li, &v) in rows.iter().enumerate() {
                local_index[v as usize] = li as u32;
            }
        }

        // First pass: per rank, split needed columns by owner. The support
        // scan ascends over 0..n exactly like `Csr::col_support`, so the
        // `needed` lists come out in the same (ascending) order.
        let mut blocks: Vec<Csr> = Vec::with_capacity(p);
        for (m, rows) in members.iter().enumerate() {
            let a_m = a.select_rows(rows);
            let se = PlanBuilder::next_epoch(seen_epoch, seen_stamp);
            for i in 0..a_m.n_rows() {
                for &c in a_m.row_indices(i) {
                    seen_stamp[c as usize] = se;
                }
            }
            for j in 0..n as u32 {
                if seen_stamp[j as usize] == se {
                    let owner = part.part_of(j as usize) as usize;
                    if owner != m {
                        needed[m][owner].push(j);
                    }
                }
            }
            blocks.push(a_m);
        }

        let mut ranks = Vec::with_capacity(p);
        for (m, rows) in members.iter().enumerate() {
            let a_m = &blocks[m];

            // Diagonal block: own columns → local indices.
            for (li, &v) in rows.iter().enumerate() {
                own_map[v as usize] = li as u32;
            }
            let a_own = a_m
                .filter_cols(|c| part.part_of(c as usize) as usize == m)
                .remap_cols(&own_map[..n], rows.len());

            // Off-diagonal blocks per source peer. Slice to `p`: the
            // scratch may be wider from an earlier larger-p build.
            let mut a_remote = Vec::new();
            for (peer, need) in needed[m][..p].iter().enumerate() {
                if peer == m || need.is_empty() {
                    continue;
                }
                let recv_rows = need.clone();
                let e = PlanBuilder::next_epoch(epoch, recv_stamp);
                for (pos, &j) in recv_rows.iter().enumerate() {
                    recv_stamp[j as usize] = e;
                    recv_val[j as usize] = pos as u32;
                }
                // `filter_cols` keeps exactly the freshly stamped columns,
                // so `remap_cols` only reads live `recv_val` entries.
                let block = a_m
                    .filter_cols(|c| recv_stamp[c as usize] == e)
                    .remap_cols(&recv_val[..n], recv_rows.len());
                a_remote.push(RemoteBlock {
                    peer,
                    rows: recv_rows,
                    a: block,
                });
            }

            // Send sets: invert `needed` — rank m sends to n the rows n
            // needs from m (Eq. 8: the diagonal of Xₘₙ).
            let mut send = Vec::new();
            for (peer, need_row) in needed[..p].iter().enumerate() {
                if peer == m || need_row[m].is_empty() {
                    continue;
                }
                let local_indices: Vec<u32> = need_row[m]
                    .iter()
                    .map(|&j| local_index[j as usize])
                    .collect();
                send.push(SendSet {
                    peer,
                    local_indices,
                });
            }

            ranks.push(RankPlan {
                rank: m,
                local_rows: rows.clone(),
                a_own,
                a_remote,
                send,
            });
        }
        CommPlan { ranks, n, p }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargcn_graph::gen::er;
    use pargcn_matrix::{gather, Dense};
    use pargcn_partition::{metrics, random, Hypergraph};
    use pargcn_util::rng::SeedableRng;
    use pargcn_util::rng::StdRng;

    fn sample() -> (Csr, Partition) {
        let g = er::generate(30, 120, true, 3);
        let a = g.normalized_adjacency();
        let part = random::partition(30, 4, 7);
        (a, part)
    }

    #[test]
    fn send_and_recv_sets_are_duals() {
        let (a, part) = sample();
        let plan = CommPlan::build(&a, &part);
        for rp in &plan.ranks {
            for ss in &rp.send {
                // Peer's remote block from us lists the same global rows.
                let peer_plan = &plan.ranks[ss.peer];
                let block = peer_plan
                    .a_remote
                    .iter()
                    .find(|b| b.peer == rp.rank)
                    .expect("dual block missing");
                let sent_globals: Vec<u32> = ss
                    .local_indices
                    .iter()
                    .map(|&li| rp.local_rows[li as usize])
                    .collect();
                assert_eq!(sent_globals, block.rows);
            }
        }
    }

    #[test]
    fn plan_volume_matches_metrics_ground_truth() {
        let (a, part) = sample();
        let plan = CommPlan::build(&a, &part);
        let stats = metrics::spmm_comm_stats(&a, &part);
        assert_eq!(plan.total_volume_rows(), stats.total_rows);
        assert_eq!(plan.total_messages(), stats.total_messages);
        for rp in &plan.ranks {
            assert_eq!(rp.sent_rows(), stats.sent_rows[rp.rank]);
            assert_eq!(rp.send.len() as u64, stats.sent_messages[rp.rank]);
        }
    }

    #[test]
    fn plan_volume_matches_hypergraph_cut() {
        // §4.3.2 end-to-end: plan volume == connectivity−1 cut.
        let (a, part) = sample();
        let plan = CommPlan::build(&a, &part);
        let h = Hypergraph::column_net_model(&a);
        assert_eq!(plan.total_volume_rows(), h.connectivity_cut(&part));
    }

    #[test]
    fn distributed_spmm_via_plan_matches_serial() {
        // Execute Eq. 7 serially using only plan data: local block times
        // local rows, plus each remote block times the gathered rows the
        // peer would send.
        let (a, part) = sample();
        let plan = CommPlan::build(&a, &part);
        let mut rng = StdRng::seed_from_u64(5);
        let h = Dense::random(30, 6, &mut rng);
        let full = a.spmm(&h);

        for rp in &plan.ranks {
            let h_local = gather::gather_rows(&h, &rp.local_rows);
            let mut ah = rp.a_own.spmm(&h_local);
            for block in &rp.a_remote {
                // Simulate the peer's gather+send.
                let peer = &plan.ranks[block.peer];
                let peer_local = gather::gather_rows(&h, &peer.local_rows);
                let ss = peer
                    .send
                    .iter()
                    .find(|s| s.peer == rp.rank)
                    .expect("peer must have matching send set");
                let payload = gather::gather_rows(&peer_local, &ss.local_indices);
                block.a.spmm_into(&payload, &mut ah, true);
            }
            for (li, &gv) in rp.local_rows.iter().enumerate() {
                let expect = full.row(gv as usize);
                let got = ah.row(li);
                for (e, g) in expect.iter().zip(got) {
                    assert!((e - g).abs() < 1e-4, "row {gv}: {e} vs {g}");
                }
            }
        }
    }

    #[test]
    fn single_rank_plan_has_no_comm() {
        let g = er::generate(10, 40, false, 1);
        let a = g.normalized_adjacency();
        let plan = CommPlan::build(&a, &Partition::trivial(10));
        assert_eq!(plan.ranks.len(), 1);
        assert!(plan.ranks[0].send.is_empty());
        assert!(plan.ranks[0].a_remote.is_empty());
        assert_eq!(plan.ranks[0].a_own.nnz(), a.nnz());
    }

    #[test]
    fn nnz_is_conserved_across_blocks() {
        let (a, part) = sample();
        let plan = CommPlan::build(&a, &part);
        let total: usize = plan
            .ranks
            .iter()
            .map(|r| r.a_own.nnz() + r.a_remote.iter().map(|b| b.a.nnz()).sum::<usize>())
            .sum();
        assert_eq!(total, a.nnz());
    }

    #[test]
    fn phase_costs_reflect_plan() {
        let (a, part) = sample();
        let plan = CommPlan::build(&a, &part);
        let costs = plan.phase_costs(6, 6, 2.0 * 6.0 * 4.0);
        for (rp, c) in plan.ranks.iter().zip(&costs) {
            assert_eq!(c.sent_messages, rp.send.len() as u64);
            assert_eq!(c.sent_bytes, rp.sent_rows() * 24);
            assert_eq!(c.recv_bytes, rp.recv_rows() * 24);
            let expected_local = 2.0 * rp.a_own.nnz() as f64 * 6.0;
            assert_eq!(c.local_flops, expected_local);
        }
    }

    #[test]
    fn empty_rank_is_tolerated() {
        // A partition where one part owns nothing.
        let g = er::generate(8, 24, true, 2);
        let a = g.normalized_adjacency();
        let assignment = vec![0u32, 0, 1, 1, 1, 0, 1, 0];
        let part = Partition::new(assignment, 3); // part 2 empty
        let plan = CommPlan::build(&a, &part);
        assert_eq!(plan.ranks[2].n_local(), 0);
        assert!(plan.ranks[2].send.is_empty());
    }
}
