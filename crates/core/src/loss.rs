//! Loss functions: masked softmax cross-entropy (node classification, the
//! paper's workload) and squared error (used by gradient-check tests).
//!
//! Both provide the loss value `J` and the gradient `∇_{H^L} J` that seeds
//! backpropagation (paper Eq. 2). Gradients are zero outside the training
//! mask, so only labelled vertices drive updates — the transductive GCN
//! setting of Kipf & Welling.

use pargcn_matrix::Dense;

/// Row-wise softmax with the max-subtraction trick for stability.
pub fn softmax_rows(h: &Dense) -> Dense {
    let mut out = Dense::zeros(h.rows(), h.cols());
    softmax_rows_into(h, &mut out);
    out
}

/// [`softmax_rows`] into a caller-owned buffer — the training loop keeps a
/// persistent `probs` matrix in its workspace so the per-epoch loss path
/// allocates nothing (the §9 no-alloc contract, extended in DESIGN.md §11).
///
/// `out` is row-resized in place (grow-once) and must have `h`'s width.
pub fn softmax_rows_into(h: &Dense, out: &mut Dense) {
    assert_eq!(h.cols(), out.cols(), "softmax_rows_into width mismatch");
    out.resize_rows(h.rows());
    for i in 0..h.rows() {
        let row = out.row_mut(i);
        row.copy_from_slice(h.row(i));
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }
}

/// Masked softmax cross-entropy.
///
/// Returns `(J, ∇_{H} J)` where
/// `J = (1/|mask|) Σ_{i∈mask} −log softmax(H(i,:))[yᵢ]` and the gradient is
/// `(softmax(H(i,:)) − onehot(yᵢ))/|mask|` on masked rows, zero elsewhere.
pub fn softmax_cross_entropy(h: &Dense, labels: &[u32], mask: &[bool]) -> (f64, Dense) {
    assert_eq!(h.rows(), labels.len(), "label length mismatch");
    assert_eq!(h.rows(), mask.len(), "mask length mismatch");
    let count = mask.iter().filter(|&&m| m).count().max(1) as f64;
    let probs = softmax_rows(h);
    let mut grad = Dense::zeros(h.rows(), h.cols());
    let mut loss = 0.0f64;
    for i in 0..h.rows() {
        if !mask[i] {
            continue;
        }
        let y = labels[i] as usize;
        let p = probs.get(i, y).max(1e-12);
        loss -= (p as f64).ln();
        let g = grad.row_mut(i);
        for (j, gv) in g.iter_mut().enumerate() {
            let indicator = if j == y { 1.0 } else { 0.0 };
            *gv = (probs.get(i, j) - indicator) / count as f32;
        }
    }
    (loss / count, grad)
}

/// Masked mean squared error against a dense target: `J = (1/2|mask|)·Σ‖h−t‖²`.
/// Simple and smooth, which makes finite-difference gradient checks tight.
pub fn squared_error(h: &Dense, target: &Dense, mask: &[bool]) -> (f64, Dense) {
    assert_eq!(h.rows(), target.rows());
    assert_eq!(h.cols(), target.cols());
    let count = mask.iter().filter(|&&m| m).count().max(1) as f64;
    let mut grad = Dense::zeros(h.rows(), h.cols());
    let mut loss = 0.0f64;
    for (i, &masked) in mask.iter().enumerate().take(h.rows()) {
        if !masked {
            continue;
        }
        let g = grad.row_mut(i);
        for (j, gj) in g.iter_mut().enumerate() {
            let d = h.get(i, j) - target.get(i, j);
            loss += 0.5 * (d as f64) * (d as f64);
            *gj = d / count as f32;
        }
    }
    (loss / count, grad)
}

/// Classification accuracy of `h`'s row-argmax against `labels`, over rows
/// where `mask` is true.
pub fn accuracy(h: &Dense, labels: &[u32], mask: &[bool]) -> f64 {
    let preds = h.argmax_rows();
    let mut correct = 0usize;
    let mut total = 0usize;
    for i in 0..labels.len() {
        if mask[i] {
            total += 1;
            if preds[i] == labels[i] as usize {
                correct += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let h = Dense::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let s = softmax_rows(&h);
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Dense::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Dense::from_vec(1, 3, vec![101.0, 102.0, 103.0]);
        assert!(softmax_rows(&a).approx_eq(&softmax_rows(&b), 1e-5));
    }

    #[test]
    fn cross_entropy_loss_decreases_with_confidence() {
        let confident = Dense::from_vec(1, 2, vec![5.0, -5.0]);
        let unsure = Dense::from_vec(1, 2, vec![0.1, -0.1]);
        let labels = vec![0u32];
        let mask = vec![true];
        let (l_conf, _) = softmax_cross_entropy(&confident, &labels, &mask);
        let (l_unsure, _) = softmax_cross_entropy(&unsure, &labels, &mask);
        assert!(l_conf < l_unsure);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let h = Dense::from_vec(2, 3, vec![0.5, -0.2, 0.1, 1.0, 0.3, -0.7]);
        let labels = vec![2u32, 0];
        let mask = vec![true, true];
        let (_, grad) = softmax_cross_entropy(&h, &labels, &mask);
        let eps = 1e-3f32;
        for i in 0..2 {
            for j in 0..3 {
                let mut hp = h.clone();
                hp.set(i, j, h.get(i, j) + eps);
                let mut hm = h.clone();
                hm.set(i, j, h.get(i, j) - eps);
                let (lp, _) = softmax_cross_entropy(&hp, &labels, &mask);
                let (lm, _) = softmax_cross_entropy(&hm, &labels, &mask);
                let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
                assert!(
                    (fd - grad.get(i, j)).abs() < 1e-3,
                    "fd {fd} vs grad {} at ({i},{j})",
                    grad.get(i, j)
                );
            }
        }
    }

    #[test]
    fn masked_rows_have_zero_gradient() {
        let h = Dense::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let (_, grad) = softmax_cross_entropy(&h, &[0, 1], &[true, false]);
        assert_eq!(grad.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn squared_error_gradient_matches_finite_difference() {
        let h = Dense::from_vec(1, 2, vec![0.4, -0.6]);
        let t = Dense::from_vec(1, 2, vec![1.0, 0.0]);
        let (_, grad) = squared_error(&h, &t, &[true]);
        let eps = 1e-3f32;
        for j in 0..2 {
            let mut hp = h.clone();
            hp.set(0, j, h.get(0, j) + eps);
            let mut hm = h.clone();
            hm.set(0, j, h.get(0, j) - eps);
            let (lp, _) = squared_error(&hp, &t, &[true]);
            let (lm, _) = squared_error(&hm, &t, &[true]);
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!((fd - grad.get(0, j)).abs() < 1e-3);
        }
    }

    #[test]
    fn accuracy_counts_masked_rows_only() {
        let h = Dense::from_vec(3, 2, vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4]);
        // Predictions: 0, 1, 0. Labels: 0, 0, 0. Mask drops row 1.
        let acc = accuracy(&h, &[0, 0, 0], &[true, false, true]);
        assert_eq!(acc, 1.0);
        let acc_all = accuracy(&h, &[0, 0, 0], &[true, true, true]);
        assert!((acc_all - 2.0 / 3.0).abs() < 1e-12);
    }
}
