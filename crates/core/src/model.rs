//! GCN model configuration and the replicated parameter matrices.

use crate::activations::Activation;
use crate::optim::Optimizer;
use pargcn_matrix::Dense;
use pargcn_util::rng::SeedableRng;
use pargcn_util::rng::StdRng;

/// Where the DMM sits relative to the SpMM in each layer (§4.4).
///
/// GCN computes `σ((ÂH)W)`; GAT-style models transform features first,
/// `σ(Â(HW))`. The products are mathematically identical (associativity),
/// but the communicated rows have width `d_in` vs `d_out` respectively —
/// same message *pattern*, different volume, exactly the paper's point that
/// other GNNs reuse the identical communication scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LayerOrder {
    /// `(Â·H)·W` — aggregate then transform (classic GCN).
    SpmmFirst,
    /// `Â·(H·W)` — transform then aggregate (GAT-style ordering).
    DmmFirst,
}

/// Hyperparameters of an L-layer GCN.
#[derive(Clone, Debug)]
pub struct GcnConfig {
    /// Feature widths `d₀, d₁, …, d_L`; the model has `dims.len() − 1` layers.
    pub dims: Vec<usize>,
    /// SGD learning rate `η` (paper Eq. 5).
    pub learning_rate: f32,
    /// Layer computation order (§4.4); `SpmmFirst` is the paper's GCN.
    pub order: LayerOrder,
    /// Parameter update rule; the paper's Eq. 5 is [`Optimizer::Sgd`].
    pub optimizer: Optimizer,
}

impl GcnConfig {
    /// A standard 2-layer GCN `d_in → hidden → classes`.
    pub fn two_layer(d_in: usize, hidden: usize, classes: usize) -> Self {
        Self {
            dims: vec![d_in, hidden, classes],
            learning_rate: 0.1,
            order: LayerOrder::SpmmFirst,
            optimizer: Optimizer::Sgd,
        }
    }

    /// Number of layers `L`.
    pub fn layers(&self) -> usize {
        self.dims.len() - 1
    }

    /// Activation of layer `k` (1-based like the paper): ReLU on hidden
    /// layers, identity on the output layer.
    pub fn activation(&self, k: usize) -> Activation {
        if k == self.layers() {
            Activation::Identity
        } else {
            Activation::Relu
        }
    }

    /// Per-layer parameter shapes `(d_{k-1}, d_k)`.
    pub fn shapes(&self) -> Vec<(usize, usize)> {
        (0..self.layers())
            .map(|k| (self.dims[k], self.dims[k + 1]))
            .collect()
    }

    /// Glorot-initialized parameters, deterministic in `seed`. Replicated
    /// on every processor in the distributed algorithm.
    pub fn init_params(&self, seed: u64) -> Params {
        let mut rng = StdRng::seed_from_u64(seed);
        let weights = (0..self.layers())
            .map(|k| Dense::glorot(self.dims[k], self.dims[k + 1], &mut rng))
            .collect();
        Params { weights }
    }
}

/// The trainable parameter matrices `W¹…W^L`.
#[derive(Clone, Debug, PartialEq)]
pub struct Params {
    pub weights: Vec<Dense>,
}

impl Params {
    /// Largest absolute difference across all layers, for convergence checks.
    pub fn max_abs_diff(&self, other: &Params) -> f32 {
        self.weights
            .iter()
            .zip(&other.weights)
            .map(|(a, b)| a.max_abs_diff(b))
            .fold(0.0f32, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_layer_shapes() {
        let c = GcnConfig::two_layer(16, 8, 3);
        assert_eq!(c.layers(), 2);
        let p = c.init_params(0);
        assert_eq!((p.weights[0].rows(), p.weights[0].cols()), (16, 8));
        assert_eq!((p.weights[1].rows(), p.weights[1].cols()), (8, 3));
    }

    #[test]
    fn hidden_relu_output_identity() {
        let c = GcnConfig {
            dims: vec![4, 4, 4, 2],
            learning_rate: 0.1,
            order: LayerOrder::SpmmFirst,
            optimizer: Optimizer::Sgd,
        };
        assert_eq!(c.activation(1), Activation::Relu);
        assert_eq!(c.activation(2), Activation::Relu);
        assert_eq!(c.activation(3), Activation::Identity);
    }

    #[test]
    fn init_is_deterministic() {
        let c = GcnConfig::two_layer(6, 4, 2);
        let a = c.init_params(42);
        let b = c.init_params(42);
        assert_eq!(a.max_abs_diff(&b), 0.0);
        let c2 = c.init_params(43);
        assert!(a.max_abs_diff(&c2) > 0.0);
    }
}
