//! Graph attention (GAT, Veličković et al. — the paper's reference \[55\])
//! forward pass — the second §4.4 case study.
//!
//! §4.4 describes GAT's structure explicitly: "first each vertex feature is
//! transformed with a local parameter matrix (i.e., DMM), and the resulting
//! feature is transmitted to neighbor vertices using the same communication
//! pattern as in SpMM. At the destination vertex, features are concatenated
//! and then multiplied with an attention vector." This module implements
//! exactly that over the unchanged [`crate::plan::CommPlan`]:
//!
//! 1. `P = H·W` — local DMM (the transform);
//! 2. exchange the needed `P` rows — the identical Eq. 8–9 point-to-point
//!    pattern, carrying `d_out`-wide rows;
//! 3. per in-edge `(i ← j)`: `e_ij = LeakyReLU(a_src·pᵢ + a_dst·pⱼ)` (the
//!    concatenated attention vector split into source/destination halves),
//!    row-wise softmax over the in-neighborhood, and the attention-weighted
//!    aggregation — all purely local once the rows have arrived.
//!
//! Inference (forward) only: training GAT end-to-end needs gradients
//! through the attention softmax, which the paper does not evaluate either;
//! the point being demonstrated is the *communication* claim.

use crate::plan::{CommPlan, RankPlan};
use pargcn_comm::{CommCounters, Communicator, RankCtx};
use pargcn_graph::Graph;
use pargcn_matrix::{gather, Csr, Dense};
use pargcn_partition::Partition;
use pargcn_util::rng::StdRng;
use pargcn_util::rng::{Rng, SeedableRng};

/// One single-head GAT layer's parameters.
#[derive(Clone, Debug)]
pub struct GatLayer {
    /// Transform `W ∈ R^{d_in × d_out}` (replicated).
    pub w: Dense,
    /// Destination half of the attention vector (applied to `pᵢ`).
    pub a_src: Vec<f32>,
    /// Source half of the attention vector (applied to `pⱼ`).
    pub a_dst: Vec<f32>,
    /// LeakyReLU slope for attention logits (0.2 in the GAT paper).
    pub negative_slope: f32,
}

impl GatLayer {
    /// Glorot-initialized layer, deterministic in `seed`.
    pub fn init(d_in: usize, d_out: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = Dense::glorot(d_in, d_out, &mut rng);
        let s = (6.0 / (d_out as f64 + 1.0)).sqrt() as f32;
        let a_src = (0..d_out).map(|_| rng.gen_range(-s..=s)).collect();
        let a_dst = (0..d_out).map(|_| rng.gen_range(-s..=s)).collect();
        Self {
            w,
            a_src,
            a_dst,
            negative_slope: 0.2,
        }
    }

    #[inline]
    fn lrelu(&self, x: f32) -> f32 {
        if x >= 0.0 {
            x
        } else {
            self.negative_slope * x
        }
    }
}

#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Serial GAT layer forward over the adjacency *pattern* (values ignored;
/// attention replaces the fixed normalization). `pattern` must contain the
/// self loops (use the normalized adjacency's pattern).
pub fn forward_serial(layer: &GatLayer, pattern: &Csr, h: &Dense) -> Dense {
    let p = h.matmul(&layer.w);
    let d = p.cols();
    let n = pattern.n_rows();
    let s_src: Vec<f32> = (0..n).map(|i| dot(&layer.a_src, p.row(i))).collect();
    let s_dst: Vec<f32> = (0..n).map(|j| dot(&layer.a_dst, p.row(j))).collect();

    let mut out = Dense::zeros(n, d);
    for (i, &s_src_i) in s_src.iter().enumerate() {
        let cols = pattern.row_indices(i);
        if cols.is_empty() {
            continue;
        }
        // Numerically stable softmax over the in-neighborhood.
        let logits: Vec<f32> = cols
            .iter()
            .map(|&j| layer.lrelu(s_src_i + s_dst[j as usize]))
            .collect();
        let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = logits.iter().map(|&e| (e - max).exp()).collect();
        let denom: f32 = exps.iter().sum();
        let row = out.row_mut(i);
        for (&j, &w) in cols.iter().zip(&exps) {
            let alpha = w / denom;
            for (o, &pv) in row.iter_mut().zip(p.row(j as usize)) {
                *o += alpha * pv;
            }
        }
    }
    out
}

/// Per-rank distributed GAT layer forward: the same exchange as the GCN
/// trainer (here of the *transformed* rows `P`, DmmFirst-style), then local
/// attention. `tag` must be unique per layer within a forward pass.
pub fn forward_rank(
    ctx: &mut RankCtx,
    rp: &RankPlan,
    layer: &GatLayer,
    h_local: &Dense,
    tag: u32,
) -> Dense {
    let p_local = h_local.matmul(&layer.w);
    let d = p_local.cols();

    // Send the needed transformed rows — same selectors, same peers.
    let mut payload = Vec::new();
    for ss in &rp.send {
        gather::gather_rows_into(&p_local, &ss.local_indices, &mut payload);
        ctx.isend(ss.peer, tag, std::mem::take(&mut payload));
    }
    // Receive the remote transformed rows.
    let p_remote: Vec<Dense> = rp
        .a_remote
        .iter()
        .map(|block| Dense::from_vec(block.rows.len(), d, ctx.recv(block.peer, tag)))
        .collect();

    // Everything below is local — §4.4's point.
    let s_src: Vec<f32> = (0..rp.n_local())
        .map(|i| dot(&layer.a_src, p_local.row(i)))
        .collect();
    let s_dst_local: Vec<f32> = (0..rp.n_local())
        .map(|j| dot(&layer.a_dst, p_local.row(j)))
        .collect();
    let s_dst_remote: Vec<Vec<f32>> = p_remote
        .iter()
        .map(|blk| {
            (0..blk.rows())
                .map(|j| dot(&layer.a_dst, blk.row(j)))
                .collect()
        })
        .collect();

    let mut out = Dense::zeros(rp.n_local(), d);
    let mut logits: Vec<f32> = Vec::new();
    for (i, &s_src_i) in s_src.iter().enumerate() {
        logits.clear();
        // Own-block edges, then each remote block's edges for row i.
        for &j in rp.a_own.row_indices(i) {
            logits.push(layer.lrelu(s_src_i + s_dst_local[j as usize]));
        }
        for (blk, sd) in rp.a_remote.iter().zip(&s_dst_remote) {
            for &j in blk.a.row_indices(i) {
                logits.push(layer.lrelu(s_src[i] + sd[j as usize]));
            }
        }
        if logits.is_empty() {
            continue;
        }
        let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let denom: f32 = logits.iter().map(|&e| (e - max).exp()).sum();

        let row = out.row_mut(i);
        let mut cursor = 0usize;
        for &j in rp.a_own.row_indices(i) {
            let alpha = (logits[cursor] - max).exp() / denom;
            cursor += 1;
            for (o, &pv) in row.iter_mut().zip(p_local.row(j as usize)) {
                *o += alpha * pv;
            }
        }
        for (blk, pr) in rp.a_remote.iter().zip(&p_remote) {
            for &j in blk.a.row_indices(i) {
                let alpha = (logits[cursor] - max).exp() / denom;
                cursor += 1;
                for (o, &pv) in row.iter_mut().zip(pr.row(j as usize)) {
                    *o += alpha * pv;
                }
            }
        }
    }
    out
}

/// Distributed multi-layer GAT inference over `part`: returns the global
/// output features and the per-rank counters.
pub fn forward_distributed(
    graph: &Graph,
    h0: &Dense,
    layers: &[GatLayer],
    part: &Partition,
) -> (Dense, Vec<CommCounters>) {
    let a = graph.normalized_adjacency();
    let plan = CommPlan::build(&a, part);
    let locals: Vec<Dense> = plan
        .ranks
        .iter()
        .map(|rp| gather::gather_rows(h0, &rp.local_rows))
        .collect();

    struct R {
        out: Dense,
        counters: CommCounters,
    }
    let results: Vec<R> = Communicator::run(part.p(), |ctx| {
        let rp = &plan.ranks[ctx.rank()];
        let mut h = locals[ctx.rank()].clone();
        for (k, layer) in layers.iter().enumerate() {
            h = forward_rank(ctx, rp, layer, &h, k as u32);
            if k + 1 < layers.len() {
                h.map_inplace(|v| v.max(0.0)); // inter-layer ReLU
            }
        }
        R {
            out: h,
            counters: ctx.counters().clone(),
        }
    });

    let d = layers.last().map(|l| l.w.cols()).unwrap_or(h0.cols());
    let mut out = Dense::zeros(graph.n(), d);
    for (rp, r) in plan.ranks.iter().zip(&results) {
        gather::scatter_rows(&r.out, &rp.local_rows, &mut out);
    }
    (out, results.iter().map(|r| r.counters.clone()).collect())
}

/// Serial multi-layer GAT inference (the oracle for the distributed path).
pub fn forward_serial_multi(graph: &Graph, h0: &Dense, layers: &[GatLayer]) -> Dense {
    let pattern = graph.normalized_adjacency();
    let mut h = h0.clone();
    for (k, layer) in layers.iter().enumerate() {
        h = forward_serial(layer, &pattern, &h);
        if k + 1 < layers.len() {
            h.map_inplace(|v| v.max(0.0));
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargcn_graph::gen::community;
    use pargcn_partition::{partition_rows, Method};

    fn setup() -> (Graph, Dense) {
        let g = community::copurchase(160, 6.0, false, 2);
        let mut rng = StdRng::seed_from_u64(3);
        (g, Dense::random(160, 6, &mut rng))
    }

    #[test]
    fn attention_weights_sum_to_one() {
        // Proxy check: with W = I, a = 0, GAT reduces to mean aggregation
        // over the in-neighborhood — uniform attention.
        let (g, h) = setup();
        let pattern = g.normalized_adjacency();
        let layer = GatLayer {
            w: Dense::from_fn(6, 6, |i, j| if i == j { 1.0 } else { 0.0 }),
            a_src: vec![0.0; 6],
            a_dst: vec![0.0; 6],
            negative_slope: 0.2,
        };
        let out = forward_serial(&layer, &pattern, &h);
        for i in 0..20 {
            let cols = pattern.row_indices(i);
            let mut mean = vec![0.0f32; 6];
            for &j in cols {
                for (m, &v) in mean.iter_mut().zip(h.row(j as usize)) {
                    *m += v / cols.len() as f32;
                }
            }
            for (a, b) in out.row(i).iter().zip(&mean) {
                assert!((a - b).abs() < 1e-4, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn distributed_matches_serial() {
        let (g, h) = setup();
        let layers = vec![GatLayer::init(6, 8, 1), GatLayer::init(8, 4, 2)];
        let serial = forward_serial_multi(&g, &h, &layers);
        for method in [Method::Rp, Method::Hp] {
            let part = partition_rows(&g, &g.normalized_adjacency(), method, 4, 0.1, 5);
            let (dist, _) = forward_distributed(&g, &h, &layers, &part);
            assert!(
                dist.approx_eq(&serial, 2e-3),
                "{}: GAT diverged, max diff {}",
                method.name(),
                dist.max_abs_diff(&serial)
            );
        }
    }

    #[test]
    fn gat_exchange_volume_equals_gcn_plan_volume() {
        // §4.4: the same communication scheme — per layer, GAT moves exactly
        // the plan's volume in d_out-wide rows.
        let (g, h) = setup();
        let a = g.normalized_adjacency();
        let part = partition_rows(&g, &a, Method::Hp, 4, 0.1, 7);
        let plan = CommPlan::build(&a, &part);
        let layers = vec![GatLayer::init(6, 8, 1)];
        let (_, counters) = forward_distributed(&g, &h, &layers, &part);
        let bytes: u64 = counters.iter().map(|c| c.sent_bytes).sum();
        assert_eq!(bytes, plan.total_volume_rows() * 8 * 4);
    }

    #[test]
    fn attention_is_input_dependent() {
        // Unlike GCN's fixed normalization, different features must yield
        // different effective aggregation (sanity that attention is live).
        let (g, h) = setup();
        let pattern = g.normalized_adjacency();
        let layer = GatLayer::init(6, 6, 9);
        let out1 = forward_serial(&layer, &pattern, &h);
        let mut h2 = h.clone();
        h2.map_inplace(|v| v * -1.5 + 0.3);
        let out2 = forward_serial(&layer, &pattern, &h2);
        // Not a linear map of each other: compare normalized difference.
        assert!(out1.max_abs_diff(&out2) > 1e-3);
    }
}
