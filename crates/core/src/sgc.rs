//! SGC — Simplifying Graph Convolutional Networks (Wu et al., ICML'19;
//! the paper's reference \[58\]) — as a §4.4 case study.
//!
//! SGC removes the nonlinearities between GCN layers, collapsing the model
//! to `softmax(Â^K X W)`: a K-hop feature propagation followed by logistic
//! regression. §4.4's claim is that other GNN models reuse the *identical*
//! communication scheme with only local-computation changes, and SGC is
//! the starkest demonstration: the K propagation sweeps use exactly the
//! GCN comm plan (Eq. 8–9 sends of `H` rows), after which *training incurs
//! zero point-to-point communication at all* — every epoch is a local DMM
//! plus the small `ΔW` allreduce. The test-suite asserts that byte count.

use crate::dist::feedforward::spmm_exchange_into;
use crate::dist::ExchangeScratch;
use crate::loss;
use crate::plan::CommPlan;
use pargcn_comm::{CommCounters, Communicator};
use pargcn_graph::Graph;
use pargcn_matrix::{gather, Csr, Dense};
use pargcn_partition::Partition;
use pargcn_util::rng::SeedableRng;
use pargcn_util::rng::StdRng;

/// Serial K-hop propagation: `Â^K · H`.
pub fn propagate_serial(a: &Csr, h0: &Dense, k: usize) -> Dense {
    let mut h = h0.clone();
    for _ in 0..k {
        h = a.spmm(&h);
    }
    h
}

/// Serial SGC training: propagate once, then `epochs` steps of softmax
/// regression on the propagated features. Returns `(W, per-epoch losses)`.
// The training entry points take the full problem description by design;
// a config struct would just rename the eight pieces.
#[allow(clippy::too_many_arguments)]
pub fn train_serial(
    a: &Csr,
    h0: &Dense,
    k: usize,
    classes: usize,
    labels: &[u32],
    mask: &[bool],
    epochs: usize,
    learning_rate: f32,
    param_seed: u64,
) -> (Dense, Vec<f64>) {
    let hp = propagate_serial(a, h0, k);
    let mut rng = StdRng::seed_from_u64(param_seed);
    let mut w = Dense::glorot(h0.cols(), classes, &mut rng);
    let mut losses = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        let logits = hp.matmul(&w);
        let (j, grad) = loss::softmax_cross_entropy(&logits, labels, mask);
        // dJ/dW = (Â^K X)ᵀ · dJ/dlogits.
        let dw = hp.matmul_at(&grad);
        w.sub_scaled_assign(&dw, learning_rate);
        losses.push(j);
    }
    (w, losses)
}

/// Outcome of distributed SGC training.
pub struct SgcOutcome {
    pub w: Dense,
    pub losses: Vec<f64>,
    pub predictions: Dense,
    pub counters: Vec<CommCounters>,
}

/// Distributed SGC: K propagation sweeps over the GCN comm plan, then
/// communication-free local epochs (plus the `ΔW` allreduce).
#[allow(clippy::too_many_arguments)]
pub fn train_distributed(
    graph: &Graph,
    h0: &Dense,
    k: usize,
    classes: usize,
    labels: &[u32],
    mask: &[bool],
    part: &Partition,
    epochs: usize,
    learning_rate: f32,
    param_seed: u64,
) -> SgcOutcome {
    let a = graph.normalized_adjacency();
    let plan = CommPlan::build(&a, part);
    let n = graph.n();
    let d = h0.cols();
    let mask_total = mask.iter().filter(|&&m| m).count().max(1) as f64;
    let mut rng = StdRng::seed_from_u64(param_seed);
    let w_init = Dense::glorot(d, classes, &mut rng);

    let locals: Vec<(Dense, Vec<u32>, Vec<bool>)> = plan
        .ranks
        .iter()
        .map(|rp| {
            (
                gather::gather_rows(h0, &rp.local_rows),
                rp.local_rows.iter().map(|&v| labels[v as usize]).collect(),
                rp.local_rows.iter().map(|&v| mask[v as usize]).collect(),
            )
        })
        .collect();

    struct R {
        w: Dense,
        losses: Vec<f64>,
        pred: Dense,
        counters: CommCounters,
    }

    let results: Vec<R> = Communicator::run(part.p(), |ctx| {
        let m = ctx.rank();
        let rp = &plan.ranks[m];
        let (h_local, l_local, m_local) = &locals[m];
        let cctx = pargcn_matrix::ComputeCtx::for_ranks(part.p(), None);

        // K-hop propagation: the only point-to-point communication. The
        // sweeps ping-pong between two persistent buffers over a single
        // exchange scratch, with the payload pools pre-warmed, so no sweep
        // after the first allocates on the comm path.
        for ss in &rp.send {
            ctx.prewarm(ss.peer, 2, ss.local_indices.len() * d);
        }
        ctx.prewarm_collectives(2, d * classes);
        let mut scratch = ExchangeScratch::new(part.p());
        let mut hp = h_local.clone();
        let mut hp_next = Dense::zeros(h_local.rows(), d);
        for sweep in 0..k {
            spmm_exchange_into(
                ctx,
                rp,
                &hp,
                sweep as u32,
                &cctx,
                &mut scratch,
                &mut hp_next,
            );
            std::mem::swap(&mut hp, &mut hp_next);
        }

        // Training epochs: purely local + ΔW allreduce.
        let mut w = w_init.clone();
        let mut losses = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let logits = cctx.matmul(&hp, &w);
            let probs = loss::softmax_rows(&logits);
            let mut loss_local = 0.0f64;
            let mut grad = Dense::zeros(logits.rows(), logits.cols());
            for i in 0..logits.rows() {
                if !m_local[i] {
                    continue;
                }
                let y = l_local[i] as usize;
                loss_local -= (probs.get(i, y).max(1e-12) as f64).ln();
                for j in 0..classes {
                    let ind = if j == y { 1.0 } else { 0.0 };
                    grad.set(i, j, (probs.get(i, j) - ind) / mask_total as f32);
                }
            }
            let mut lbuf = [(loss_local / mask_total) as f32];
            ctx.allreduce_sum(&mut lbuf);
            losses.push(lbuf[0] as f64);

            let mut dw = cctx.matmul_at(&hp, &grad);
            ctx.allreduce_sum(dw.data_mut());
            w.sub_scaled_assign(&dw, learning_rate);
        }
        let pred = cctx.matmul(&hp, &w);
        ctx.add_compute_flops(cctx.take_flops());
        R {
            w,
            losses,
            pred,
            counters: ctx.counters().clone(),
        }
    });

    let mut predictions = Dense::zeros(n, classes);
    for (rp, r) in plan.ranks.iter().zip(&results) {
        gather::scatter_rows(&r.pred, &rp.local_rows, &mut predictions);
    }
    SgcOutcome {
        w: results[0].w.clone(),
        losses: results[0].losses.clone(),
        predictions,
        counters: results.iter().map(|r| r.counters.clone()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::feedforward::spmm_exchange_with_plan;
    use pargcn_graph::gen::sbm::{self, SbmParams};
    use pargcn_partition::{partition_rows, Method};

    fn setup() -> (Graph, Dense, Vec<u32>, Vec<bool>) {
        let d = sbm::generate(
            SbmParams {
                n: 300,
                classes: 4,
                features: 8,
                feature_separation: 1.5,
                ..Default::default()
            },
            3,
        );
        (d.graph, d.features, d.labels, d.train_mask)
    }

    #[test]
    fn propagation_matches_serial() {
        let (g, h0, ..) = setup();
        let a = g.normalized_adjacency();
        let serial = propagate_serial(&a, &h0, 3);
        let part = partition_rows(&g, &a, Method::Hp, 4, 0.1, 1);
        let plan = CommPlan::build(&a, &part);
        let locals: Vec<Dense> = plan
            .ranks
            .iter()
            .map(|rp| gather::gather_rows(&h0, &rp.local_rows))
            .collect();
        let results = Communicator::run(4, |ctx| {
            let cctx = pargcn_matrix::ComputeCtx::serial();
            let rp = &plan.ranks[ctx.rank()];
            let mut hp = locals[ctx.rank()].clone();
            for sweep in 0..3 {
                hp = spmm_exchange_with_plan(ctx, rp, &hp, sweep, &cctx);
            }
            hp
        });
        for (rp, hp) in plan.ranks.iter().zip(&results) {
            for (li, &gv) in rp.local_rows.iter().enumerate() {
                for (a, b) in serial.row(gv as usize).iter().zip(hp.row(li)) {
                    assert!((a - b).abs() < 1e-3 * (1.0 + a.abs()), "{a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn distributed_training_matches_serial() {
        let (g, h0, labels, mask) = setup();
        let a = g.normalized_adjacency();
        let (w_serial, losses_serial) = train_serial(&a, &h0, 2, 4, &labels, &mask, 5, 0.5, 11);
        let part = partition_rows(&g, &a, Method::Gp, 3, 0.1, 2);
        let out = train_distributed(&g, &h0, 2, 4, &labels, &mask, &part, 5, 0.5, 11);
        for (s, d) in losses_serial.iter().zip(&out.losses) {
            assert!((s - d).abs() < 1e-3 * (1.0 + s.abs()), "loss {s} vs {d}");
        }
        assert!(
            out.w.approx_eq(&w_serial, 2e-3),
            "W diverged {}",
            out.w.max_abs_diff(&w_serial)
        );
    }

    #[test]
    fn epochs_cost_zero_p2p_traffic() {
        // The §4.4 showcase: after the K propagation sweeps, more epochs add
        // no point-to-point bytes at all.
        let (g, h0, labels, mask) = setup();
        let a = g.normalized_adjacency();
        let part = partition_rows(&g, &a, Method::Hp, 4, 0.1, 3);
        let plan = CommPlan::build(&a, &part);
        let k = 2;

        let short = train_distributed(&g, &h0, k, 4, &labels, &mask, &part, 1, 0.5, 1);
        let long = train_distributed(&g, &h0, k, 4, &labels, &mask, &part, 50, 0.5, 1);
        let bytes = |o: &SgcOutcome| o.counters.iter().map(|c| c.sent_bytes).sum::<u64>();
        assert_eq!(
            bytes(&short),
            bytes(&long),
            "epochs must add zero P2P traffic"
        );
        // And the propagation traffic is exactly K sweeps of the plan volume.
        let expected = plan.total_volume_rows() * (h0.cols() as u64) * 4 * k as u64;
        assert_eq!(bytes(&short), expected);
    }

    #[test]
    fn sgc_learns_the_planted_partition() {
        let (g, h0, labels, mask) = setup();
        let a = g.normalized_adjacency();
        let part = partition_rows(&g, &a, Method::Hp, 3, 0.1, 4);
        let out = train_distributed(&g, &h0, 2, 4, &labels, &mask, &part, 60, 1.0, 5);
        let test_mask: Vec<bool> = mask.iter().map(|&m| !m).collect();
        let acc = loss::accuracy(&out.predictions, &labels, &test_mask);
        assert!(acc > 0.6, "SGC accuracy {acc} too low");
        assert!(out.losses.last().unwrap() < &out.losses[0]);
    }
}
