//! Optimizers for the parameter update (paper Eq. 5 is plain SGD; Adam is
//! provided as the extension downstream GCN users invariably want).
//!
//! In the distributed trainer the optimizer state lives **replicated** on
//! every rank, exactly like the parameter matrices themselves: the
//! allreduced `ΔW` is identical everywhere, each rank applies the identical
//! update, and the replicas stay in lock-step with zero additional
//! communication — the same argument §4.1 makes for replicating `W`.

use pargcn_matrix::Dense;

/// Update-rule selection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Optimizer {
    /// `W ← W − η·ΔW` (paper Eq. 5).
    Sgd,
    /// Adam (Kingma & Ba) with the usual defaults.
    Adam { beta1: f32, beta2: f32, eps: f32 },
}

impl Optimizer {
    /// Adam with the standard (0.9, 0.999, 1e-8) parameters.
    pub fn adam() -> Self {
        Optimizer::Adam {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

/// Per-layer optimizer state (empty for SGD).
#[derive(Clone, Debug)]
pub struct OptimizerState {
    kind: Optimizer,
    /// First-moment estimates, one per layer (Adam only).
    m: Vec<Dense>,
    /// Second-moment estimates, one per layer (Adam only).
    v: Vec<Dense>,
    /// Steps taken (for Adam bias correction).
    t: u32,
}

impl OptimizerState {
    /// Fresh state for parameters with the given layer shapes.
    pub fn new(kind: Optimizer, shapes: &[(usize, usize)]) -> Self {
        let (m, v) = match kind {
            Optimizer::Sgd => (Vec::new(), Vec::new()),
            Optimizer::Adam { .. } => (
                shapes.iter().map(|&(r, c)| Dense::zeros(r, c)).collect(),
                shapes.iter().map(|&(r, c)| Dense::zeros(r, c)).collect(),
            ),
        };
        Self { kind, m, v, t: 0 }
    }

    /// Applies the update for layer `layer` in place.
    ///
    /// For Adam, callers must apply layers of one step in a fixed order and
    /// call [`OptimizerState::advance`] once per optimization step.
    pub fn apply(&mut self, layer: usize, w: &mut Dense, grad: &Dense, learning_rate: f32) {
        match self.kind {
            Optimizer::Sgd => w.sub_scaled_assign(grad, learning_rate),
            Optimizer::Adam { beta1, beta2, eps } => {
                let t = (self.t + 1) as f32;
                let m = &mut self.m[layer];
                let v = &mut self.v[layer];
                let bc1 = 1.0 - beta1.powf(t);
                let bc2 = 1.0 - beta2.powf(t);
                for ((wi, &gi), (mi, vi)) in w
                    .data_mut()
                    .iter_mut()
                    .zip(grad.data())
                    .zip(m.data_mut().iter_mut().zip(v.data_mut().iter_mut()))
                {
                    *mi = beta1 * *mi + (1.0 - beta1) * gi;
                    *vi = beta2 * *vi + (1.0 - beta2) * gi * gi;
                    let m_hat = *mi / bc1;
                    let v_hat = *vi / bc2;
                    *wi -= learning_rate * m_hat / (v_hat.sqrt() + eps);
                }
            }
        }
    }

    /// Marks the end of one optimization step (all layers updated).
    pub fn advance(&mut self) {
        self.t += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_matches_manual_update() {
        let mut st = OptimizerState::new(Optimizer::Sgd, &[(2, 2)]);
        let mut w = Dense::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let g = Dense::from_vec(2, 2, vec![0.5, 0.5, 0.5, 0.5]);
        st.apply(0, &mut w, &g, 0.1);
        st.advance();
        assert_eq!(w.data(), &[0.95, 1.95, 2.95, 3.95]);
    }

    #[test]
    fn adam_first_step_is_signed_learning_rate() {
        // With bias correction, step 1 moves each weight by ≈ lr·sign(g).
        let mut st = OptimizerState::new(Optimizer::adam(), &[(1, 3)]);
        let mut w = Dense::from_vec(1, 3, vec![0.0, 0.0, 0.0]);
        let g = Dense::from_vec(1, 3, vec![0.4, -0.2, 0.0]);
        st.apply(0, &mut w, &g, 0.01);
        st.advance();
        assert!((w.get(0, 0) + 0.01).abs() < 1e-4, "{}", w.get(0, 0));
        assert!((w.get(0, 1) - 0.01).abs() < 1e-4);
        assert_eq!(w.get(0, 2), 0.0);
    }

    #[test]
    fn adam_accumulates_momentum() {
        let mut st = OptimizerState::new(Optimizer::adam(), &[(1, 1)]);
        let mut w = Dense::from_vec(1, 1, vec![1.0]);
        let g = Dense::from_vec(1, 1, vec![1.0]);
        let mut prev = w.get(0, 0);
        for _ in 0..5 {
            st.apply(0, &mut w, &g, 0.1);
            st.advance();
            let now = w.get(0, 0);
            assert!(now < prev, "constant gradient must keep decreasing w");
            prev = now;
        }
    }

    #[test]
    fn deterministic_across_replicas() {
        // The replication argument: identical state + identical gradients →
        // bitwise identical updates.
        let grads = [
            Dense::from_vec(2, 2, vec![0.1, -0.2, 0.3, 0.05]),
            Dense::from_vec(2, 2, vec![-0.02, 0.08, 0.0, 0.4]),
        ];
        let run = || {
            let mut st = OptimizerState::new(Optimizer::adam(), &[(2, 2)]);
            let mut w = Dense::from_vec(2, 2, vec![1.0, 1.0, 1.0, 1.0]);
            for g in &grads {
                st.apply(0, &mut w, g, 0.05);
                st.advance();
            }
            w
        };
        assert_eq!(run().data(), run().data());
    }
}
