//! Parameter checkpointing: a small self-describing binary format for
//! saving and restoring trained [`Params`], so long experiments (deeper
//! GCNs, billion-scale runs) can resume and trained models can be shipped.
//!
//! Format (little-endian):
//! ```text
//! magic "PGCN"  | u32 version | u32 layer count
//! per layer:  u32 rows | u32 cols | rows·cols × f32 (row-major)
//! trailer:    u64 FNV-1a checksum over everything above
//! ```
//! The checksum catches truncation and corruption; version gates future
//! layout changes. Plain `std::io`, no serialization dependency.

use crate::model::Params;
use pargcn_matrix::Dense;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"PGCN";
const VERSION: u32 = 1;

/// Streaming FNV-1a, fed by every byte written/read before the trailer.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

/// Saves parameters to `path`.
pub fn save(params: &Params, path: &Path) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut out = io::BufWriter::new(file);
    let mut hash = Fnv::new();
    let write = |out: &mut io::BufWriter<std::fs::File>, hash: &mut Fnv, bytes: &[u8]| {
        hash.update(bytes);
        out.write_all(bytes)
    };
    write(&mut out, &mut hash, MAGIC)?;
    write(&mut out, &mut hash, &VERSION.to_le_bytes())?;
    write(
        &mut out,
        &mut hash,
        &(params.weights.len() as u32).to_le_bytes(),
    )?;
    for w in &params.weights {
        write(&mut out, &mut hash, &(w.rows() as u32).to_le_bytes())?;
        write(&mut out, &mut hash, &(w.cols() as u32).to_le_bytes())?;
        for &v in w.data() {
            write(&mut out, &mut hash, &v.to_le_bytes())?;
        }
    }
    out.write_all(&hash.0.to_le_bytes())?;
    out.flush()
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Loads parameters from `path`, verifying magic, version, and checksum.
pub fn load(path: &Path) -> io::Result<Params> {
    let mut file = io::BufReader::new(std::fs::File::open(path)?);
    let mut hash = Fnv::new();
    let read_exact = |file: &mut io::BufReader<std::fs::File>,
                      hash: &mut Fnv,
                      buf: &mut [u8]|
     -> io::Result<()> {
        file.read_exact(buf)?;
        hash.update(buf);
        Ok(())
    };

    let mut magic = [0u8; 4];
    read_exact(&mut file, &mut hash, &mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a pargcn checkpoint"));
    }
    let mut u32buf = [0u8; 4];
    read_exact(&mut file, &mut hash, &mut u32buf)?;
    if u32::from_le_bytes(u32buf) != VERSION {
        return Err(bad("unsupported checkpoint version"));
    }
    read_exact(&mut file, &mut hash, &mut u32buf)?;
    let layers = u32::from_le_bytes(u32buf) as usize;
    if layers > 4096 {
        return Err(bad("implausible layer count"));
    }

    let mut weights = Vec::with_capacity(layers);
    for _ in 0..layers {
        read_exact(&mut file, &mut hash, &mut u32buf)?;
        let rows = u32::from_le_bytes(u32buf) as usize;
        read_exact(&mut file, &mut hash, &mut u32buf)?;
        let cols = u32::from_le_bytes(u32buf) as usize;
        let count = rows
            .checked_mul(cols)
            .filter(|&c| c <= (1 << 31))
            .ok_or_else(|| bad("implausible layer shape"))?;
        let mut data = Vec::with_capacity(count);
        let mut f32buf = [0u8; 4];
        for _ in 0..count {
            read_exact(&mut file, &mut hash, &mut f32buf)?;
            data.push(f32::from_le_bytes(f32buf));
        }
        weights.push(Dense::from_vec(rows, cols, data));
    }
    let mut trailer = [0u8; 8];
    file.read_exact(&mut trailer)?;
    if u64::from_le_bytes(trailer) != hash.0 {
        return Err(bad("checksum mismatch: checkpoint corrupted"));
    }
    Ok(Params { weights })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GcnConfig;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("pargcn_ckpt_{name}_{}.bin", std::process::id()))
    }

    #[test]
    fn roundtrip_is_bitwise_exact() {
        let params = GcnConfig::two_layer(7, 5, 3).init_params(42);
        let path = tmp("roundtrip");
        save(&params, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(params.weights.len(), back.weights.len());
        for (a, b) in params.weights.iter().zip(&back.weights) {
            assert_eq!(a.data(), b.data());
            assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_truncated_file() {
        let params = GcnConfig::two_layer(4, 4, 2).init_params(1);
        let path = tmp("truncated");
        save(&params, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 6]).unwrap();
        assert!(load(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_corruption() {
        let params = GcnConfig::two_layer(4, 4, 2).init_params(1);
        let path = tmp("corrupt");
        save(&params, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(load(&path).is_err(), "flipped byte must fail the checksum");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_wrong_magic() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOPE....").unwrap();
        let err = load(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_params_roundtrip() {
        let params = Params { weights: vec![] };
        let path = tmp("empty");
        save(&params, &path).unwrap();
        assert_eq!(load(&path).unwrap().weights.len(), 0);
        std::fs::remove_file(path).ok();
    }
}
