//! Epoch-level metrics and the cost-model composition of a full training
//! epoch — the quantities the paper's tables and figures report.

use crate::model::GcnConfig;
use crate::plan::CommPlan;
use pargcn_comm::costmodel::{self, MachineProfile, PhaseTime};
use pargcn_comm::CommCounters;

/// Aggregate communication metrics of a run, in the normalized form of the
/// paper's Table 2.
#[derive(Clone, Debug, Default)]
pub struct VolumeStats {
    pub avg_sent_bytes: f64,
    pub max_sent_bytes: u64,
    pub avg_sent_messages: f64,
    pub max_sent_messages: u64,
}

impl VolumeStats {
    /// Builds from per-rank counters.
    pub fn from_counters(counters: &[CommCounters]) -> VolumeStats {
        let p = counters.len().max(1) as f64;
        let total_bytes: u64 = counters.iter().map(|c| c.sent_bytes).sum();
        let total_msgs: u64 = counters.iter().map(|c| c.sent_messages).sum();
        VolumeStats {
            avg_sent_bytes: total_bytes as f64 / p,
            max_sent_bytes: counters.iter().map(|c| c.sent_bytes).max().unwrap_or(0),
            avg_sent_messages: total_msgs as f64 / p,
            max_sent_messages: counters.iter().map(|c| c.sent_messages).max().unwrap_or(0),
        }
    }
}

/// Cost-model time of one full training epoch (feedforward + backprop +
/// per-layer `ΔW` allreduce) for the point-to-point algorithm.
///
/// Per layer `k` (widths `d_{k-1} → d_k`):
/// * the feedforward exchange carries `d_{k-1}`-wide `H` rows and performs
///   `2·nnz·d_{k-1}` SpMM FLOPs plus `2·n_m·d_{k-1}·d_k` DMM FLOPs;
/// * the backprop exchange carries `d_k`-wide `G` rows, SpMMs at `d_k`, and
///   performs two DMMs (`Sᵏ` and `ΔWᵏ`), `4·d_{k-1}·d_k` FLOPs per row;
/// * the allreduce moves the `d_{k-1}×d_k` gradient in a log tree.
pub fn simulate_epoch(
    plan_f: &CommPlan,
    plan_b: &CommPlan,
    config: &GcnConfig,
    profile: &MachineProfile,
) -> PhaseTime {
    let mut phases = Vec::with_capacity(config.layers() * 2);
    let mut collectives = 0.0;
    for k in 1..=config.layers() {
        let (d_in, d_out) = (config.dims[k - 1], config.dims[k]);
        phases.push(costmodel::phase_time(
            profile,
            &plan_f.phase_costs(d_in, d_in, 2.0 * d_in as f64 * d_out as f64),
        ));
        phases.push(costmodel::phase_time(
            profile,
            &plan_b.phase_costs(d_out, d_out, 4.0 * d_in as f64 * d_out as f64),
        ));
        collectives += profile.allreduce_time((d_in * d_out * 4) as u64, plan_f.p);
    }
    costmodel::epoch_time(&phases, collectives)
}

/// The collective (`ΔW` allreduce) part of a simulated epoch's time — the
/// component the paper calls "negligible cost compared to the communication
/// costs incurred in parallel SpMM" (§1). Grows as `log p` regardless of
/// partition quality, so comparisons of partition-driven communication
/// should subtract it.
pub fn collective_seconds(config: &GcnConfig, profile: &MachineProfile, p: usize) -> f64 {
    (1..=config.layers())
        .map(|k| profile.allreduce_time((config.dims[k - 1] * config.dims[k] * 4) as u64, p))
        .sum()
}

/// Cost-model time of one *serial* epoch on a single node — the role the
/// DGL baseline plays in the paper's speedup columns.
pub fn simulate_serial_epoch(
    nnz: usize,
    n: usize,
    config: &GcnConfig,
    profile: &MachineProfile,
) -> f64 {
    let mut spmm_flops = 0.0f64;
    let mut dmm_flops = 0.0f64;
    for k in 1..=config.layers() {
        let (d_in, d_out) = (config.dims[k - 1] as f64, config.dims[k] as f64);
        // Forward: SpMM + DMM. Backward: SpMM on G (d_out wide) + 2 DMMs.
        spmm_flops += 2.0 * nnz as f64 * (d_in + d_out);
        dmm_flops += 6.0 * n as f64 * d_in * d_out;
    }
    profile.compute_time(spmm_flops) + profile.dmm_time(dmm_flops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GcnConfig;
    use pargcn_graph::gen::grid;
    use pargcn_partition::{partition_rows, Method};

    fn plans(p: usize) -> (CommPlan, usize, usize) {
        plans_sized(p, 600)
    }

    fn plans_sized(p: usize, n: usize) -> (CommPlan, usize, usize) {
        let g = grid::road_network(n, 1);
        let a = g.normalized_adjacency();
        let part = partition_rows(&g, &a, Method::Hp, p, 0.05, 2);
        (CommPlan::build(&a, &part), a.nnz(), g.n())
    }

    #[test]
    fn volume_stats_from_counters() {
        let counters = vec![
            CommCounters {
                sent_bytes: 100,
                sent_messages: 2,
                ..Default::default()
            },
            CommCounters {
                sent_bytes: 300,
                sent_messages: 4,
                ..Default::default()
            },
        ];
        let v = VolumeStats::from_counters(&counters);
        assert_eq!(v.avg_sent_bytes, 200.0);
        assert_eq!(v.max_sent_bytes, 300);
        assert_eq!(v.max_sent_messages, 4);
    }

    #[test]
    fn simulated_epoch_is_positive_and_decomposes() {
        let (plan, ..) = plans(4);
        let config = GcnConfig::two_layer(16, 16, 4);
        let t = simulate_epoch(&plan, &plan, &config, &MachineProfile::cpu_cluster());
        assert!(t.total > 0.0);
        assert!((t.comm + t.comp - t.total).abs() < 1e-12 * t.total.max(1.0));
    }

    #[test]
    fn parallel_beats_serial_baseline_at_scale() {
        // The DGL baseline is a whole 16-core server, so few cluster cores
        // lose to it (paper Fig. 3 starts at P=16 barely ahead); enough
        // cores win decisively.
        let (plan, nnz, n) = plans_sized(64, 20_000);
        let config = GcnConfig::two_layer(32, 32, 8);
        let profile = MachineProfile::cpu_cluster();
        let serial = simulate_serial_epoch(nnz, n, &config, &MachineProfile::single_node());
        let par = simulate_epoch(&plan, &plan, &config, &profile).total;
        assert!(
            par < serial,
            "64-way parallel {par:.6} should beat the DGL-class baseline {serial:.6}"
        );
    }

    #[test]
    fn more_ranks_reduce_time_with_good_partitions() {
        let config = GcnConfig::two_layer(32, 32, 8);
        let profile = MachineProfile::cpu_cluster();
        let (p4, ..) = plans_sized(4, 5000);
        let (p16, ..) = plans_sized(16, 5000);
        let t4 = simulate_epoch(&p4, &p4, &config, &profile).total;
        let t16 = simulate_epoch(&p16, &p16, &config, &profile).total;
        assert!(t16 < t4, "scaling broken: t4={t4} t16={t16}");
    }
}
