//! Single-node reference GCN trainer.
//!
//! Plays two roles from the paper's evaluation:
//!
//! * the **DGL baseline**: all speedups in Table 2 / Fig. 4b are "parallel
//!   time vs. single-node time" ratios, and this is the single-node
//!   implementation (same kernels, no partitioning, no communication);
//! * the **correctness oracle**: distributed full-batch training must
//!   reproduce these losses/parameters/predictions for any partition, up to
//!   floating-point reassociation.

use crate::loss;
use crate::model::{GcnConfig, LayerOrder, Params};
use crate::optim::OptimizerState;
use pargcn_graph::Graph;
use pargcn_matrix::{ComputeCtx, Csr, Dense};

/// Serial full-batch GCN trainer.
///
/// "Serial" refers to the absence of ranks/communication; local kernels
/// still run on a thread pool (`PARGCN_THREADS`, default
/// `available_parallelism`) — exactly like the paper's single-node
/// baseline, whose GraphBLAS kernels are multithreaded. Pooled kernels are
/// bitwise identical to serial execution, so the oracle role is unaffected.
pub struct SerialTrainer {
    /// Normalized adjacency `Â`.
    a: Csr,
    /// `Âᵀ`, used by backpropagation when the graph is directed (§3.1).
    a_back: Csr,
    config: GcnConfig,
    pub params: Params,
    opt_state: OptimizerState,
    ctx: ComputeCtx,
}

/// Intermediate state of one forward pass, kept for backpropagation.
pub struct ForwardState {
    /// `Z¹…Z^L` (pre-activation).
    pub z: Vec<Dense>,
    /// `H⁰…H^L` (post-activation; `h[0]` is the input).
    pub h: Vec<Dense>,
}

impl SerialTrainer {
    /// Builds the trainer from a graph; parameters are Glorot-initialized
    /// from `param_seed`.
    pub fn new(graph: &Graph, config: GcnConfig, param_seed: u64) -> Self {
        let a = graph.normalized_adjacency();
        let a_back = if graph.directed() {
            a.transpose()
        } else {
            a.clone()
        };
        let params = config.init_params(param_seed);
        let opt_state = OptimizerState::new(config.optimizer, &config.shapes());
        Self {
            a,
            a_back,
            config,
            params,
            opt_state,
            ctx: ComputeCtx::for_ranks(1, None),
        }
    }

    /// Builds directly from a normalized adjacency (used by mini-batch
    /// training on subgraphs).
    pub fn from_adjacency(a: Csr, directed: bool, config: GcnConfig, params: Params) -> Self {
        let a_back = if directed { a.transpose() } else { a.clone() };
        let opt_state = OptimizerState::new(config.optimizer, &config.shapes());
        Self {
            a,
            a_back,
            config,
            params,
            opt_state,
            ctx: ComputeCtx::for_ranks(1, None),
        }
    }

    /// Replaces the compute context (e.g. a shared pool, or a forced
    /// thread count for benchmarking).
    pub fn with_ctx(mut self, ctx: ComputeCtx) -> Self {
        self.ctx = ctx;
        self
    }

    pub fn config(&self) -> &GcnConfig {
        &self.config
    }

    /// Feedforward (paper Eq. 1): returns all intermediates.
    pub fn forward(&self, h0: &Dense) -> ForwardState {
        assert_eq!(h0.rows(), self.a.n_rows(), "feature row count mismatch");
        assert_eq!(h0.cols(), self.config.dims[0], "input width mismatch");
        let cctx = &self.ctx;
        let pool = cctx.pool();
        let mut z = Vec::with_capacity(self.config.layers());
        let mut h = Vec::with_capacity(self.config.layers() + 1);
        h.push(h0.clone());
        for k in 1..=self.config.layers() {
            let w = &self.params.weights[k - 1];
            let zk = match self.config.order {
                LayerOrder::SpmmFirst => cctx.matmul(&cctx.spmm(&self.a, &h[k - 1]), w),
                LayerOrder::DmmFirst => cctx.spmm(&self.a, &cctx.matmul(&h[k - 1], w)),
            };
            let hk = self.config.activation(k).apply_pool(&zk, pool);
            z.push(zk);
            h.push(hk);
        }
        ForwardState { z, h }
    }

    /// Backpropagation (paper Eqs. 2–5) given the output-layer loss
    /// gradient `∇_{H^L} J`. Returns the parameter gradients `ΔW¹…ΔW^L`.
    pub fn backward(&self, state: &ForwardState, grad_hl: &Dense) -> Vec<Dense> {
        let cctx = &self.ctx;
        let pool = cctx.pool();
        let layers = self.config.layers();
        let mut delta_w = vec![Dense::zeros(0, 0); layers];
        // G^L = ∇_{H^L} J ⊙ σ'(Z^L)  (Eq. 2)
        let mut g = grad_hl.hadamard(
            &self
                .config
                .activation(layers)
                .derivative_pool(&state.z[layers - 1], pool),
        );
        for k in (1..=layers).rev() {
            let w = &self.params.weights[k - 1];
            match self.config.order {
                LayerOrder::SpmmFirst => {
                    // ΔWᵏ = (H^{k-1})ᵀ (Âᵀ Gᵏ)   (Eq. 4; Âᵀ for directed)
                    let ag = cctx.spmm(&self.a_back, &g);
                    delta_w[k - 1] = cctx.matmul_at(&state.h[k - 1], &ag);
                    if k > 1 {
                        // Sᵏ = (ÂᵀGᵏ)(Wᵏ)ᵀ; G^{k-1} = Sᵏ ⊙ σ'(Z^{k-1})  (Eq. 3)
                        let s = cctx.matmul_bt(&ag, w);
                        g = s.hadamard(
                            &self
                                .config
                                .activation(k - 1)
                                .derivative_pool(&state.z[k - 2], pool),
                        );
                    }
                }
                LayerOrder::DmmFirst => {
                    // Z = Â(HW): dJ/d(HW) = ÂᵀG, ΔW = Hᵀ(ÂᵀG),
                    // dJ/dH = (ÂᵀG)Wᵀ — same shapes, same comm pattern.
                    let ag = cctx.spmm(&self.a_back, &g);
                    delta_w[k - 1] = cctx.matmul_at(&state.h[k - 1], &ag);
                    if k > 1 {
                        let s = cctx.matmul_bt(&ag, w);
                        g = s.hadamard(
                            &self
                                .config
                                .activation(k - 1)
                                .derivative_pool(&state.z[k - 2], pool),
                        );
                    }
                }
            }
        }
        delta_w
    }

    /// Applies the parameter update (Eq. 5 for SGD; Adam when configured).
    pub fn apply_gradients(&mut self, delta_w: &[Dense]) {
        for (layer, (w, dw)) in self.params.weights.iter_mut().zip(delta_w).enumerate() {
            self.opt_state
                .apply(layer, w, dw, self.config.learning_rate);
        }
        self.opt_state.advance();
    }

    /// One full-batch training epoch with masked softmax cross-entropy.
    /// Returns the epoch loss.
    pub fn train_epoch(&mut self, h0: &Dense, labels: &[u32], mask: &[bool]) -> f64 {
        let state = self.forward(h0);
        let (j, grad) = loss::softmax_cross_entropy(&state.h[self.config.layers()], labels, mask);
        let delta_w = self.backward(&state, &grad);
        self.apply_gradients(&delta_w);
        j
    }

    /// Output-layer logits for the current parameters.
    pub fn predict(&self, h0: &Dense) -> Dense {
        let state = self.forward(h0);
        state.h.into_iter().last().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargcn_graph::gen::sbm::{self, SbmParams};
    use pargcn_graph::Graph;

    fn tiny_graph() -> Graph {
        Graph::from_edges(5, false, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
    }

    #[test]
    fn forward_shapes() {
        let g = tiny_graph();
        let t = SerialTrainer::new(&g, GcnConfig::two_layer(3, 4, 2), 1);
        let h0 = Dense::zeros(5, 3);
        let state = t.forward(&h0);
        assert_eq!(state.z.len(), 2);
        assert_eq!(state.h.len(), 3);
        assert_eq!((state.h[2].rows(), state.h[2].cols()), (5, 2));
    }

    #[test]
    fn gradients_match_finite_differences() {
        // Centered finite differences on every parameter entry against the
        // analytic backward pass — run in f32, so tolerances are loose but
        // meaningful.
        let g = tiny_graph();
        let mut config = GcnConfig::two_layer(3, 4, 2);
        config.learning_rate = 0.0; // no updates during probing
        let t = SerialTrainer::new(&g, config, 7);
        let mut rng = pargcn_util::rng::StdRng::seed_from_u64(3);
        use pargcn_util::rng::SeedableRng;
        let h0 = Dense::random(5, 3, &mut rng);
        let labels = vec![0u32, 1, 0, 1, 0];
        let mask = vec![true, true, false, true, true];

        let state = t.forward(&h0);
        let (_, grad_hl) = loss::softmax_cross_entropy(&state.h[2], &labels, &mask);
        let analytic = t.backward(&state, &grad_hl);

        let eps = 1e-2f32;
        for (layer, analytic_grad) in analytic.iter().enumerate().take(2) {
            for i in 0..t.params.weights[layer].rows() {
                for j in 0..t.params.weights[layer].cols() {
                    let mut tp = SerialTrainer::new(&g, t.config.clone(), 7);
                    tp.params = t.params.clone();
                    let w = &mut tp.params.weights[layer];
                    w.set(i, j, w.get(i, j) + eps);
                    let (lp, _) =
                        loss::softmax_cross_entropy(&tp.forward(&h0).h[2], &labels, &mask);

                    let mut tm = SerialTrainer::new(&g, t.config.clone(), 7);
                    tm.params = t.params.clone();
                    let w = &mut tm.params.weights[layer];
                    w.set(i, j, w.get(i, j) - eps);
                    let (lm, _) =
                        loss::softmax_cross_entropy(&tm.forward(&h0).h[2], &labels, &mask);

                    let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
                    let an = analytic_grad.get(i, j);
                    assert!(
                        (fd - an).abs() < 2e-2 * (1.0 + an.abs()),
                        "layer {layer} ({i},{j}): fd {fd} vs analytic {an}"
                    );
                }
            }
        }
    }

    #[test]
    fn training_reduces_loss_on_learnable_data() {
        let d = sbm::generate(
            SbmParams {
                n: 280,
                classes: 4,
                features: 8,
                ..Default::default()
            },
            5,
        );
        let mut t = SerialTrainer::new(&d.graph, GcnConfig::two_layer(8, 16, 4), 2);
        let first = t.train_epoch(&d.features, &d.labels, &d.train_mask);
        let mut last = first;
        for _ in 0..30 {
            last = t.train_epoch(&d.features, &d.labels, &d.train_mask);
        }
        assert!(
            last < first * 0.8,
            "loss did not decrease: {first} → {last}"
        );
    }

    #[test]
    fn learns_planted_partition_above_chance() {
        let d = sbm::generate(
            SbmParams {
                n: 400,
                classes: 4,
                features: 16,
                feature_separation: 2.0,
                ..Default::default()
            },
            9,
        );
        let mut t = SerialTrainer::new(&d.graph, GcnConfig::two_layer(16, 16, 4), 3);
        for _ in 0..40 {
            t.train_epoch(&d.features, &d.labels, &d.train_mask);
        }
        let test_mask: Vec<bool> = d.train_mask.iter().map(|&m| !m).collect();
        let acc = loss::accuracy(&t.predict(&d.features), &d.labels, &test_mask);
        assert!(acc > 0.6, "test accuracy {acc} not above chance (0.25)");
    }

    #[test]
    fn directed_graph_uses_transpose_in_backward() {
        // On a directed chain the forward and backward SpMMs differ; just
        // assert gradients stay finite-difference-consistent.
        let g = Graph::from_edges(4, true, &[(0, 1), (1, 2), (2, 3)]);
        let mut config = GcnConfig::two_layer(2, 3, 2);
        config.learning_rate = 0.0;
        let t = SerialTrainer::new(&g, config, 11);
        let h0 = Dense::from_vec(4, 2, vec![0.3, -0.1, 0.5, 0.2, -0.4, 0.8, 0.1, 0.6]);
        let labels = vec![0u32, 1, 0, 1];
        let mask = vec![true; 4];
        let state = t.forward(&h0);
        let (_, grad_hl) = loss::softmax_cross_entropy(&state.h[2], &labels, &mask);
        let analytic = t.backward(&state, &grad_hl);
        let eps = 1e-2f32;
        // Spot-check a few entries of W¹.
        for (i, j) in [(0usize, 0usize), (1, 2), (0, 1)] {
            let probe = |delta: f32| {
                let mut tt = SerialTrainer::new(&g, t.config.clone(), 11);
                tt.params = t.params.clone();
                let w = &mut tt.params.weights[0];
                w.set(i, j, w.get(i, j) + delta);
                loss::softmax_cross_entropy(&tt.forward(&h0).h[2], &labels, &mask).0
            };
            let fd = ((probe(eps) - probe(-eps)) / (2.0 * eps as f64)) as f32;
            let an = analytic[0].get(i, j);
            assert!((fd - an).abs() < 2e-2 * (1.0 + an.abs()), "fd {fd} vs {an}");
        }
    }

    #[test]
    fn dmm_first_matches_spmm_first() {
        // §4.4: (ÂH)W == Â(HW); both orders must give identical results.
        let g = tiny_graph();
        let mut c1 = GcnConfig::two_layer(3, 4, 2);
        c1.order = LayerOrder::SpmmFirst;
        let mut c2 = c1.clone();
        c2.order = LayerOrder::DmmFirst;
        let t1 = SerialTrainer::new(&g, c1, 5);
        let t2 = SerialTrainer::new(&g, c2, 5);
        use pargcn_util::rng::SeedableRng;
        let h0 = Dense::random(5, 3, &mut pargcn_util::rng::StdRng::seed_from_u64(1));
        assert!(t1.predict(&h0).approx_eq(&t2.predict(&h0), 1e-4));
    }
}
