//! Distributed-memory parallel GCN training — the primary contribution of
//! Demirci, Haldar & Ferhatosmanoglu (VLDB 2022), reproduced from scratch.
//!
//! The training pipeline:
//!
//! 1. [`plan::CommPlan`] turns a row [`pargcn_partition::Partition`] of the
//!    normalized adjacency into per-rank local blocks and the send/receive
//!    sets `Sₘ`/`Rₘ` of Eqs. 8–9;
//! 2. [`dist`] runs Algorithm 1 (feedforward) and Algorithm 2
//!    (backpropagation) over the [`pargcn_comm`] runtime: non-blocking
//!    point-to-point row transfers for the SpMM, purely local DMMs against
//!    the replicated parameter matrices, and one allreduce per layer for
//!    `ΔW`;
//! 3. [`serial`] is the single-node reference (the paper's DGL baseline
//!    role) and the correctness oracle: distributed training must reproduce
//!    its losses and predictions to float tolerance for *any* partition;
//! 4. [`baselines::cagnet`] is the CAGNET-style broadcast algorithm the
//!    paper compares against;
//! 5. [`minibatch`] samples subgraphs and trains on them, the workload the
//!    stochastic hypergraph model (§4.3.3) optimizes for.
//!
//! ```
//! use pargcn_core::{dist::train_full_batch, GcnConfig};
//! use pargcn_graph::gen::grid;
//! use pargcn_matrix::Dense;
//! use pargcn_partition::{partition_rows, Method};
//!
//! let g = grid::road_network(120, 1);
//! let a = g.normalized_adjacency();
//! let part = partition_rows(&g, &a, Method::Hp, 3, 0.05, 1);
//!
//! let config = GcnConfig::two_layer(4, 6, 2);
//! let h0 = Dense::from_fn(g.n(), 4, |i, j| ((i * 7 + j) % 5) as f32 / 5.0);
//! let labels: Vec<u32> = (0..g.n()).map(|i| (i % 2) as u32).collect();
//! let mask = vec![true; g.n()];
//!
//! // Three ranks (threads) run Algorithms 1–2 for five epochs.
//! let out = train_full_batch(&g, &h0, &labels, &mask, &part, &config, 5, 42);
//! assert_eq!(out.losses.len(), 5);
//! assert!(out.losses[4] < out.losses[0], "training reduces the loss");
//! ```

pub mod activations;
pub mod baselines;
pub mod checkpoint;
pub mod dist;
pub mod gat;
pub mod loss;
pub mod metrics;
pub mod minibatch;
pub mod model;
pub mod optim;
pub mod plan;
pub mod serial;
pub mod sgc;

pub use model::{GcnConfig, LayerOrder, Params};
pub use plan::{CommPlan, PlanBuilder};
