//! Comparison baselines: the CAGNET-style broadcast training algorithm
//! (§5: "the algorithm most related to our own") and, in
//! [`crate::serial`], the single-node DGL-role implementation.

pub mod cagnet;
