//! CAGNET-style 1-D broadcast training (Tripathy, Yelick & Buluç, SC'20) —
//! the paper's main comparison point.
//!
//! CAGNET's 1-D variant performs the parallel SpMM by **turn-wise
//! broadcasts**: in each layer every rank `b` broadcasts its whole local
//! `H`-block to all ranks, which multiply it against the matching column
//! block of their local adjacency. Every rank therefore receives all `n`
//! rows per layer regardless of which it actually needs — the redundant
//! data movement the point-to-point algorithm eliminates. The math is
//! identical to Algorithms 1–2, so results must match the serial oracle
//! exactly like the P2P trainer does (tested).

use crate::dist::TAG_BWD;
use crate::loss;
use crate::model::{GcnConfig, Params};
use pargcn_comm::costmodel::{self, MachineProfile, PhaseTime};
use pargcn_comm::{CommCounters, Communicator, RankCtx};
use pargcn_graph::Graph;
use pargcn_matrix::{gather, ComputeCtx, ComputeSpec, Csr, Dense};
use pargcn_partition::Partition;
use std::time::Instant;

/// Per-rank data of the broadcast algorithm: the local rows and, for every
/// source rank `b`, the column block of the local adjacency to multiply
/// against `b`'s broadcast.
#[derive(Clone, Debug)]
pub struct CagnetRank {
    pub rank: usize,
    pub local_rows: Vec<u32>,
    /// `blocks[b]`: `Aₘ` columns owned by rank `b`, renumbered to positions
    /// within `b`'s local row list.
    pub blocks: Vec<Csr>,
}

/// The broadcast-algorithm plan for one SpMM direction.
#[derive(Clone, Debug)]
pub struct CagnetPlan {
    pub ranks: Vec<CagnetRank>,
    pub n: usize,
    pub p: usize,
}

impl CagnetPlan {
    /// Builds the column-block decomposition of each rank's row block.
    pub fn build(a: &Csr, part: &Partition) -> CagnetPlan {
        assert_eq!(a.n_rows(), a.n_cols());
        assert_eq!(a.n_rows(), part.n());
        let n = a.n_rows();
        let p = part.p();
        let members = part.members();
        // Global row id → position within its owner's local list.
        let mut pos_in_owner = vec![0u32; n];
        for rows in &members {
            for (li, &v) in rows.iter().enumerate() {
                pos_in_owner[v as usize] = li as u32;
            }
        }
        let mut ranks = Vec::with_capacity(p);
        for (m, rows) in members.iter().enumerate() {
            let a_m = a.select_rows(rows);
            let mut blocks = Vec::with_capacity(p);
            for (b, members_b) in members.iter().enumerate() {
                let mut map = vec![u32::MAX; n];
                for &v in members_b {
                    map[v as usize] = pos_in_owner[v as usize];
                }
                blocks.push(
                    a_m.filter_cols(|c| part.part_of(c as usize) as usize == b)
                        .remap_cols(&map, members_b.len()),
                );
            }
            ranks.push(CagnetRank {
                rank: m,
                local_rows: rows.clone(),
                blocks,
            });
        }
        CagnetPlan { ranks, n, p }
    }
}

/// One broadcast-based SpMM sweep: every rank ends with its block of `A·X`.
/// `scratch` holds the stage payload and is reused across stages, layers
/// and epochs — after it has grown to the largest block, the sweep's only
/// allocation is the output matrix.
fn spmm_broadcast(
    ctx: &mut RankCtx,
    plan: &CagnetPlan,
    rank_plan: &CagnetRank,
    x_local: &Dense,
    d: usize,
    cctx: &ComputeCtx,
    scratch: &mut Vec<f32>,
) -> Dense {
    let mut ax = Dense::zeros(rank_plan.local_rows.len(), d);
    for b in 0..plan.p {
        let rows_b = plan.ranks[b].local_rows.len();
        scratch.clear();
        if ctx.rank() == b {
            scratch.extend_from_slice(x_local.data());
        }
        ctx.broadcast(b, scratch);
        let xb = Dense::from_vec(rows_b, d, std::mem::take(scratch));
        cctx.spmm_into(&rank_plan.blocks[b], &xb, &mut ax, true);
        *scratch = xb.into_vec();
    }
    ax
}

/// Outcome of a CAGNET training run (mirrors the P2P trainer's).
pub struct CagnetOutcome {
    pub losses: Vec<f64>,
    pub params: Params,
    pub predictions: Dense,
    pub counters: Vec<CommCounters>,
}

/// Full-batch training with the broadcast algorithm.
// The training entry points take the full problem description by design;
// a config struct would just rename the eight pieces.
#[allow(clippy::too_many_arguments)]
pub fn train_full_batch(
    graph: &Graph,
    h0: &Dense,
    labels: &[u32],
    mask: &[bool],
    part: &Partition,
    config: &GcnConfig,
    epochs: usize,
    param_seed: u64,
) -> CagnetOutcome {
    train_full_batch_threads(
        graph, h0, labels, mask, part, config, epochs, param_seed, None,
    )
}

/// As [`train_full_batch`] with an explicit per-rank kernel thread count
/// (`None` = `PARGCN_THREADS` env, else `available_parallelism / p`).
#[allow(clippy::too_many_arguments)]
pub fn train_full_batch_threads(
    graph: &Graph,
    h0: &Dense,
    labels: &[u32],
    mask: &[bool],
    part: &Partition,
    config: &GcnConfig,
    epochs: usize,
    param_seed: u64,
    threads: Option<usize>,
) -> CagnetOutcome {
    train_full_batch_spec(
        graph,
        h0,
        labels,
        mask,
        part,
        config,
        epochs,
        param_seed,
        ComputeSpec::threads(threads),
    )
}

/// As [`train_full_batch`] with a full per-rank compute spec (thread
/// count and kernel engine).
#[allow(clippy::too_many_arguments)]
pub fn train_full_batch_spec(
    graph: &Graph,
    h0: &Dense,
    labels: &[u32],
    mask: &[bool],
    part: &Partition,
    config: &GcnConfig,
    epochs: usize,
    param_seed: u64,
    spec: ComputeSpec,
) -> CagnetOutcome {
    let a = graph.normalized_adjacency();
    let plan_f = CagnetPlan::build(&a, part);
    let plan_b = if graph.directed() {
        CagnetPlan::build(&a.transpose(), part)
    } else {
        plan_f.clone()
    };
    let p = part.p();
    let n = graph.n();
    let mask_total = mask.iter().filter(|&&m| m).count().max(1) as f64;
    let init = config.init_params(param_seed);
    let layers = config.layers();

    let locals: Vec<(Dense, Vec<u32>, Vec<bool>)> = plan_f
        .ranks
        .iter()
        .map(|rp| {
            (
                gather::gather_rows(h0, &rp.local_rows),
                rp.local_rows.iter().map(|&v| labels[v as usize]).collect(),
                rp.local_rows.iter().map(|&v| mask[v as usize]).collect(),
            )
        })
        .collect();

    struct R {
        pred: Dense,
        counters: CommCounters,
        losses: Vec<f64>,
        params: Params,
    }

    let results: Vec<R> = Communicator::run(p, |ctx| {
        let m = ctx.rank();
        let (h_local, l_local, m_local) = &locals[m];
        let cctx = ComputeCtx::for_ranks_spec(p, spec);
        let mut params = init.clone();
        let mut losses = Vec::with_capacity(epochs);
        let start = Instant::now();

        // Persistent broadcast payload, shared by every stage of every
        // sweep in both directions for the whole run.
        let mut bcast = Vec::new();

        let forward = |ctx: &mut RankCtx, params: &Params, bcast: &mut Vec<f32>| {
            let pool = cctx.pool();
            let mut z = Vec::with_capacity(layers);
            let mut h = vec![h_local.clone()];
            for k in 1..=layers {
                let ah = spmm_broadcast(
                    ctx,
                    &plan_f,
                    &plan_f.ranks[m],
                    &h[k - 1],
                    config.dims[k - 1],
                    &cctx,
                    bcast,
                );
                let zk = cctx.matmul(&ah, &params.weights[k - 1]);
                h.push(config.activation(k).apply_pool(&zk, pool));
                z.push(zk);
            }
            (z, h)
        };

        for _ in 0..epochs {
            let (z, h) = forward(ctx, &params, &mut bcast);
            let probs = loss::softmax_rows(&h[layers]);
            let mut loss_local = 0.0f64;
            let mut grad = Dense::zeros(h[layers].rows(), h[layers].cols());
            for i in 0..h[layers].rows() {
                if !m_local[i] {
                    continue;
                }
                let y = l_local[i] as usize;
                loss_local -= (probs.get(i, y).max(1e-12) as f64).ln();
                for j in 0..grad.cols() {
                    let ind = if j == y { 1.0 } else { 0.0 };
                    grad.set(i, j, (probs.get(i, j) - ind) / mask_total as f32);
                }
            }
            let mut buf = [(loss_local / mask_total) as f32];
            ctx.allreduce_sum(&mut buf);
            losses.push(buf[0] as f64);

            // Backward with broadcast SpMM (tags in the BWD range keep the
            // collectives' reserved tags untouched — broadcasts tag
            // internally, this is only for symmetry with the P2P trainer).
            let _ = TAG_BWD;
            let pool = cctx.pool();
            let mut g = grad.hadamard(
                &config
                    .activation(layers)
                    .derivative_pool(&z[layers - 1], pool),
            );
            for k in (1..=layers).rev() {
                let ag = spmm_broadcast(
                    ctx,
                    &plan_b,
                    &plan_b.ranks[m],
                    &g,
                    config.dims[k],
                    &cctx,
                    &mut bcast,
                );
                let mut delta_w = cctx.matmul_at(&h[k - 1], &ag);
                let s = if k > 1 {
                    Some(cctx.matmul_bt(&ag, &params.weights[k - 1]))
                } else {
                    None
                };
                ctx.allreduce_sum(delta_w.data_mut());
                params.weights[k - 1].sub_scaled_assign(&delta_w, config.learning_rate);
                if let Some(s) = s {
                    g = s.hadamard(&config.activation(k - 1).derivative_pool(&z[k - 2], pool));
                }
            }
        }
        let (_, h) = forward(ctx, &params, &mut bcast);
        ctx.add_compute_seconds(start.elapsed().as_secs_f64() - ctx.counters().comm_seconds);
        ctx.add_compute_flops(cctx.take_flops());
        R {
            pred: h.into_iter().last().unwrap(),
            counters: ctx.counters().clone(),
            losses,
            params,
        }
    });

    let classes = config.dims[layers];
    let mut predictions = Dense::zeros(n, classes);
    for (rp, res) in plan_f.ranks.iter().zip(&results) {
        gather::scatter_rows(&res.pred, &rp.local_rows, &mut predictions);
    }
    CagnetOutcome {
        losses: results[0].losses.clone(),
        params: results[0].params.clone(),
        predictions,
        counters: results.iter().map(|r| r.counters.clone()).collect(),
    }
}

/// Cost-model time for one CAGNET epoch.
///
/// Per layer, `p` broadcast stages serialize: stage `b` costs a log-tree
/// broadcast of `b`'s whole block. Compute adds the SpMM over the rank's
/// full row block plus a staging term for touching all `n` received rows
/// (the redundant-data overhead visible in the paper's Fig. 4a). No
/// overlap: the stage's multiply needs the stage's broadcast.
pub fn simulate_epoch(
    plan_f: &CagnetPlan,
    plan_b: &CagnetPlan,
    config: &GcnConfig,
    profile: &MachineProfile,
) -> PhaseTime {
    let p = plan_f.p;
    let mut phases = Vec::new();
    let mut collectives = 0.0;
    for k in 1..=config.layers() {
        let (d_in, d_out) = (config.dims[k - 1], config.dims[k]);
        for (dir_plan, d_msg, dmm) in [
            (plan_f, d_in, 2.0 * d_in as f64 * d_out as f64),
            (plan_b, d_out, 4.0 * d_in as f64 * d_out as f64),
        ] {
            let bcast: f64 = (0..p)
                .map(|b| {
                    profile
                        .broadcast_time((dir_plan.ranks[b].local_rows.len() * d_msg * 4) as u64, p)
                })
                .sum();
            let comp = dir_plan
                .ranks
                .iter()
                .map(|r| {
                    let nnz: usize = r.blocks.iter().map(|b| b.nnz()).sum();
                    let staging = (dir_plan.n * d_msg) as f64; // touch all received rows
                    profile.compute_time(2.0 * nnz as f64 * d_msg as f64 + staging)
                        + profile.dmm_time(r.local_rows.len() as f64 * dmm)
                })
                .fold(0.0, f64::max);
            phases.push(PhaseTime {
                total: bcast + comp,
                comm: bcast,
                comp,
            });
        }
        collectives += profile.allreduce_time((d_in * d_out * 4) as u64, p);
    }
    costmodel::epoch_time(&phases, collectives)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargcn_graph::gen::er;
    use pargcn_partition::random;
    use pargcn_util::rng::SeedableRng;
    use pargcn_util::rng::StdRng;

    #[test]
    fn plan_blocks_conserve_nnz() {
        let g = er::generate(20, 80, true, 1);
        let a = g.normalized_adjacency();
        let part = random::partition(20, 3, 2);
        let plan = CagnetPlan::build(&a, &part);
        let total: usize = plan
            .ranks
            .iter()
            .map(|r| r.blocks.iter().map(|b| b.nnz()).sum::<usize>())
            .sum();
        assert_eq!(total, a.nnz());
    }

    #[test]
    fn broadcast_spmm_matches_serial() {
        let g = er::generate(18, 70, false, 3);
        let a = g.normalized_adjacency();
        let part = random::partition(18, 3, 4);
        let plan = CagnetPlan::build(&a, &part);
        let mut rng = StdRng::seed_from_u64(5);
        let h = Dense::random(18, 4, &mut rng);
        let full = a.spmm(&h);
        let locals: Vec<Dense> = plan
            .ranks
            .iter()
            .map(|r| gather::gather_rows(&h, &r.local_rows))
            .collect();
        let results = Communicator::run(3, |ctx| {
            let cctx = ComputeCtx::serial();
            spmm_broadcast(
                ctx,
                &plan,
                &plan.ranks[ctx.rank()],
                &locals[ctx.rank()],
                4,
                &cctx,
                &mut Vec::new(),
            )
        });
        for (rp, res) in plan.ranks.iter().zip(&results) {
            for (li, &gv) in rp.local_rows.iter().enumerate() {
                for (e, got) in full.row(gv as usize).iter().zip(res.row(li)) {
                    assert!((e - got).abs() < 1e-4);
                }
            }
        }
    }

    #[test]
    fn simulated_comm_is_p_independent_per_layer_volume() {
        // CAGNET broadcasts all n rows per layer regardless of partition
        // quality — so simulated comm grows with p (more stages × log tree),
        // never shrinks. That monotonicity is the shape Fig. 4a shows.
        let g = er::generate(64, 400, false, 6);
        let a = g.normalized_adjacency();
        let config = GcnConfig::two_layer(8, 8, 4);
        let profile = MachineProfile::cpu_cluster();
        let t4 = {
            let part = random::partition(64, 4, 1);
            let plan = CagnetPlan::build(&a, &part);
            simulate_epoch(&plan, &plan, &config, &profile)
        };
        let t16 = {
            let part = random::partition(64, 16, 1);
            let plan = CagnetPlan::build(&a, &part);
            simulate_epoch(&plan, &plan, &config, &profile)
        };
        assert!(
            t16.comm > t4.comm * 0.9,
            "CAGNET comm should not shrink with p: {} vs {}",
            t4.comm,
            t16.comm
        );
    }
}
