//! Property tests for the paper's central modeling claims (§4.3, Fig. 2):
//!
//! 1. the column-net hypergraph's connectivity−1 cut equals the *exact*
//!    per-SpMM communication volume under any partition, and
//! 2. the §4.3.1 undirected graph model's edge cut always *overestimates*
//!    (or equals) that volume — the deficiency the paper illustrates with
//!    Figure 2.

use pargcn_matrix::{norm, Csr};
use pargcn_partition::graph_model::WeightedGraph;
use pargcn_partition::{metrics, Hypergraph, Partition};
use proptest::prelude::*;

/// Random square sparse adjacency with self loops (like Â).
fn adjacency(n: usize) -> impl Strategy<Value = Csr> {
    proptest::collection::vec(((0..n as u32), (0..n as u32)), 0..n * 4).prop_map(move |pairs| {
        let mut coo: Vec<(u32, u32, f32)> =
            pairs.into_iter().map(|(r, c)| (r, c, 1.0)).collect();
        coo.extend((0..n as u32).map(|i| (i, i, 1.0)));
        let merged = Csr::from_coo(n, n, coo);
        // Clamp duplicate-summed values back to the pattern.
        Csr::from_parts(
            n,
            n,
            merged.indptr().to_vec(),
            merged.indices().to_vec(),
            vec![1.0; merged.nnz()],
        )
    })
}

fn arbitrary_partition(n: usize, p: usize) -> impl Strategy<Value = Partition> {
    proptest::collection::vec(0..p as u32, n).prop_map(move |a| Partition::new(a, p))
}

proptest! {
    /// §4.3.2: connectivity−1 cut == exact total send volume, always.
    #[test]
    fn hypergraph_cut_equals_exact_volume(a in adjacency(24), part in arbitrary_partition(24, 5)) {
        let h = Hypergraph::column_net_model(&a);
        let stats = metrics::spmm_comm_stats(&a, &part);
        prop_assert_eq!(h.connectivity_cut(&part), stats.total_rows);
    }

    /// §4.3.1 / Figure 2: graph-model cut ≥ true volume, always.
    #[test]
    fn graph_cut_overestimates_volume(a in adjacency(24), part in arbitrary_partition(24, 5)) {
        let g = WeightedGraph::graph_model(&a);
        let stats = metrics::spmm_comm_stats(&a, &part);
        // Each cut undirected edge claims 2 row transfers (one each way);
        // the graph model's estimate of the volume is 2 × edge cut.
        prop_assert!(2 * g.edge_cut(&part) >= stats.total_rows,
            "graph model estimate {} below true volume {}",
            2 * g.edge_cut(&part), stats.total_rows);
    }

    /// Per-rank sent rows sum to the total and respect the λ−1 bound.
    #[test]
    fn per_rank_volumes_consistent(a in adjacency(20), part in arbitrary_partition(20, 4)) {
        let stats = metrics::spmm_comm_stats(&a, &part);
        prop_assert_eq!(stats.sent_rows.iter().sum::<u64>(), stats.total_rows);
        prop_assert_eq!(stats.sent_messages.iter().sum::<u64>(), stats.total_messages);
        // No rank sends a row to more than p−1 others, so volume ≤ n(p−1).
        prop_assert!(stats.total_rows <= 20 * 3);
        for &m in &stats.sent_messages {
            prop_assert!(m <= 3);
        }
    }

    /// The normalized adjacency of an arbitrary graph keeps the claim intact
    /// (self loops guarantee the owner is in every net's connectivity set).
    #[test]
    fn claim_holds_on_normalized_adjacency(edges in proptest::collection::vec((0u32..16, 0u32..16), 1..60), part in arbitrary_partition(16, 3)) {
        let coo: Vec<(u32, u32, f32)> = edges.into_iter().filter(|(u, v)| u != v).map(|(u, v)| (u, v, 1.0)).collect();
        let raw = Csr::from_coo(16, 16, coo);
        let a = norm::normalize_adjacency(&raw);
        let h = Hypergraph::column_net_model(&a);
        prop_assert_eq!(h.connectivity_cut(&part), metrics::spmm_comm_stats(&a, &part).total_rows);
    }
}

/// The exact Figure 2 discrepancy: a vertex with two neighbors co-located on
/// another processor is double-counted by the graph model but not by the
/// hypergraph model.
#[test]
fn figure2_overcount_example() {
    // v4 (0-indexed: 3) connects to v2, v3 (parts P2) and v5, v6 (part P3);
    // all edges undirected. Plus self loops.
    let mut coo = Vec::new();
    for i in 0..6u32 {
        coo.push((i, i, 1.0));
    }
    for &(u, v) in &[(3u32, 1u32), (3, 2), (3, 4), (3, 5)] {
        coo.push((u, v, 1.0));
        coo.push((v, u, 1.0));
    }
    let a = Csr::from_coo(6, 6, coo);
    let part = Partition::new(vec![0, 1, 1, 1, 2, 2], 3);

    let h = Hypergraph::column_net_model(&a);
    let stats = metrics::spmm_comm_stats(&a, &part);
    let g = WeightedGraph::graph_model(&a);

    // True volume for v3's row: sent to parts {2} once → net n3 contributes
    // λ−1 = 1... plus the reverse rows v4,v5 each sent to part 1.
    assert_eq!(h.connectivity_cut(&part), stats.total_rows);
    // Graph model: cut edges (3,4) and (3,5) each claim two-way transfers →
    // estimate 2·cut = 4 transfers between parts 1 and 2, but the true
    // volume there is 3 (row 3 once to part 2, rows 4 and 5 once to part 1).
    let cross_12_estimate = 2 * 2; // two cut edges between parts 1 and 2
    let true_cross_12 = 3;
    assert_eq!(stats.total_rows, true_cross_12);
    assert!(cross_12_estimate > true_cross_12);
    assert!(2 * g.edge_cut(&part) > stats.total_rows);
}
