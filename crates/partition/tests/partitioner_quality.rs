//! Quality-regression tests for the multilevel partitioners: known-optimal
//! structures must be found, quality must beat random by set margins per
//! graph family, and the ablation options must behave monotonically.

use pargcn_graph::gen::{community, er, grid, rmat};
use pargcn_partition::graph_model::WeightedGraph;
use pargcn_partition::{gmultilevel, hmultilevel, metrics, random, Hypergraph};

/// A 2×k grid of two well-separated clusters must be cut at the bridge.
#[test]
fn hp_finds_the_bottleneck_cut() {
    // Two 12-cliques joined by one edge.
    let mut edges = Vec::new();
    for c in 0..2u32 {
        let base = c * 12;
        for i in 0..12u32 {
            for j in (i + 1)..12u32 {
                edges.push((base + i, base + j));
            }
        }
    }
    edges.push((5, 17));
    let g = pargcn_graph::Graph::from_edges(24, false, &edges);
    let a = g.normalized_adjacency();
    let h = Hypergraph::column_net_model(&a);
    let part = hmultilevel::partition(&h, 2, 0.1, 1);
    // Perfect split cuts only the two columns on the bridge: volume 2.
    let vol = metrics::spmm_comm_stats(&a, &part).total_rows;
    assert!(vol <= 4, "bottleneck not found: volume {vol}");
}

#[test]
fn gp_finds_the_bottleneck_cut() {
    let mut edges = Vec::new();
    for c in 0..2u32 {
        let base = c * 12;
        for i in 0..12u32 {
            for j in (i + 1)..12u32 {
                edges.push((base + i, base + j));
            }
        }
    }
    edges.push((5, 17));
    let g = pargcn_graph::Graph::from_edges(24, false, &edges);
    let model = WeightedGraph::graph_model(&g.normalized_adjacency());
    let part = gmultilevel::partition(&model, 2, 0.1, 1);
    assert_eq!(
        model.edge_cut(&part),
        1,
        "the single bridge edge is the optimum"
    );
}

/// Family-specific quality bars relative to random partitioning at p=16
/// (loose enough to be robust to seeds, tight enough to catch regressions).
#[test]
fn quality_bars_by_family() {
    let cases: Vec<(&str, pargcn_graph::Graph, f64)> = vec![
        ("road", grid::road_network(3000, 1), 0.25),
        (
            "copurchase",
            community::copurchase(3000, 6.0, false, 1),
            0.55,
        ),
        ("coauthor", community::coauthor(1200, 24.0, 1), 0.75),
    ];
    for (name, g, bar) in cases {
        let a = g.normalized_adjacency();
        let h = Hypergraph::column_net_model(&a);
        let hp = hmultilevel::partition(&h, 16, 0.05, 2);
        let rp = random::partition(g.n(), 16, 2);
        let v_hp = metrics::spmm_comm_stats(&a, &hp).total_rows as f64;
        let v_rp = metrics::spmm_comm_stats(&a, &rp).total_rows as f64;
        assert!(
            v_hp < bar * v_rp,
            "{name}: HP/RP = {:.3} exceeds quality bar {bar}",
            v_hp / v_rp
        );
    }
}

/// On a structureless ER graph no partitioner can beat random by much —
/// a sanity check that the quality bars above measure real structure.
#[test]
fn er_graphs_offer_little_structure() {
    let g = er::generate(1500, 12_000, false, 3);
    let a = g.normalized_adjacency();
    let h = Hypergraph::column_net_model(&a);
    let hp = hmultilevel::partition(&h, 16, 0.05, 1);
    let rp = random::partition(g.n(), 16, 1);
    let v_hp = metrics::spmm_comm_stats(&a, &hp).total_rows as f64;
    let v_rp = metrics::spmm_comm_stats(&a, &rp).total_rows as f64;
    assert!(
        v_hp > 0.5 * v_rp,
        "suspicious: HP 'improved' an ER graph by {:.2}x — metric bug?",
        v_rp / v_hp
    );
}

/// Ablations behave monotonically: the full pipeline is at least as good as
/// no-FM and no-coarsening variants.
#[test]
fn pipeline_components_contribute() {
    let g = community::copurchase(2000, 6.0, false, 7);
    let a = g.normalized_adjacency();
    let h = Hypergraph::column_net_model(&a);
    let full = hmultilevel::partition_with(&h, 8, 0.05, 1, hmultilevel::Options::default());
    let no_fm = hmultilevel::partition_with(
        &h,
        8,
        0.05,
        1,
        hmultilevel::Options {
            fm_passes_coarsest: 0,
            fm_passes_uncoarsen: 0,
            ..Default::default()
        },
    );
    let cut_full = h.connectivity_cut(&full);
    let cut_no_fm = h.connectivity_cut(&no_fm);
    assert!(
        cut_full as f64 <= cut_no_fm as f64 * 1.02,
        "FM must not hurt: full {cut_full} vs no-FM {cut_no_fm}"
    );
}

/// Hub-capped FM still refines skewed (RMAT) graphs without stalling;
/// bounded runtime is covered by the test's own timeout discipline.
#[test]
fn skewed_graph_partitioning_terminates_with_quality() {
    let g = rmat::generate_sized(4000, 10.0, false, 5);
    let a = g.normalized_adjacency();
    let h = Hypergraph::column_net_model(&a);
    let start = std::time::Instant::now();
    let hp = hmultilevel::partition(&h, 32, 0.05, 3);
    assert!(
        start.elapsed().as_secs() < 60,
        "skewed-graph partitioning too slow: {:?}",
        start.elapsed()
    );
    let rp = random::partition(g.n(), 32, 3);
    let v_hp = metrics::spmm_comm_stats(&a, &hp).total_rows;
    let v_rp = metrics::spmm_comm_stats(&a, &rp).total_rows;
    assert!(
        v_hp <= v_rp,
        "HP must not lose to RP even on RMAT: {v_hp} vs {v_rp}"
    );
}

/// Balance holds across a spread of part counts on a weighted instance.
#[test]
fn balance_across_part_counts() {
    let g = grid::road_network(2500, 9);
    let a = g.normalized_adjacency();
    let h = Hypergraph::column_net_model(&a);
    for p in [2usize, 3, 8, 17, 64] {
        let part = hmultilevel::partition(&h, p, 0.05, 4);
        let imb = part.imbalance(h.vertex_weights());
        // ε compounds across ~log2(p) bisection levels.
        let levels = (p as f64).log2().ceil();
        let allowed = (1.05f64).powf(levels) - 1.0 + 0.05;
        assert!(imb < allowed, "p={p}: imbalance {imb:.3} over {allowed:.3}");
    }
}
