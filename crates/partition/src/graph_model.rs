//! The §4.3.1 graph partitioning model (the DistDGL/METIS approach), built
//! so the paper's claim that it *overestimates* communication volume can be
//! measured against the hypergraph model.
//!
//! From the (possibly directed) adjacency `A`, an undirected graph `G'` is
//! built over the same vertices: each off-diagonal nonzero `A(i,j)` (or its
//! transpose) becomes the undirected edge `{vᵢ, vⱼ}` with unit cost; vertex
//! weight is the SpMM work `|cols(A(i,:))|`. Cut edges are the graph model's
//! estimate of communication, which double-counts (i) one-way directed
//! edges and (ii) multiple neighbors on the same remote processor.

use crate::Partition;
use pargcn_matrix::Csr;

/// An undirected vertex- and edge-weighted graph in CSR form, the input to
/// the multilevel graph partitioner.
#[derive(Clone, Debug)]
pub struct WeightedGraph {
    vertex_weights: Vec<u64>,
    adj_ptr: Vec<usize>,
    adj: Vec<u32>,
    edge_weights: Vec<u64>,
}

impl WeightedGraph {
    /// Builds from symmetric adjacency lists (each undirected edge stored in
    /// both directions).
    pub fn new(
        vertex_weights: Vec<u64>,
        adj_ptr: Vec<usize>,
        adj: Vec<u32>,
        edge_weights: Vec<u64>,
    ) -> Self {
        assert_eq!(adj_ptr.len(), vertex_weights.len() + 1);
        assert_eq!(adj.len(), edge_weights.len());
        Self {
            vertex_weights,
            adj_ptr,
            adj,
            edge_weights,
        }
    }

    /// The §4.3.1 model of a square sparse matrix: symmetrize the
    /// off-diagonal pattern, unit edge costs, vertex weight = row nnz.
    pub fn graph_model(a: &Csr) -> Self {
        assert_eq!(a.n_rows(), a.n_cols(), "graph model needs a square matrix");
        let n = a.n_rows();
        let vertex_weights: Vec<u64> = (0..n).map(|i| a.row_nnz(i) as u64).collect();
        let mut coo = Vec::with_capacity(a.nnz() * 2);
        for (r, c, _) in a.iter() {
            if r != c {
                coo.push((r, c, 1.0));
                coo.push((c, r, 1.0));
            }
        }
        let sym = Csr::from_coo(n, n, coo);
        // from_coo sums duplicates; clamp weights back to unit cost.
        let edge_weights = vec![1u64; sym.nnz()];
        Self {
            vertex_weights,
            adj_ptr: sym.indptr().to_vec(),
            adj: sym.indices().to_vec(),
            edge_weights,
        }
    }

    #[inline]
    pub fn n(&self) -> usize {
        self.vertex_weights.len()
    }

    #[inline]
    pub fn vertex_weights(&self) -> &[u64] {
        &self.vertex_weights
    }

    /// Neighbor ids of `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adj[self.adj_ptr[v]..self.adj_ptr[v + 1]]
    }

    /// Edge weights parallel to [`WeightedGraph::neighbors`].
    #[inline]
    pub fn edge_weights_of(&self, v: usize) -> &[u64] {
        &self.edge_weights[self.adj_ptr[v]..self.adj_ptr[v + 1]]
    }

    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.adj_ptr[v + 1] - self.adj_ptr[v]
    }

    /// Total weight of cut edges under `part` — the graph model's
    /// communication estimate `χ(Π)` of §3.2 (each undirected edge counted
    /// once).
    pub fn edge_cut(&self, part: &Partition) -> u64 {
        let mut cut = 0u64;
        for v in 0..self.n() {
            let pv = part.part_of(v);
            for (&u, &w) in self.neighbors(v).iter().zip(self.edge_weights_of(v)) {
                if (u as usize) > v && part.part_of(u as usize) != pv {
                    cut += w;
                }
            }
        }
        cut
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn directed_chain() -> Csr {
        // 0 → 1 → 2, plus self loops (as Â would have).
        Csr::from_coo(
            3,
            3,
            vec![
                (0, 0, 1.0),
                (1, 1, 1.0),
                (2, 2, 1.0),
                (0, 1, 0.5),
                (1, 2, 0.5),
            ],
        )
    }

    #[test]
    fn model_symmetrizes_directed_edges() {
        let g = WeightedGraph::graph_model(&directed_chain());
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn self_loops_excluded_from_edges() {
        let g = WeightedGraph::graph_model(&directed_chain());
        for v in 0..3 {
            assert!(!g.neighbors(v).contains(&(v as u32)));
        }
    }

    #[test]
    fn vertex_weight_counts_diagonal() {
        let g = WeightedGraph::graph_model(&directed_chain());
        // Row 0 has nonzeros at columns {0, 1}: weight 2.
        assert_eq!(g.vertex_weights()[0], 2);
        assert_eq!(g.vertex_weights()[2], 1);
    }

    #[test]
    fn edge_cut_counts_each_edge_once() {
        let g = WeightedGraph::graph_model(&directed_chain());
        let part = Partition::new(vec![0, 1, 1], 2);
        assert_eq!(g.edge_cut(&part), 1);
        let part2 = Partition::new(vec![0, 1, 0], 2);
        assert_eq!(g.edge_cut(&part2), 2);
    }

    #[test]
    fn reciprocal_directed_edges_collapse_to_one_undirected() {
        let a = Csr::from_coo(2, 2, vec![(0, 1, 1.0), (1, 0, 1.0)]);
        let g = WeightedGraph::graph_model(&a);
        assert_eq!(g.degree(0), 1);
        let part = Partition::new(vec![0, 1], 2);
        assert_eq!(g.edge_cut(&part), 1);
    }
}
