//! The hypergraph structure and the paper's column-net model (§4.3.2).
//!
//! For the 1-D row-wise partitioning of adjacency matrix `A`, the column-net
//! hypergraph has one vertex `vᵢ` per row `A(i,:)` (weighted by the row's
//! nonzero count, i.e. the SpMM work of the row's task) and one net `nⱼ`
//! per column `A(:,j)`, whose pins are the rows with a nonzero in column
//! `j`. Under a partition, net `nⱼ`'s connectivity−1 is exactly the number
//! of remote processors that must receive row `H(j,:)` (and `G(j,:)` in
//! backpropagation) — so the connectivity−1 cut equals the true
//! communication volume, the paper's central modeling claim.

use crate::Partition;
use pargcn_matrix::Csr;

/// A hypergraph `H = (V, N)` with weighted vertices and weighted nets,
/// stored as a net→pin CSR plus its vertex→net inverse.
#[derive(Clone, Debug)]
pub struct Hypergraph {
    vertex_weights: Vec<u64>,
    net_costs: Vec<u64>,
    net_ptr: Vec<usize>,
    net_pins: Vec<u32>,
    vtx_ptr: Vec<usize>,
    vtx_nets: Vec<u32>,
}

impl Hypergraph {
    /// Builds from explicit net pin lists. Pins within a net are
    /// deduplicated; empty nets are kept (they never contribute to the cut).
    pub fn new(vertex_weights: Vec<u64>, nets: Vec<Vec<u32>>, net_costs: Vec<u64>) -> Self {
        assert_eq!(nets.len(), net_costs.len(), "net cost length mismatch");
        let n = vertex_weights.len();
        let mut net_ptr = Vec::with_capacity(nets.len() + 1);
        net_ptr.push(0usize);
        let mut net_pins = Vec::new();
        for pins in &nets {
            let mut sorted: Vec<u32> = pins.clone();
            sorted.sort_unstable();
            sorted.dedup();
            for &p in &sorted {
                assert!((p as usize) < n, "pin out of range");
            }
            net_pins.extend_from_slice(&sorted);
            net_ptr.push(net_pins.len());
        }
        let (vtx_ptr, vtx_nets) = invert(n, &net_ptr, &net_pins);
        Self {
            vertex_weights,
            net_costs,
            net_ptr,
            net_pins,
            vtx_ptr,
            vtx_nets,
        }
    }

    /// The paper's column-net model of a square sparse matrix: vertex `i`
    /// per row with weight `|cols(A(i,:))|`, net `j` per column with unit
    /// cost and pins `{i : A(i,j) ≠ 0}`.
    pub fn column_net_model(a: &Csr) -> Self {
        Self::column_net_model_weighted(a, 0.0)
    }

    /// As [`Hypergraph::column_net_model`] with a scalarized second balance
    /// constraint: vertex weight `|cols(A(i,:))| + dmm_row_cost`.
    ///
    /// The paper balances SpMM work only (nnz per row). Per-rank DMM work is
    /// proportional to the *row count*, so when dense layers are a relevant
    /// fraction of the compute (small average degree, large `d`),
    /// `dmm_row_cost ≈ 2·d_in·d_out·flops_ratio / (2·d_spmm)` folds the
    /// row-count constraint into the single weight — the cheap scalarized
    /// form of multi-constraint partitioning.
    pub fn column_net_model_weighted(a: &Csr, dmm_row_cost: f64) -> Self {
        assert_eq!(
            a.n_rows(),
            a.n_cols(),
            "column-net model needs a square matrix"
        );
        assert!(dmm_row_cost >= 0.0, "dmm_row_cost must be nonnegative");
        let n = a.n_rows();
        let extra = dmm_row_cost.round() as u64;
        let vertex_weights: Vec<u64> = (0..n).map(|i| a.row_nnz(i) as u64 + extra).collect();
        // Transposing gives column → row lists, i.e. the pin lists.
        let at = a.transpose();
        let mut net_ptr = Vec::with_capacity(n + 1);
        net_ptr.push(0usize);
        let mut net_pins = Vec::new();
        for j in 0..n {
            net_pins.extend_from_slice(at.row_indices(j));
            net_ptr.push(net_pins.len());
        }
        let (vtx_ptr, vtx_nets) = invert(n, &net_ptr, &net_pins);
        Self {
            vertex_weights,
            net_costs: vec![1; n],
            net_ptr,
            net_pins,
            vtx_ptr,
            vtx_nets,
        }
    }

    #[inline]
    pub fn n_vertices(&self) -> usize {
        self.vertex_weights.len()
    }

    #[inline]
    pub fn n_nets(&self) -> usize {
        self.net_costs.len()
    }

    #[inline]
    pub fn n_pins(&self) -> usize {
        self.net_pins.len()
    }

    #[inline]
    pub fn vertex_weights(&self) -> &[u64] {
        &self.vertex_weights
    }

    #[inline]
    pub fn net_cost(&self, net: usize) -> u64 {
        self.net_costs[net]
    }

    #[inline]
    pub fn pins(&self, net: usize) -> &[u32] {
        &self.net_pins[self.net_ptr[net]..self.net_ptr[net + 1]]
    }

    /// Nets incident to vertex `v`.
    #[inline]
    pub fn nets_of(&self, v: usize) -> &[u32] {
        &self.vtx_nets[self.vtx_ptr[v]..self.vtx_ptr[v + 1]]
    }

    /// Connectivity `λ(nⱼ)`: number of parts net `j` touches under `part`.
    pub fn connectivity(&self, net: usize, part: &Partition) -> usize {
        let mut parts: Vec<u32> = self
            .pins(net)
            .iter()
            .map(|&v| part.part_of(v as usize))
            .collect();
        parts.sort_unstable();
        parts.dedup();
        parts.len()
    }

    /// The connectivity cut `Σ cost(nⱼ)·(λ(nⱼ)−1)` (§3.2).
    pub fn connectivity_cut(&self, part: &Partition) -> u64 {
        let mut mark = vec![u32::MAX; part.p()];
        let mut cut = 0u64;
        for net in 0..self.n_nets() {
            let mut lambda = 0u64;
            for &v in self.pins(net) {
                let p = part.part_of(v as usize) as usize;
                if mark[p] != net as u32 {
                    mark[p] = net as u32;
                    lambda += 1;
                }
            }
            if lambda > 1 {
                cut += self.net_costs[net] * (lambda - 1);
            }
        }
        cut
    }

    /// Merges this hypergraph with another over the same vertex set,
    /// concatenating net sets — the §4.3.3 stochastic-hypergraph merge.
    pub fn merge(mut self, other: Hypergraph) -> Hypergraph {
        assert_eq!(
            self.n_vertices(),
            other.n_vertices(),
            "merge requires identical vertex sets"
        );
        let offset = self.net_pins.len();
        self.net_pins.extend_from_slice(&other.net_pins);
        self.net_ptr
            .extend(other.net_ptr.iter().skip(1).map(|&x| x + offset));
        self.net_costs.extend_from_slice(&other.net_costs);
        let (vtx_ptr, vtx_nets) = invert(self.n_vertices(), &self.net_ptr, &self.net_pins);
        self.vtx_ptr = vtx_ptr;
        self.vtx_nets = vtx_nets;
        self
    }
}

/// Builds the vertex → incident-net CSR from the net → pin CSR.
fn invert(n: usize, net_ptr: &[usize], net_pins: &[u32]) -> (Vec<usize>, Vec<u32>) {
    let mut counts = vec![0usize; n + 1];
    for &v in net_pins {
        counts[v as usize + 1] += 1;
    }
    for i in 0..n {
        counts[i + 1] += counts[i];
    }
    let vtx_ptr = counts.clone();
    let mut vtx_nets = vec![0u32; net_pins.len()];
    let mut cursor = counts;
    for net in 0..net_ptr.len() - 1 {
        for &v in &net_pins[net_ptr[net]..net_ptr[net + 1]] {
            vtx_nets[cursor[v as usize]] = net as u32;
            cursor[v as usize] += 1;
        }
    }
    (vtx_ptr, vtx_nets)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example of the paper's Figure 2: a 6-vertex graph whose
    /// adjacency (with self loops) yields net n₂ with pins {v1,v2,v4,v6}.
    fn figure2_adjacency() -> Csr {
        // Edges of Figure 2 (1-indexed in the paper, 0-indexed here):
        // vertex connections chosen to match pins(n_2) = {v1, v2, v4, v6}
        // and pins(n_4) = {v2, v3, v4, v5, v6}.
        let mut coo = Vec::new();
        for i in 0..6u32 {
            coo.push((i, i, 1.0)); // self loops
        }
        // Column 1 (0-indexed) nonzeros at rows 0, 1, 3, 5:
        for r in [0u32, 3, 5] {
            coo.push((r, 1, 1.0));
        }
        // Column 3 nonzeros at rows 1, 2, 4, 5:
        for r in [1u32, 2, 4, 5] {
            coo.push((r, 3, 1.0));
        }
        Csr::from_coo(6, 6, coo)
    }

    #[test]
    fn column_net_pins_match_columns() {
        let a = figure2_adjacency();
        let h = Hypergraph::column_net_model(&a);
        assert_eq!(h.n_vertices(), 6);
        assert_eq!(h.n_nets(), 6);
        assert_eq!(h.pins(1), &[0, 1, 3, 5]);
        assert_eq!(h.pins(3), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn vertex_weight_is_row_nnz() {
        let a = figure2_adjacency();
        let h = Hypergraph::column_net_model(&a);
        for i in 0..6 {
            assert_eq!(h.vertex_weights()[i], a.row_nnz(i) as u64);
        }
    }

    #[test]
    fn figure2_connectivity() {
        let a = figure2_adjacency();
        let h = Hypergraph::column_net_model(&a);
        // Parts {v0,v1}, {v2,v3}, {v4,v5} as in the paper's figure.
        let part = Partition::new(vec![0, 0, 1, 1, 2, 2], 3);
        // Net 1 pins {0,1,3,5} → parts {0,1,2}: λ = 3.
        assert_eq!(h.connectivity(1, &part), 3);
        // Net 3 pins {1,2,3,4,5} → parts {0,1,2}: λ = 3, contributes 2 —
        // the paper's "net n₄ encodes the true volume of λ−1 = 2" example.
        assert_eq!(h.connectivity(3, &part), 3);
    }

    #[test]
    fn connectivity_cut_counts_lambda_minus_one() {
        let h = Hypergraph::new(
            vec![1; 4],
            vec![vec![0, 1], vec![2, 3], vec![0, 3]],
            vec![1, 1, 5],
        );
        let part = Partition::new(vec![0, 0, 1, 1], 2);
        // Net 0 internal, net 1 internal, net 2 spans both parts: cut 5.
        assert_eq!(h.connectivity_cut(&part), 5);
    }

    #[test]
    fn every_diagonal_vertex_pins_its_own_net() {
        // With self loops, vertex j ∈ pins(n_j) — the structural fact §4.3.2
        // relies on for the owner to be in Λ(n_j).
        let a = figure2_adjacency();
        let h = Hypergraph::column_net_model(&a);
        for j in 0..6u32 {
            assert!(h.pins(j as usize).contains(&j));
        }
    }

    #[test]
    fn inverse_incidence_is_consistent() {
        let h = Hypergraph::new(
            vec![1; 5],
            vec![vec![0, 1, 2], vec![2, 3], vec![4, 0]],
            vec![1, 1, 1],
        );
        assert_eq!(h.nets_of(2), &[0, 1]);
        assert_eq!(h.nets_of(0), &[0, 2]);
        assert_eq!(h.nets_of(4), &[2]);
    }

    #[test]
    fn merge_concatenates_nets() {
        let h1 = Hypergraph::new(vec![1; 3], vec![vec![0, 1]], vec![1]);
        let h2 = Hypergraph::new(vec![1; 3], vec![vec![1, 2], vec![0, 2]], vec![2, 3]);
        let merged = h1.merge(h2);
        assert_eq!(merged.n_nets(), 3);
        assert_eq!(merged.pins(1), &[1, 2]);
        assert_eq!(merged.net_cost(2), 3);
        assert_eq!(merged.nets_of(0), &[0, 2]);
    }

    #[test]
    fn weighted_model_adds_per_row_cost() {
        let a = figure2_adjacency();
        let plain = Hypergraph::column_net_model(&a);
        let weighted = Hypergraph::column_net_model_weighted(&a, 10.0);
        for i in 0..6 {
            assert_eq!(weighted.vertex_weights()[i], plain.vertex_weights()[i] + 10);
        }
        // Nets are identical — only balance semantics change.
        assert_eq!(weighted.pins(1), plain.pins(1));
    }

    #[test]
    fn weighted_model_balances_row_counts_on_skewed_instances() {
        // A skewed pattern: one hub row with many nonzeros, many light rows.
        // nnz-only weights put the hub alone on a part and pile every other
        // row onto the rest; a row-cost term evens the row counts.
        let n = 64;
        let mut coo = Vec::new();
        for i in 0..n as u32 {
            coo.push((i, i, 1.0));
        }
        for j in 1..n as u32 {
            coo.push((0, j, 1.0)); // hub row 0
        }
        let a = Csr::from_coo(n, n, coo);
        let plain = crate::hmultilevel::partition(&Hypergraph::column_net_model(&a), 4, 0.05, 1);
        let weighted = crate::hmultilevel::partition(
            &Hypergraph::column_net_model_weighted(&a, 8.0),
            4,
            0.05,
            1,
        );
        let rows = |p: &crate::Partition| {
            let sizes: Vec<usize> = p.members().iter().map(|m| m.len()).collect();
            *sizes.iter().max().unwrap() as f64 / (n as f64 / 4.0)
        };
        assert!(
            rows(&weighted) <= rows(&plain) + 1e-9,
            "row-count balance should not worsen: {} vs {}",
            rows(&weighted),
            rows(&plain)
        );
    }

    #[test]
    fn duplicate_pins_are_deduplicated() {
        let h = Hypergraph::new(vec![1; 3], vec![vec![1, 1, 0, 1]], vec![1]);
        assert_eq!(h.pins(0), &[0, 1]);
    }
}
