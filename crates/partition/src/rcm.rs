//! Reverse Cuthill–McKee ordering and contiguous block partitioning (BP) —
//! the cheap practical alternative to multilevel partitioning.
//!
//! Production systems often avoid a full partitioner by renumbering
//! vertices for locality (RCM is the classic bandwidth-reducing ordering)
//! and then cutting the ordered sequence into `p` weight-balanced
//! contiguous blocks. The `ablations` bench and the partitioner quality
//! tests use this as a third reference point between RP and HP: on
//! locality-rich graphs (road networks) BP+RCM comes surprisingly close to
//! multilevel quality at a fraction of the cost, while on skewed social
//! graphs it collapses toward RP — which is itself evidence for the
//! paper's position that GCN training at scale needs a real partitioner.

use crate::Partition;
use pargcn_matrix::Csr;
use std::collections::VecDeque;

/// Computes the RCM ordering of the symmetrized pattern of `a`.
///
/// Returns `order` such that `order[k]` is the old index of the vertex at
/// new position `k`. Components are processed in discovery order, each
/// started from a minimum-degree vertex (the George–Liu pseudo-peripheral
/// heuristic simplified to min-degree start).
pub fn rcm_order(a: &Csr) -> Vec<u32> {
    assert_eq!(a.n_rows(), a.n_cols(), "RCM needs a square pattern");
    let n = a.n_rows();
    // Symmetrize the pattern.
    let mut coo: Vec<(u32, u32, f32)> = Vec::with_capacity(a.nnz() * 2);
    for (r, c, _) in a.iter() {
        if r != c {
            coo.push((r, c, 1.0));
            coo.push((c, r, 1.0));
        }
    }
    let sym = Csr::from_coo(n, n, coo);

    let mut degree: Vec<usize> = (0..n).map(|v| sym.row_nnz(v)).collect();
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = VecDeque::new();
    let mut nbrs_scratch: Vec<u32> = Vec::new();

    // Vertices sorted by degree once, to pick component starts cheaply.
    let mut by_degree: Vec<u32> = (0..n as u32).collect();
    by_degree.sort_unstable_by_key(|&v| degree[v as usize]);

    for &start in &by_degree {
        if visited[start as usize] {
            continue;
        }
        visited[start as usize] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            nbrs_scratch.clear();
            nbrs_scratch.extend(
                sym.row_indices(v as usize)
                    .iter()
                    .copied()
                    .filter(|&u| !visited[u as usize]),
            );
            // Cuthill–McKee visits neighbors in ascending degree order.
            nbrs_scratch.sort_unstable_by_key(|&u| degree[u as usize]);
            for &u in &nbrs_scratch {
                visited[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    degree.clear();
    order.reverse(); // the "reverse" in RCM
    order
}

/// Profile bandwidth of the pattern under a given ordering:
/// `max |pos(i) − pos(j)|` over stored entries — the quantity RCM shrinks.
pub fn bandwidth(a: &Csr, order: &[u32]) -> usize {
    let mut pos = vec![0usize; order.len()];
    for (k, &old) in order.iter().enumerate() {
        pos[old as usize] = k;
    }
    let mut bw = 0usize;
    for (r, c, _) in a.iter() {
        bw = bw.max(pos[r as usize].abs_diff(pos[c as usize]));
    }
    bw
}

/// Cuts `order` into `p` contiguous, weight-balanced blocks (greedy sweep:
/// close the current block once it reaches the remaining-average weight).
pub fn block_partition(order: &[u32], weights: &[u64], p: usize) -> Partition {
    assert!(p >= 1 && p <= order.len(), "need 1 <= p <= n");
    assert_eq!(order.len(), weights.len(), "weights length mismatch");
    let n = order.len();
    let total: u64 = weights.iter().sum();
    let mut assignment = vec![0u32; n];
    let mut part = 0u32;
    let mut acc = 0u64;
    let mut remaining = total;
    for (k, &v) in order.iter().enumerate() {
        let w = weights[v as usize];
        let parts_left = (p as u32 - part) as u64;
        let target = remaining / parts_left.max(1);
        // Close the block when full — but never run out of vertices for the
        // remaining parts.
        let must_close = (n - k) as u64 == parts_left - 1;
        if (acc >= target || must_close) && part + 1 < p as u32 && acc > 0 {
            remaining -= acc;
            part += 1;
            acc = 0;
        }
        assignment[v as usize] = part;
        acc += w;
    }
    Partition::new(assignment, p)
}

/// BP: RCM-order the matrix, then contiguous weight-balanced blocks.
pub fn partition(a: &Csr, p: usize) -> Partition {
    let order = rcm_order(a);
    let weights: Vec<u64> = (0..a.n_rows()).map(|i| a.row_nnz(i) as u64).collect();
    block_partition(&order, &weights, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{metrics, random};
    use pargcn_graph::gen::{grid, social};

    #[test]
    fn rcm_is_a_permutation() {
        let g = grid::road_network(500, 1); // rounds to a 22×22 grid
        let a = g.normalized_adjacency();
        let order = rcm_order(&a);
        assert_eq!(order.len(), g.n());
        let mut seen = vec![false; g.n()];
        for &v in &order {
            assert!(!seen[v as usize], "duplicate {v}");
            seen[v as usize] = true;
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn rcm_reduces_bandwidth_on_shuffled_grid() {
        // Shuffle a grid's ids, then check RCM restores low bandwidth.
        use pargcn_util::rng::SeedableRng;
        use pargcn_util::rng::SliceRandom;
        let g = grid::generate(20, 20, 0.0, 0.0, 0);
        let mut perm: Vec<u32> = (0..400).collect();
        perm.shuffle(&mut pargcn_util::rng::StdRng::seed_from_u64(3));
        let shuffled: Vec<(u32, u32)> = g
            .adjacency()
            .iter()
            .map(|(u, v, _)| (perm[u as usize], perm[v as usize]))
            .collect();
        let gs = pargcn_graph::Graph::from_edges(400, false, &shuffled);
        let a = gs.normalized_adjacency();
        let identity: Vec<u32> = (0..400).collect();
        let before = bandwidth(&a, &identity);
        let after = bandwidth(&a, &rcm_order(&a));
        assert!(
            after * 3 < before,
            "RCM should slash grid bandwidth: {before} → {after}"
        );
    }

    #[test]
    fn blocks_are_contiguous_in_order_and_balanced() {
        let order: Vec<u32> = (0..100).collect();
        let weights = vec![1u64; 100];
        let part = block_partition(&order, &weights, 4);
        let w = part.part_weights(&weights);
        assert!(w.iter().all(|&x| (24..=26).contains(&x)), "{w:?}");
        // Contiguity: part ids are non-decreasing along the order.
        let mut prev = 0;
        for &v in &order {
            assert!(part.part_of(v as usize) >= prev);
            prev = part.part_of(v as usize);
        }
    }

    #[test]
    fn every_part_nonempty_even_with_skewed_weights() {
        let order: Vec<u32> = (0..10).collect();
        let mut weights = vec![1u64; 10];
        weights[0] = 1000; // one giant vertex
        let part = block_partition(&order, &weights, 5);
        assert!(part.all_parts_nonempty());
    }

    #[test]
    fn bp_close_to_multilevel_on_road_networks() {
        let g = grid::road_network(3000, 2);
        let a = g.normalized_adjacency();
        let bp = partition(&a, 16);
        let rp = random::partition(g.n(), 16, 1);
        let v_bp = metrics::spmm_comm_stats(&a, &bp).total_rows as f64;
        let v_rp = metrics::spmm_comm_stats(&a, &rp).total_rows as f64;
        // Threshold 0.3: demonstrates a >3× volume win over random
        // partitioning without being brittle to the exact synthetic
        // instance the seed produces.
        assert!(
            v_bp < 0.3 * v_rp,
            "BP+RCM should exploit road locality: BP/RP = {:.3}",
            v_bp / v_rp
        );
    }

    #[test]
    fn bp_collapses_on_social_graphs() {
        // The negative result that motivates real partitioners.
        let g = social::generate(3000, 10.0, false, 2);
        let a = g.normalized_adjacency();
        let bp = partition(&a, 16);
        let rp = random::partition(g.n(), 16, 1);
        let v_bp = metrics::spmm_comm_stats(&a, &bp).total_rows as f64;
        let v_rp = metrics::spmm_comm_stats(&a, &rp).total_rows as f64;
        assert!(
            v_bp > 0.5 * v_rp,
            "on skewed graphs BP should NOT look like a real partitioner \
             (got BP/RP = {:.3})",
            v_bp / v_rp
        );
    }
}
