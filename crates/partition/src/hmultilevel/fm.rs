//! Fiduccia–Mattheyses bisection refinement for hypergraphs.
//!
//! For a bisection, the connectivity−1 metric reduces to the cut-net
//! metric: a net costs `cost(n)` iff it has pins on both sides. The FM gain
//! of moving `v` from side `s` to side `t` is therefore
//!
//! * `+cost(n)` for every net where `v` is the *last* pin on `s`
//!   (the net becomes internal), and
//! * `−cost(n)` for every net where `t` currently has *no* pins
//!   (the net becomes cut).
//!
//! Per-net side pin counts make that gain O(incident nets) to evaluate, and
//! the same lazy max-heap strategy as the graph FM keeps the implementation
//! simple: stale heap keys are detected by recomputing the exact gain on
//! pop.

use crate::hypergraph::Hypergraph;
use std::collections::BinaryHeap;

/// Nets larger than this do not propagate gain updates eagerly (see the
/// comment at the update site).
const UPDATE_NET_CAP: usize = 32;

/// Per-pass bound on lazy-heap stale-key corrections per vertex.
const MAX_STALE_CORRECTIONS: u8 = 6;

/// Vertices incident to more nets than this never receive eager gain
/// updates (their gain recompute is itself expensive).
const UPDATE_VERTEX_CAP: usize = 96;

/// Refines side labels in place. Same contract as the graph FM.
pub fn refine(h: &Hypergraph, side: &mut [u8], frac0: f64, epsilon: f64, max_passes: usize) {
    let n = h.n_vertices();
    if n < 2 {
        return;
    }
    let total: u64 = h.vertex_weights().iter().sum();
    let cap0 = ((total as f64) * frac0 * (1.0 + epsilon)).ceil() as u64;
    let cap1 = ((total as f64) * (1.0 - frac0) * (1.0 + epsilon)).ceil() as u64;

    let mut side_weight = [0u64; 2];
    for v in 0..n {
        side_weight[side[v] as usize] += h.vertex_weights()[v];
    }
    // counts[net][s] = pins of `net` currently on side s.
    let mut counts = vec![[0u32; 2]; h.n_nets()];
    for (net, count) in counts.iter_mut().enumerate() {
        for &pin in h.pins(net) {
            count[side[pin as usize] as usize] += 1;
        }
    }

    for _pass in 0..max_passes {
        let mut locked = vec![false; n];
        // Bounds the lazy-exact churn: a vertex whose heap key keeps going
        // stale (hubs on skewed graphs — every neighbor move shifts their
        // gain) is dropped for the rest of the pass after a few corrections
        // instead of being recomputed indefinitely. Hubs rarely move
        // profitably anyway, and the next pass reconsiders everything.
        let mut stale_corrections = vec![0u8; n];
        let mut heap: BinaryHeap<(i64, u32)> = BinaryHeap::new();
        for v in 0..n {
            heap.push((gain(h, side, &counts, v), v as u32));
        }

        let mut log: Vec<u32> = Vec::new();
        let mut cumulative = 0i64;
        let mut best_cumulative = 0i64;
        let mut best_len = 0usize;

        while let Some((key, v)) = heap.pop() {
            let v = v as usize;
            if locked[v] {
                continue;
            }
            let exact = gain(h, side, &counts, v);
            if exact != key {
                stale_corrections[v] = stale_corrections[v].saturating_add(1);
                if stale_corrections[v] <= MAX_STALE_CORRECTIONS {
                    heap.push((exact, v as u32));
                }
                continue;
            }
            let from = side[v] as usize;
            let to = 1 - from;
            let w = h.vertex_weights()[v];
            let cap_to = if to == 0 { cap0 } else { cap1 };
            if side_weight[to] + w > cap_to {
                continue;
            }
            apply_move(h, side, &mut counts, v);
            side_weight[from] -= w;
            side_weight[to] += w;
            locked[v] = true;
            cumulative += exact;
            log.push(v as u32);
            if cumulative > best_cumulative {
                best_cumulative = cumulative;
                best_len = log.len();
            }
            // Gains of co-pins may have changed. Propagate eagerly only
            // through small nets: pushing every pin of a hub column after
            // every move is quadratic on dense graphs, and the lazy-exact
            // pop (recompute-and-re-push on stale key) already guarantees
            // that no move is ever applied with a wrong gain — skipping a
            // push only delays when an improved vertex gets re-examined.
            for &net in h.nets_of(v) {
                let pins = h.pins(net as usize);
                if pins.len() > UPDATE_NET_CAP {
                    continue;
                }
                for &u in pins {
                    // Skip hub co-pins: recomputing a hub's gain costs
                    // O(its incident nets) and hubs are co-pins of *many*
                    // moved vertices — eager updates for them are what made
                    // skewed graphs quadratic. Their original lazy entry
                    // still gets them considered.
                    if !locked[u as usize] && h.nets_of(u as usize).len() <= UPDATE_VERTEX_CAP {
                        heap.push((gain(h, side, &counts, u as usize), u));
                    }
                }
            }
        }

        for &v in log.iter().skip(best_len).rev() {
            let v = v as usize;
            let from = side[v] as usize;
            let to = 1 - from;
            let w = h.vertex_weights()[v];
            apply_move(h, side, &mut counts, v);
            side_weight[from] -= w;
            side_weight[to] += w;
        }
        if best_cumulative <= 0 {
            break;
        }
    }
}

/// Flips `v`'s side and updates per-net counts.
#[inline]
fn apply_move(h: &Hypergraph, side: &mut [u8], counts: &mut [[u32; 2]], v: usize) {
    let from = side[v] as usize;
    let to = 1 - from;
    for &net in h.nets_of(v) {
        counts[net as usize][from] -= 1;
        counts[net as usize][to] += 1;
    }
    side[v] = to as u8;
}

/// Exact FM gain of moving `v` to the other side, from per-net counts.
#[inline]
fn gain(h: &Hypergraph, side: &[u8], counts: &[[u32; 2]], v: usize) -> i64 {
    let s = side[v] as usize;
    let t = 1 - s;
    let mut g = 0i64;
    for &net in h.nets_of(v) {
        let c = counts[net as usize];
        let cost = h.net_cost(net as usize) as i64;
        if c[t] == 0 {
            g -= cost; // net becomes cut
        }
        if c[s] == 1 {
            g += cost; // v is the last pin on s: net becomes internal
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Partition;

    fn cut_of(h: &Hypergraph, side: &[u8]) -> u64 {
        h.connectivity_cut(&Partition::new(side.iter().map(|&s| s as u32).collect(), 2))
    }

    /// Two dense net clusters joined by a single bridge net.
    fn two_clusters() -> Hypergraph {
        let mut nets = Vec::new();
        // Cluster A over {0..4}: all triples sharing vertex 0.
        for i in 1..5u32 {
            nets.push(vec![0, i]);
            nets.push(vec![i, (i % 4) + 1]);
        }
        // Cluster B over {5..9}.
        for i in 6..10u32 {
            nets.push(vec![5, i]);
            nets.push(vec![i, ((i - 5) % 4) + 6]);
        }
        // Bridge.
        nets.push(vec![4, 5]);
        let costs = vec![1u64; nets.len()];
        Hypergraph::new(vec![1; 10], nets, costs)
    }

    #[test]
    fn recovers_clusters_from_interleaved_start() {
        let h = two_clusters();
        let mut side: Vec<u8> = (0..10).map(|v| (v % 2) as u8).collect();
        refine(&h, &mut side, 0.5, 0.05, 10);
        assert_eq!(cut_of(&h, &side), 1, "only the bridge net should be cut");
    }

    #[test]
    fn gain_formula_on_known_configuration() {
        let h = Hypergraph::new(vec![1; 3], vec![vec![0, 1], vec![0, 2]], vec![1, 4]);
        let side = vec![0u8, 0, 1];
        let mut counts = vec![[0u32; 2]; 2];
        for (net, count) in counts.iter_mut().enumerate() {
            for &p in h.pins(net) {
                count[side[p as usize] as usize] += 1;
            }
        }
        // Moving v0 to side 1: net0 {0,1} becomes cut (−1); net1 {0,2}
        // becomes internal since v0 was the last side-0 pin (+4). Gain +3.
        assert_eq!(gain(&h, &side, &counts, 0), 3);
        // Moving v1: net0 {0,1} is internal to side 0 and becomes cut (−1).
        assert_eq!(gain(&h, &side, &counts, 1), -1);
    }

    #[test]
    fn never_worsens() {
        let h = two_clusters();
        let mut side: Vec<u8> = vec![0, 1, 1, 0, 0, 1, 0, 1, 0, 1];
        let before = cut_of(&h, &side);
        refine(&h, &mut side, 0.5, 0.1, 3);
        assert!(cut_of(&h, &side) <= before);
    }

    #[test]
    fn respects_balance() {
        let h = two_clusters();
        let mut side: Vec<u8> = (0..10).map(|v| if v < 5 { 0 } else { 1 }).collect();
        refine(&h, &mut side, 0.5, 0.05, 10);
        let w0 = side.iter().filter(|&&s| s == 0).count();
        assert!((4..=6).contains(&w0));
    }

    #[test]
    fn weighted_nets_dominate_decisions() {
        // A cheap net pulls v1 right, an expensive net pulls it left.
        let h = Hypergraph::new(
            vec![1, 1, 1, 1],
            vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]],
            vec![10, 1, 10, 1],
        );
        let mut side = vec![0u8, 1, 1, 0];
        // Current cut: net0 (10, cut) + net2 (10, cut)… refine with loose
        // balance so FM can fix it to cut the two cheap nets instead.
        refine(&h, &mut side, 0.5, 0.1, 10);
        assert!(cut_of(&h, &side) <= 2, "cut {}", cut_of(&h, &side));
    }
}
