//! Heavy-connectivity-matching coarsening for hypergraphs.
//!
//! Two vertices match when they share many (small, cheap-to-scan) nets; the
//! score of a candidate pair accumulates `cost(net)/(|pins(net)|−1)` over
//! shared nets, the classic PaToH heavy-connectivity heuristic. Merged
//! vertices sum weights; pins map through the merge; single-pin nets
//! disappear and identical nets merge with summed cost, so the coarse FM
//! works on an equivalent but much smaller problem.

use crate::hypergraph::Hypergraph;
use pargcn_util::rng::SliceRandom;
use pargcn_util::rng::StdRng;
use std::collections::HashMap;

/// Nets with more pins than this are ignored during matching (scanning a
/// hub column's thousands of pins per candidate would dominate runtime and
/// such nets carry almost no matching signal).
const MATCHING_NET_CAP: usize = 64;

/// One level of heavy-connectivity matching. Returns the coarse hypergraph
/// and the fine-vertex → coarse-vertex map.
pub fn coarsen_once(h: &Hypergraph, rng: &mut StdRng) -> (Hypergraph, Vec<u32>) {
    let n = h.n_vertices();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);

    let mut matched = vec![u32::MAX; n];
    let mut coarse_count = 0u32;
    // Agglomerative clustering (PaToH-style HCC rather than strict
    // pair-matching): a vertex may also join an *already formed* cluster.
    // Pure matching stalls on skewed graphs — once a hub's satellites pair
    // up, everything left is singletons and the hierarchy bottoms out at
    // tens of thousands of vertices, leaving FM to refine a huge flat
    // hypergraph. Cluster joins keep the reduction going; the weight cap
    // stops hub clusters from swallowing whole parts.
    let total_weight: u64 = h.vertex_weights().iter().sum();
    let cluster_cap = (total_weight / (n as u64 / 2).max(1)).max(1) * 6;
    let mut cluster_weight: Vec<u64> = Vec::with_capacity(n / 2 + 1);
    // Scratch score table over candidate *vertices*, reset via the touched
    // list.
    let mut score = vec![0.0f64; n];
    let mut touched: Vec<u32> = Vec::new();

    for &v in &order {
        if matched[v as usize] != u32::MAX {
            continue;
        }
        let vw = h.vertex_weights()[v as usize];
        touched.clear();
        for &net in h.nets_of(v as usize) {
            let pins = h.pins(net as usize);
            if pins.len() > MATCHING_NET_CAP || pins.len() < 2 {
                continue;
            }
            let w = h.net_cost(net as usize) as f64 / (pins.len() - 1) as f64;
            for &u in pins {
                if u != v {
                    if score[u as usize] == 0.0 {
                        touched.push(u);
                    }
                    score[u as usize] += w;
                }
            }
        }
        // Best candidate whose cluster can still absorb v.
        let best = touched
            .iter()
            .copied()
            .filter(|&u| {
                let c = matched[u as usize];
                if c == u32::MAX {
                    h.vertex_weights()[u as usize] + vw <= cluster_cap
                } else {
                    cluster_weight[c as usize] + vw <= cluster_cap
                }
            })
            .max_by(|&a, &b| {
                score[a as usize]
                    .partial_cmp(&score[b as usize])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        match best {
            Some(u) if matched[u as usize] != u32::MAX => {
                // Join u's existing cluster.
                let c = matched[u as usize];
                matched[v as usize] = c;
                cluster_weight[c as usize] += vw;
            }
            Some(u) => {
                // Form a new pair.
                let c = coarse_count;
                coarse_count += 1;
                matched[v as usize] = c;
                matched[u as usize] = c;
                cluster_weight.push(vw + h.vertex_weights()[u as usize]);
            }
            None => {
                let c = coarse_count;
                coarse_count += 1;
                matched[v as usize] = c;
                cluster_weight.push(vw);
            }
        }
        for &u in &touched {
            score[u as usize] = 0.0;
        }
    }

    // Coarse vertex weights.
    let nc = coarse_count as usize;
    let mut vertex_weights = vec![0u64; nc];
    for v in 0..n {
        vertex_weights[matched[v] as usize] += h.vertex_weights()[v];
    }

    // Coarse nets: map pins, dedup, drop singletons, merge identical nets.
    let mut net_map: HashMap<Vec<u32>, u64> = HashMap::new();
    let mut scratch = Vec::new();
    for net in 0..h.n_nets() {
        scratch.clear();
        scratch.extend(h.pins(net).iter().map(|&p| matched[p as usize]));
        scratch.sort_unstable();
        scratch.dedup();
        if scratch.len() >= 2 {
            *net_map.entry(scratch.clone()).or_insert(0) += h.net_cost(net);
        }
    }
    // Deterministic net order (HashMap iteration order is not).
    let mut entries: Vec<(Vec<u32>, u64)> = net_map.into_iter().collect();
    entries.sort_unstable();
    let (nets, costs): (Vec<Vec<u32>>, Vec<u64>) = entries.into_iter().unzip();
    (Hypergraph::new(vertex_weights, nets, costs), matched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Partition;
    use pargcn_util::rng::SeedableRng;

    /// Chain hypergraph: net i connects {i, i+1}.
    fn chain(n: usize) -> Hypergraph {
        let nets: Vec<Vec<u32>> = (0..n as u32 - 1).map(|i| vec![i, i + 1]).collect();
        let costs = vec![1u64; nets.len()];
        Hypergraph::new(vec![1; n], nets, costs)
    }

    #[test]
    fn shrinks_and_preserves_weight() {
        let h = chain(100);
        let mut rng = StdRng::seed_from_u64(0);
        let (coarse, map) = coarsen_once(&h, &mut rng);
        assert!(coarse.n_vertices() < 70);
        assert_eq!(
            coarse.vertex_weights().iter().sum::<u64>(),
            h.vertex_weights().iter().sum::<u64>()
        );
        assert!(map.iter().all(|&c| (c as usize) < coarse.n_vertices()));
    }

    #[test]
    fn internal_nets_vanish() {
        // Single net {0,1}: after matching 0 with 1, no coarse nets remain.
        let h = Hypergraph::new(vec![1, 1], vec![vec![0, 1]], vec![1]);
        let mut rng = StdRng::seed_from_u64(1);
        let (coarse, _) = coarsen_once(&h, &mut rng);
        assert_eq!(coarse.n_vertices(), 1);
        assert_eq!(coarse.n_nets(), 0);
    }

    #[test]
    fn identical_nets_merge_costs() {
        // Two identical nets over 4 vertices; prevent the pins from being
        // matched together by giving them no shared small nets... instead
        // verify directly via a hand-built matching-resistant instance:
        // vertices 0,1 share nets; 2,3 share nets; nets {0,2} twice.
        let h = Hypergraph::new(
            vec![1; 4],
            vec![vec![0, 1], vec![2, 3], vec![0, 2], vec![0, 2]],
            vec![1, 1, 3, 5],
        );
        let mut rng = StdRng::seed_from_u64(2);
        let (coarse, map) = coarsen_once(&h, &mut rng);
        // If 0-1 and 2-3 matched (the heavy pairs), the two {0,2} nets
        // project to the same coarse pin pair and merge to cost 8.
        if coarse.n_vertices() == 2 && map[0] == map[1] && map[2] == map[3] {
            assert_eq!(coarse.n_nets(), 1);
            assert_eq!(coarse.net_cost(0), 8);
        }
    }

    #[test]
    fn cut_preserved_under_projection() {
        let h = chain(60);
        let mut rng = StdRng::seed_from_u64(3);
        let (coarse, map) = coarsen_once(&h, &mut rng);
        let coarse_part = Partition::new(
            (0..coarse.n_vertices()).map(|v| (v % 2) as u32).collect(),
            2,
        );
        let fine_part = Partition::new(
            (0..h.n_vertices())
                .map(|v| coarse_part.part_of(map[v] as usize))
                .collect(),
            2,
        );
        // Coarse cut equals fine cut restricted to surviving nets; vanished
        // nets were internal (uncut) so the totals agree.
        assert_eq!(
            coarse.connectivity_cut(&coarse_part),
            h.connectivity_cut(&fine_part)
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let h = chain(50);
        let a = coarsen_once(&h, &mut StdRng::seed_from_u64(4)).1;
        let b = coarsen_once(&h, &mut StdRng::seed_from_u64(4)).1;
        assert_eq!(a, b);
    }
}
