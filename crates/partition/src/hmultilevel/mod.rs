//! Multilevel hypergraph partitioner minimizing the connectivity−1 metric
//! (the HP model's engine — a from-scratch stand-in for PaToH, DESIGN.md §1).
//!
//! Recursive bisection with net splitting: a net cut at one level is
//! restricted to each side and re-partitioned deeper, so the sum of
//! bisection cut costs over all levels equals the k-way connectivity−1 cut
//! (the standard PaToH-style decomposition). Each bisection runs
//! heavy-connectivity coarsening ([`coarsen`]), greedy growing
//! ([`initial`]), and hypergraph FM refinement ([`fm`]).

pub mod coarsen;
pub mod fm;
pub mod initial;
pub mod kway;

use crate::hypergraph::Hypergraph;
use crate::Partition;
use pargcn_util::rng::SeedableRng;
use pargcn_util::rng::StdRng;

/// Ablation knobs for the multilevel pipeline (used by the `ablations`
/// bench to quantify what coarsening and FM refinement each contribute).
#[derive(Clone, Copy, Debug)]
pub struct Options {
    /// Run the coarsening hierarchy (false = flat initial + FM only).
    pub coarsen: bool,
    /// FM passes at the coarsest level (0 disables refinement there).
    pub fm_passes_coarsest: usize,
    /// FM passes at each uncoarsening level.
    pub fm_passes_uncoarsen: usize,
    /// Greedy direct k-way refinement passes after recursive bisection
    /// (0 disables; see [`kway`]).
    pub kway_passes: usize,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            coarsen: true,
            fm_passes_coarsest: 8,
            fm_passes_uncoarsen: 4,
            kway_passes: 2,
        }
    }
}

/// Partitions `h` into `p` parts with per-bisection imbalance `epsilon`.
pub fn partition(h: &Hypergraph, p: usize, epsilon: f64, seed: u64) -> Partition {
    partition_with(h, p, epsilon, seed, Options::default())
}

/// As [`partition`] with explicit pipeline [`Options`].
pub fn partition_with(
    h: &Hypergraph,
    p: usize,
    epsilon: f64,
    seed: u64,
    opts: Options,
) -> Partition {
    assert!(p >= 1, "need at least one part");
    let n = h.n_vertices();
    assert!(p <= n, "more parts than vertices");
    let mut assignment = vec![0u32; n];
    let mut rng = StdRng::seed_from_u64(seed);
    let all: Vec<u32> = (0..n as u32).collect();
    recurse(h, &all, 0, p, epsilon, opts, &mut rng, &mut assignment);
    let mut part = Partition::new(assignment, p);
    if opts.kway_passes > 0 && p > 1 {
        kway::refine(h, &mut part, epsilon.max(0.03), opts.kway_passes);
    }
    part
}

// The recursion state is inherently eight-wide; bundling it into a struct
// would only rename the problem.
#[allow(clippy::too_many_arguments)]
fn recurse(
    h: &Hypergraph,
    vertices: &[u32],
    part_offset: u32,
    k: usize,
    epsilon: f64,
    opts: Options,
    rng: &mut StdRng,
    assignment: &mut [u32],
) {
    if k == 1 {
        for &v in vertices {
            assignment[v as usize] = part_offset;
        }
        return;
    }
    let k0 = k / 2;
    let k1 = k - k0;
    let frac0 = k0 as f64 / k as f64;

    let sub = extract_subhypergraph(h, vertices);
    let side = bisect(&sub, frac0, epsilon, opts, rng);

    let mut left = Vec::new();
    let mut right = Vec::new();
    for (local, &v) in vertices.iter().enumerate() {
        if side[local] == 0 {
            left.push(v);
        } else {
            right.push(v);
        }
    }
    if left.is_empty() || right.is_empty() {
        left.clear();
        right.clear();
        for (i, &v) in vertices.iter().enumerate() {
            if i * k < vertices.len() * k0 {
                left.push(v);
            } else {
                right.push(v);
            }
        }
    }
    recurse(h, &left, part_offset, k0, epsilon, opts, rng, assignment);
    recurse(
        h,
        &right,
        part_offset + k0 as u32,
        k1,
        epsilon,
        opts,
        rng,
        assignment,
    );
}

/// One multilevel bisection, returning side labels with side-0 target
/// weight fraction `frac0`.
fn bisect(h: &Hypergraph, frac0: f64, epsilon: f64, opts: Options, rng: &mut StdRng) -> Vec<u8> {
    let mut levels: Vec<(Hypergraph, Vec<u32>)> = Vec::new();
    let mut current = h.clone();
    while opts.coarsen && current.n_vertices() > 96 {
        let (coarse, map) = coarsen::coarsen_once(&current, rng);
        if coarse.n_vertices() as f64 > current.n_vertices() as f64 * 0.95 {
            break;
        }
        levels.push((current, map));
        current = coarse;
    }

    let mut side = initial::greedy_bisect(&current, frac0, rng);
    fm::refine(&current, &mut side, frac0, epsilon, opts.fm_passes_coarsest);

    while let Some((fine, map)) = levels.pop() {
        let mut fine_side = vec![0u8; fine.n_vertices()];
        for v in 0..fine.n_vertices() {
            fine_side[v] = side[map[v] as usize];
        }
        side = fine_side;
        fm::refine(&fine, &mut side, frac0, epsilon, opts.fm_passes_uncoarsen);
    }
    side
}

/// Net-splitting sub-hypergraph extraction: pins are restricted to
/// `vertices` (renumbered); nets left with fewer than two pins can never be
/// cut again and are dropped.
pub(crate) fn extract_subhypergraph(h: &Hypergraph, vertices: &[u32]) -> Hypergraph {
    let mut map = vec![u32::MAX; h.n_vertices()];
    for (local, &v) in vertices.iter().enumerate() {
        map[v as usize] = local as u32;
    }
    let vertex_weights: Vec<u64> = vertices
        .iter()
        .map(|&v| h.vertex_weights()[v as usize])
        .collect();
    let mut nets = Vec::new();
    let mut costs = Vec::new();
    let mut scratch = Vec::new();
    for net in 0..h.n_nets() {
        scratch.clear();
        for &pin in h.pins(net) {
            let m = map[pin as usize];
            if m != u32::MAX {
                scratch.push(m);
            }
        }
        if scratch.len() >= 2 {
            nets.push(scratch.clone());
            costs.push(h.net_cost(net));
        }
    }
    Hypergraph::new(vertex_weights, nets, costs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargcn_graph::gen::{community, grid};

    fn model_of(g: &pargcn_graph::Graph) -> Hypergraph {
        Hypergraph::column_net_model(&g.normalized_adjacency())
    }

    #[test]
    fn produces_valid_balanced_partition() {
        let g = grid::road_network(900, 1);
        let h = model_of(&g);
        let part = partition(&h, 4, 0.05, 7);
        assert_eq!(part.p(), 4);
        assert!(part.all_parts_nonempty());
        assert!(
            part.imbalance(h.vertex_weights()) < 0.25,
            "imbalance {}",
            part.imbalance(h.vertex_weights())
        );
    }

    #[test]
    fn beats_random_on_structured_graphs() {
        let g = community::copurchase(2000, 8.0, false, 5);
        let h = model_of(&g);
        let part = partition(&h, 8, 0.05, 3);
        let rand_part = crate::random::partition(h.n_vertices(), 8, 3);
        let cut = h.connectivity_cut(&part);
        let rand_cut = h.connectivity_cut(&rand_part);
        assert!(
            (cut as f64) < rand_cut as f64 * 0.6,
            "multilevel cut {cut} not well below random cut {rand_cut}"
        );
    }

    #[test]
    fn net_splitting_preserves_kway_cut_decomposition() {
        // The bisection-level cut plus the two sub-problems' cuts equals the
        // 4-way connectivity cut, by the net-splitting construction.
        let g = grid::road_network(400, 2);
        let h = model_of(&g);
        let part = partition(&h, 4, 0.1, 1);
        // Merge parts {0,1} vs {2,3} to recover the top-level bisection.
        let top = Partition::new(
            part.assignment()
                .iter()
                .map(|&a| if a < 2 { 0 } else { 1 })
                .collect(),
            2,
        );
        let top_cut = h.connectivity_cut(&top);
        let four_cut = h.connectivity_cut(&part);
        assert!(
            four_cut >= top_cut,
            "k-way cut {four_cut} below top-level {top_cut}"
        );
    }

    #[test]
    fn handles_non_power_of_two() {
        let g = grid::road_network(600, 3);
        let h = model_of(&g);
        let part = partition(&h, 7, 0.1, 2);
        assert!(part.all_parts_nonempty());
    }

    #[test]
    fn deterministic_given_seed() {
        let g = grid::road_network(300, 4);
        let h = model_of(&g);
        assert_eq!(partition(&h, 4, 0.05, 9), partition(&h, 4, 0.05, 9));
    }

    #[test]
    fn subhypergraph_drops_singleton_nets() {
        let h = Hypergraph::new(
            vec![1; 4],
            vec![vec![0, 1], vec![1, 2, 3], vec![0, 3]],
            vec![1, 1, 1],
        );
        let sub = extract_subhypergraph(&h, &[1, 2, 3]);
        // Net 0 loses pin 0 → 1 pin → dropped; net 1 keeps 3 pins; net 2
        // loses pin 0 → 1 pin → dropped.
        assert_eq!(sub.n_nets(), 1);
        assert_eq!(sub.pins(0), &[0, 1, 2]);
    }
}
