//! Greedy growing initial bisection for hypergraphs.
//!
//! Side 0 grows from a random seed, absorbing next the frontier vertex with
//! the strongest net connectivity to the grown region (each incident net
//! with a grown pin contributes its cost). FM refinement afterwards does
//! the fine-grained work; this only needs a sane starting point.

use crate::hypergraph::Hypergraph;
use crate::Partition;
use pargcn_util::rng::Rng;
use pargcn_util::rng::StdRng;
use std::collections::BinaryHeap;

const TRIES: usize = 4;

/// Bisects `h`, targeting a side-0 weight fraction of `frac0`.
pub fn greedy_bisect(h: &Hypergraph, frac0: f64, rng: &mut StdRng) -> Vec<u8> {
    let n = h.n_vertices();
    if n == 0 {
        return Vec::new();
    }
    let total: u64 = h.vertex_weights().iter().sum();
    let target0 = (total as f64 * frac0).round() as u64;

    let mut best: Option<(u64, Vec<u8>)> = None;
    for _ in 0..TRIES {
        let side = grow_from(h, rng.gen_range(0..n), target0);
        let part = Partition::new(side.iter().map(|&s| s as u32).collect(), 2);
        let cut = h.connectivity_cut(&part);
        if best.as_ref().is_none_or(|(bc, _)| cut < *bc) {
            best = Some((cut, side));
        }
    }
    best.unwrap().1
}

fn grow_from(h: &Hypergraph, seed: usize, target0: u64) -> Vec<u8> {
    let n = h.n_vertices();
    let mut side = vec![1u8; n];
    let mut grown_weight = 0u64;
    let mut conn = vec![0u64; n];
    let mut net_has_grown = vec![false; h.n_nets()];
    let mut heap: BinaryHeap<(u64, u32)> = BinaryHeap::new();
    let mut visited_seed = vec![false; n];
    let mut next_seed = seed;

    loop {
        if side[next_seed] == 1 {
            heap.push((1, next_seed as u32));
            visited_seed[next_seed] = true;
        }
        while grown_weight < target0 {
            let Some((key, v)) = heap.pop() else { break };
            let v = v as usize;
            if side[v] == 0 {
                continue;
            }
            if key != conn[v].max(1) {
                continue;
            }
            side[v] = 0;
            grown_weight += h.vertex_weights()[v];
            for &net in h.nets_of(v) {
                if !net_has_grown[net as usize] {
                    net_has_grown[net as usize] = true;
                    let cost = h.net_cost(net as usize);
                    for &u in h.pins(net as usize) {
                        if side[u as usize] == 1 {
                            conn[u as usize] += cost;
                            heap.push((conn[u as usize].max(1), u));
                        }
                    }
                }
            }
        }
        if grown_weight >= target0 {
            break;
        }
        match (0..n).find(|&v| side[v] == 1 && !visited_seed[v]) {
            Some(v) => next_seed = v,
            None => break,
        }
    }
    side
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargcn_util::rng::SeedableRng;

    fn chain(n: usize) -> Hypergraph {
        let nets: Vec<Vec<u32>> = (0..n as u32 - 1).map(|i| vec![i, i + 1]).collect();
        let costs = vec![1u64; nets.len()];
        Hypergraph::new(vec![1; n], nets, costs)
    }

    #[test]
    fn chain_bisection_is_contiguous() {
        let h = chain(60);
        let mut rng = StdRng::seed_from_u64(0);
        let side = greedy_bisect(&h, 0.5, &mut rng);
        let part = Partition::new(side.iter().map(|&s| s as u32).collect(), 2);
        assert!(
            h.connectivity_cut(&part) <= 2,
            "cut {}",
            h.connectivity_cut(&part)
        );
    }

    #[test]
    fn weight_target_respected() {
        let h = chain(100);
        let mut rng = StdRng::seed_from_u64(1);
        let side = greedy_bisect(&h, 0.3, &mut rng);
        let w0 = side.iter().filter(|&&s| s == 0).count();
        assert!((25..=38).contains(&w0), "side-0 size {w0}");
    }

    #[test]
    fn handles_vertices_without_nets() {
        // Vertices 3,4 have no nets; growth must still absorb them if needed.
        let h = Hypergraph::new(vec![1; 5], vec![vec![0, 1], vec![1, 2]], vec![1, 1]);
        let mut rng = StdRng::seed_from_u64(2);
        let side = greedy_bisect(&h, 0.8, &mut rng);
        let w0 = side.iter().filter(|&&s| s == 0).count();
        assert!(w0 >= 3, "grew only {w0}");
    }
}
