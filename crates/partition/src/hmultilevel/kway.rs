//! Direct k-way refinement on the connectivity−1 metric.
//!
//! Recursive bisection optimizes each split in isolation; a final greedy
//! k-way pass lets vertices move between *any* pair of parts, recovering
//! gains RB cannot see (a vertex may prefer a part created in a different
//! branch of the bisection tree). This mirrors PaToH's optional k-way
//! refinement stage.
//!
//! Gains use per-net part-count tables: moving `v` from part `a` to `b`
//! changes net `n`'s contribution by
//!
//! * `+cost(n)` if `v` is the last pin of `n` in `a` (λ shrinks), and
//! * `−cost(n)` if `n` had no pin in `b` yet (λ grows).
//!
//! Counts are stored sparsely per net (most nets touch few parts). Hub
//! vertices and giant nets are skipped exactly like in the bisection FM —
//! they almost never move profitably and dominate runtime otherwise.

use crate::hypergraph::Hypergraph;
use crate::Partition;

/// Nets with more pins than this neither contribute gain candidates nor
/// get updated eagerly (same rationale as the bisection FM's caps).
const NET_CAP: usize = 64;

/// Vertices incident to more nets than this are not considered for moves.
const VERTEX_CAP: usize = 256;

/// Sparse per-net part counts: `(part, pins-in-part)` pairs, short vectors.
struct NetCounts {
    counts: Vec<Vec<(u32, u32)>>,
}

impl NetCounts {
    fn build(h: &Hypergraph, assignment: &[u32]) -> NetCounts {
        let mut counts = Vec::with_capacity(h.n_nets());
        for net in 0..h.n_nets() {
            let mut c: Vec<(u32, u32)> = Vec::new();
            for &pin in h.pins(net) {
                let p = assignment[pin as usize];
                match c.iter_mut().find(|(q, _)| *q == p) {
                    Some((_, n)) => *n += 1,
                    None => c.push((p, 1)),
                }
            }
            counts.push(c);
        }
        NetCounts { counts }
    }

    #[inline]
    fn count(&self, net: usize, part: u32) -> u32 {
        self.counts[net]
            .iter()
            .find(|(q, _)| *q == part)
            .map(|&(_, n)| n)
            .unwrap_or(0)
    }

    #[inline]
    fn move_pin(&mut self, net: usize, from: u32, to: u32) {
        let c = &mut self.counts[net];
        if let Some(pos) = c.iter().position(|(q, _)| *q == from) {
            c[pos].1 -= 1;
            if c[pos].1 == 0 {
                c.swap_remove(pos);
            }
        }
        match c.iter_mut().find(|(q, _)| *q == to) {
            Some((_, n)) => *n += 1,
            None => c.push((to, 1)),
        }
    }
}

/// Greedy k-way refinement: `passes` sweeps over the vertices, moving each
/// to its best-gain feasible part. Returns the total connectivity−1
/// improvement. The partition is modified in place and never worsened.
pub fn refine(h: &Hypergraph, part: &mut Partition, epsilon: f64, passes: usize) -> u64 {
    let n = h.n_vertices();
    let p = part.p();
    if p < 2 || n == 0 {
        return 0;
    }
    let mut assignment: Vec<u32> = part.assignment().to_vec();
    let mut counts = NetCounts::build(h, &assignment);

    let weights = h.vertex_weights();
    let total: u64 = weights.iter().sum();
    let cap = ((total as f64 / p as f64) * (1.0 + epsilon)).ceil() as u64;
    let mut part_weight = vec![0u64; p];
    for v in 0..n {
        part_weight[assignment[v] as usize] += weights[v];
    }

    let mut total_gain = 0u64;
    // Scratch: candidate target parts for the current vertex.
    let mut candidates: Vec<u32> = Vec::new();
    for _pass in 0..passes {
        let mut pass_gain = 0u64;
        for v in 0..n {
            let nets = h.nets_of(v);
            if nets.is_empty() || nets.len() > VERTEX_CAP {
                continue;
            }
            let from = assignment[v];
            // Candidate parts: those sharing a (small) net with v.
            candidates.clear();
            for &net in nets {
                if h.pins(net as usize).len() > NET_CAP {
                    continue;
                }
                for &(q, _) in &counts.counts[net as usize] {
                    if q != from && !candidates.contains(&q) {
                        candidates.push(q);
                    }
                }
            }
            if candidates.is_empty() {
                continue;
            }
            // Gain of leaving `from` is target-independent.
            let mut leave = 0i64;
            for &net in nets {
                if counts.count(net as usize, from) == 1 {
                    leave += h.net_cost(net as usize) as i64;
                }
            }
            let mut best: Option<(i64, u32)> = None;
            for &to in &candidates {
                if part_weight[to as usize] + weights[v] > cap {
                    continue;
                }
                let mut gain = leave;
                for &net in nets {
                    if counts.count(net as usize, to) == 0 {
                        gain -= h.net_cost(net as usize) as i64;
                    }
                }
                if gain > 0 && best.is_none_or(|(bg, _)| gain > bg) {
                    best = Some((gain, to));
                }
            }
            if let Some((gain, to)) = best {
                for &net in nets {
                    counts.move_pin(net as usize, from, to);
                }
                part_weight[from as usize] -= weights[v];
                part_weight[to as usize] += weights[v];
                assignment[v] = to;
                pass_gain += gain as u64;
            }
        }
        total_gain += pass_gain;
        if pass_gain == 0 {
            break;
        }
    }
    *part = Partition::new(assignment, p);
    total_gain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hmultilevel, random};
    use pargcn_graph::gen::{community, social};

    fn model(g: &pargcn_graph::Graph) -> Hypergraph {
        Hypergraph::column_net_model(&g.normalized_adjacency())
    }

    #[test]
    fn never_worsens_and_reports_true_gain() {
        let g = community::copurchase(1200, 6.0, false, 1);
        let h = model(&g);
        let mut part = random::partition(h.n_vertices(), 8, 2);
        let before = h.connectivity_cut(&part);
        let gain = refine(&h, &mut part, 0.10, 3);
        let after = h.connectivity_cut(&part);
        assert_eq!(
            before - after,
            gain,
            "reported gain must equal actual cut reduction"
        );
        assert!(after <= before);
        assert!(gain > 0, "random partitions leave plenty of k-way gains");
    }

    #[test]
    fn improves_recursive_bisection_output() {
        let g = social::generate(2500, 10.0, false, 3);
        let h = model(&g);
        let mut part = hmultilevel::partition(&h, 16, 0.05, 1);
        let before = h.connectivity_cut(&part);
        let gain = refine(&h, &mut part, 0.10, 2);
        assert_eq!(before - gain, h.connectivity_cut(&part));
    }

    #[test]
    fn respects_balance_cap() {
        let g = community::copurchase(900, 6.0, false, 5);
        let h = model(&g);
        let mut part = hmultilevel::partition(&h, 6, 0.05, 3);
        refine(&h, &mut part, 0.10, 3);
        assert!(
            part.imbalance(h.vertex_weights()) < 0.45,
            "imbalance {} after refinement",
            part.imbalance(h.vertex_weights())
        );
        assert!(part.all_parts_nonempty());
    }

    #[test]
    fn noop_on_single_part() {
        let g = community::copurchase(100, 5.0, false, 7);
        let h = model(&g);
        let mut part = Partition::trivial(100);
        assert_eq!(refine(&h, &mut part, 0.1, 2), 0);
    }

    #[test]
    fn netcounts_track_moves() {
        let h = Hypergraph::new(vec![1; 4], vec![vec![0, 1, 2], vec![2, 3]], vec![1, 1]);
        let assignment = vec![0u32, 0, 1, 1];
        let mut c = NetCounts::build(&h, &assignment);
        assert_eq!(c.count(0, 0), 2);
        assert_eq!(c.count(0, 1), 1);
        c.move_pin(0, 0, 1);
        assert_eq!(c.count(0, 0), 1);
        assert_eq!(c.count(0, 1), 2);
        c.move_pin(1, 1, 0);
        assert_eq!(c.count(1, 1), 1);
        assert_eq!(c.count(1, 0), 1);
    }
}
