//! The [`Partition`] type: a p-way assignment of vertices (equivalently,
//! matrix rows) to processors, with the balance bookkeeping of §3.2.

/// A p-way partition `Π = {V₁, …, V_p}` stored as a per-vertex part id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    assignment: Vec<u32>,
    p: usize,
}

impl Partition {
    /// Wraps an assignment vector.
    ///
    /// # Panics
    /// Panics if any part id is `>= p`.
    pub fn new(assignment: Vec<u32>, p: usize) -> Self {
        assert!(p >= 1, "need at least one part");
        assert!(
            assignment.iter().all(|&a| (a as usize) < p),
            "part id out of range"
        );
        Self { assignment, p }
    }

    /// The trivial 1-way partition (serial execution).
    pub fn trivial(n: usize) -> Self {
        Self {
            assignment: vec![0; n],
            p: 1,
        }
    }

    #[inline]
    pub fn n(&self) -> usize {
        self.assignment.len()
    }

    #[inline]
    pub fn p(&self) -> usize {
        self.p
    }

    /// Part id of vertex `v`.
    #[inline]
    pub fn part_of(&self, v: usize) -> u32 {
        self.assignment[v]
    }

    #[inline]
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Vertex lists per part, each ascending.
    pub fn members(&self) -> Vec<Vec<u32>> {
        let mut parts = vec![Vec::new(); self.p];
        for (v, &a) in self.assignment.iter().enumerate() {
            parts[a as usize].push(v as u32);
        }
        parts
    }

    /// Sum of `weights` per part. `W(Vₘ)` of §3.2.
    pub fn part_weights(&self, weights: &[u64]) -> Vec<u64> {
        assert_eq!(weights.len(), self.n(), "weights length mismatch");
        let mut w = vec![0u64; self.p];
        for (v, &a) in self.assignment.iter().enumerate() {
            w[a as usize] += weights[v];
        }
        w
    }

    /// Imbalance ratio `max W(Vₘ) / W_avg − 1` (so `0.0` is perfect balance).
    pub fn imbalance(&self, weights: &[u64]) -> f64 {
        let w = self.part_weights(weights);
        let total: u64 = w.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let avg = total as f64 / self.p as f64;
        let max = *w.iter().max().unwrap() as f64;
        max / avg - 1.0
    }

    /// True when every part is nonempty (required by the §3.2 definition).
    pub fn all_parts_nonempty(&self) -> bool {
        let mut seen = vec![false; self.p];
        for &a in &self.assignment {
            seen[a as usize] = true;
        }
        seen.into_iter().all(|s| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_and_weights() {
        let part = Partition::new(vec![0, 1, 0, 1, 1], 2);
        assert_eq!(part.members(), vec![vec![0, 2], vec![1, 3, 4]]);
        assert_eq!(part.part_weights(&[1, 2, 3, 4, 5]), vec![4, 11]);
    }

    #[test]
    fn imbalance_of_perfect_split_is_zero() {
        let part = Partition::new(vec![0, 0, 1, 1], 2);
        assert_eq!(part.imbalance(&[1, 1, 1, 1]), 0.0);
    }

    #[test]
    fn imbalance_detects_skew() {
        let part = Partition::new(vec![0, 0, 0, 1], 2);
        // Weights 3 vs 1, avg 2 → imbalance 0.5.
        assert!((part.imbalance(&[1, 1, 1, 1]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nonempty_check() {
        assert!(Partition::new(vec![0, 1], 2).all_parts_nonempty());
        assert!(!Partition::new(vec![0, 0], 2).all_parts_nonempty());
    }

    #[test]
    #[should_panic(expected = "part id out of range")]
    fn rejects_out_of_range() {
        Partition::new(vec![0, 2], 2);
    }
}
