//! The stochastic hypergraph model for mini-batch training (§4.3.3,
//! Algorithm 3).
//!
//! Mini-batch training convolves over random subgraphs, so the exact
//! full-batch communication volume is the wrong objective. Instead, `b`
//! mini-batches are sampled up front, each subgraph's column-net hypergraph
//! is built, and all of them are merged over the common vertex set. The
//! connectivity cut of the merged hypergraph is `b ×` the *expected*
//! per-batch communication volume, so partitioning it minimizes expected
//! mini-batch communication. Equation 14's Hoeffding bound
//! (`|N| ≥ (p−1)²/(2θ²) · ln(2/δ)`) tells how many nets make the estimate
//! `θ`-accurate with confidence `1−δ`.

use crate::hypergraph::Hypergraph;
use crate::Partition;
use pargcn_graph::Graph;
use pargcn_matrix::norm;
use pargcn_util::rng::SeedableRng;
use pargcn_util::rng::SliceRandom;
use pargcn_util::rng::StdRng;

/// Mini-batch sampling strategies supported by the stochastic model. The
/// model itself is sampler-agnostic ("can be utilized for any mini-batch
/// sampling strategy", §1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sampler {
    /// Uniform vertex sampling: each batch is the induced subgraph of a
    /// uniform random vertex subset (the paper's Fig. 5 setup: "10K random
    /// mini-batches of size 20K vertices").
    UniformVertex { batch_size: usize },
    /// Seed-and-expand neighbor sampling: uniformly chosen seeds plus their
    /// out-neighbors up to `batch_size` vertices (GraphSAGE-style 1-hop).
    NeighborExpansion { seeds: usize, batch_size: usize },
}

/// Samples `count` mini-batches as vertex lists.
pub fn sample_batches(graph: &Graph, sampler: Sampler, count: usize, seed: u64) -> Vec<Vec<u32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = graph.n();
    let mut all: Vec<u32> = (0..n as u32).collect();
    let mut batches = Vec::with_capacity(count);
    for _ in 0..count {
        let batch = match sampler {
            Sampler::UniformVertex { batch_size } => {
                let k = batch_size.min(n);
                all.shuffle(&mut rng);
                let mut b = all[..k].to_vec();
                b.sort_unstable();
                b
            }
            Sampler::NeighborExpansion { seeds, batch_size } => {
                let k = seeds.min(n);
                all.shuffle(&mut rng);
                let mut chosen: Vec<u32> = all[..k].to_vec();
                let mut in_batch = vec![false; n];
                for &s in &chosen {
                    in_batch[s as usize] = true;
                }
                'outer: for i in 0..k {
                    for &nbr in graph.neighbors(chosen[i] as usize) {
                        if !in_batch[nbr as usize] {
                            in_batch[nbr as usize] = true;
                            chosen.push(nbr);
                            if chosen.len() >= batch_size {
                                break 'outer;
                            }
                        }
                    }
                }
                chosen.sort_unstable();
                chosen
            }
        };
        batches.push(batch);
    }
    batches
}

/// Builds the merged stochastic hypergraph from sampled batches
/// (Algorithm 3 lines 2–3). Vertices are the *full* vertex set of `graph`
/// (weighted by their full-batch SpMM work, valid when every vertex is
/// equally likely to be sampled, §4.3.3); nets come from each batch
/// subgraph's column-net model, mapped back to global vertex ids.
pub fn build_stochastic_hypergraph(graph: &Graph, batches: &[Vec<u32>]) -> Hypergraph {
    let n = graph.n();
    let full = norm::normalize_adjacency(graph.adjacency());
    let vertex_weights: Vec<u64> = (0..n).map(|i| full.row_nnz(i) as u64).collect();

    let mut nets: Vec<Vec<u32>> = Vec::new();
    for batch in batches {
        let sub = graph.induced_subgraph(batch);
        let sub_norm = norm::normalize_adjacency(sub.adjacency());
        let at = sub_norm.transpose();
        for j in 0..sub.n() {
            let pins = at.row_indices(j);
            if pins.len() >= 2 {
                nets.push(pins.iter().map(|&local| batch[local as usize]).collect());
            }
        }
    }
    let costs = vec![1u64; nets.len()];
    Hypergraph::new(vertex_weights, nets, costs)
}

/// Equation 14: the minimum number of nets for the expected-connectivity
/// estimate to be within `theta` with probability at least `1 − delta`.
pub fn hoeffding_min_nets(p: usize, theta: f64, delta: f64) -> usize {
    assert!(p >= 2 && theta > 0.0 && delta > 0.0 && delta < 1.0);
    let pm1 = (p - 1) as f64;
    ((pm1 * pm1) / (2.0 * theta * theta) * (2.0 / delta).ln()).ceil() as usize
}

/// Algorithm 3 end to end: sample `batches` mini-batches, build the merged
/// stochastic hypergraph, and partition it with the multilevel hypergraph
/// partitioner.
pub fn partition(
    graph: &Graph,
    sampler: Sampler,
    batches: usize,
    p: usize,
    epsilon: f64,
    seed: u64,
) -> Partition {
    let sampled = sample_batches(graph, sampler, batches, seed);
    let h = build_stochastic_hypergraph(graph, &sampled);
    crate::hmultilevel::partition(&h, p, epsilon, seed ^ 0x5bd1_e995)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargcn_graph::gen::community;

    #[test]
    fn uniform_batches_have_requested_size() {
        let g = community::copurchase(500, 6.0, false, 1);
        let batches = sample_batches(&g, Sampler::UniformVertex { batch_size: 50 }, 4, 2);
        assert_eq!(batches.len(), 4);
        for b in &batches {
            assert_eq!(b.len(), 50);
            assert!(b.windows(2).all(|w| w[0] < w[1]), "batch not sorted/unique");
        }
    }

    #[test]
    fn neighbor_expansion_contains_seeds_and_neighbors() {
        let g = community::copurchase(300, 6.0, false, 3);
        let batches = sample_batches(
            &g,
            Sampler::NeighborExpansion {
                seeds: 10,
                batch_size: 60,
            },
            2,
            4,
        );
        for b in &batches {
            assert!(b.len() >= 10 && b.len() <= 60);
        }
    }

    #[test]
    fn stochastic_hypergraph_covers_full_vertex_set() {
        let g = community::copurchase(200, 6.0, false, 5);
        let batches = sample_batches(&g, Sampler::UniformVertex { batch_size: 40 }, 3, 6);
        let h = build_stochastic_hypergraph(&g, &batches);
        assert_eq!(h.n_vertices(), 200);
        assert!(h.n_nets() > 0);
        // Pins are global vertex ids.
        for net in 0..h.n_nets() {
            assert!(h.pins(net).iter().all(|&p| (p as usize) < 200));
        }
    }

    #[test]
    fn hoeffding_bound_matches_formula() {
        // p=512, θ=0.1, δ=0.5: (511²/0.02)·ln 4 ≈ 18.1M nets.
        let n = hoeffding_min_nets(512, 0.1, 0.5);
        let expect = (511.0f64 * 511.0 / 0.02 * (4.0f64).ln()).ceil() as usize;
        assert_eq!(n, expect);
        // Tighter θ needs more nets; larger δ needs fewer.
        assert!(hoeffding_min_nets(512, 0.05, 0.5) > n);
        assert!(hoeffding_min_nets(512, 0.1, 0.9) < n);
    }

    #[test]
    fn end_to_end_partition_is_valid() {
        let g = community::copurchase(300, 6.0, false, 7);
        let part = partition(&g, Sampler::UniformVertex { batch_size: 60 }, 5, 4, 0.1, 8);
        assert_eq!(part.p(), 4);
        assert_eq!(part.n(), 300);
        assert!(part.all_parts_nonempty());
    }

    #[test]
    fn deterministic() {
        let g = community::copurchase(200, 6.0, false, 9);
        let a = partition(&g, Sampler::UniformVertex { batch_size: 40 }, 3, 2, 0.1, 10);
        let b = partition(&g, Sampler::UniformVertex { batch_size: 40 }, 3, 2, 0.1, 10);
        assert_eq!(a, b);
    }
}
