//! Greedy graph-growing initial bisection.
//!
//! From a random seed vertex, side 0 grows by repeatedly absorbing the
//! frontier vertex most strongly connected to the grown region, until side
//! 0 reaches its target weight. Several seeds are tried and the best cut is
//! kept. Runs only at the coarsest level, so quality matters more than
//! speed.

use crate::graph_model::WeightedGraph;
use pargcn_util::rng::Rng;
use pargcn_util::rng::StdRng;
use std::collections::BinaryHeap;

/// Number of random seeds tried per bisection.
const TRIES: usize = 4;

/// Bisects `g`, targeting a side-0 weight fraction of `frac0`.
/// Returns side labels (0 or 1) per vertex.
pub fn greedy_bisect(g: &WeightedGraph, frac0: f64, rng: &mut StdRng) -> Vec<u8> {
    let n = g.n();
    if n == 0 {
        return Vec::new();
    }
    let total: u64 = g.vertex_weights().iter().sum();
    let target0 = (total as f64 * frac0).round() as u64;

    let mut best: Option<(u64, Vec<u8>)> = None;
    for _ in 0..TRIES {
        let side = grow_from(g, rng.gen_range(0..n), target0);
        let cut = g.edge_cut(&crate::Partition::new(
            side.iter().map(|&s| s as u32).collect(),
            2,
        ));
        if best.as_ref().is_none_or(|(bc, _)| cut < *bc) {
            best = Some((cut, side));
        }
    }
    best.unwrap().1
}

fn grow_from(g: &WeightedGraph, seed: usize, target0: u64) -> Vec<u8> {
    let n = g.n();
    let mut side = vec![1u8; n];
    let mut grown_weight = 0u64;
    // Max-heap of (connectivity-to-region, vertex); lazily updated.
    let mut heap: BinaryHeap<(u64, u32)> = BinaryHeap::new();
    let mut conn = vec![0u64; n];
    let mut next_seed = seed;
    let mut visited_seed = vec![false; n];

    loop {
        if side[next_seed] == 1 {
            heap.push((1, next_seed as u32));
            visited_seed[next_seed] = true;
        }
        while grown_weight < target0 {
            let Some((key, v)) = heap.pop() else { break };
            let v = v as usize;
            if side[v] == 0 {
                continue; // already grown
            }
            if key != conn[v].max(1) {
                continue; // stale entry; a fresher one exists
            }
            side[v] = 0;
            grown_weight += g.vertex_weights()[v];
            for (&u, &w) in g.neighbors(v).iter().zip(g.edge_weights_of(v)) {
                if side[u as usize] == 1 {
                    conn[u as usize] += w;
                    heap.push((conn[u as usize].max(1), u));
                }
            }
        }
        if grown_weight >= target0 {
            break;
        }
        // Disconnected graph: restart growth from an untouched vertex.
        match (0..n).find(|&v| side[v] == 1 && !visited_seed[v]) {
            Some(v) => next_seed = v,
            None => break,
        }
    }
    side
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargcn_util::rng::SeedableRng;

    fn path_graph(n: usize) -> WeightedGraph {
        let mut adj_ptr = vec![0usize];
        let mut adj = Vec::new();
        let mut ew = Vec::new();
        for v in 0..n {
            if v > 0 {
                adj.push((v - 1) as u32);
                ew.push(1);
            }
            if v + 1 < n {
                adj.push((v + 1) as u32);
                ew.push(1);
            }
            adj_ptr.push(adj.len());
        }
        WeightedGraph::new(vec![1; n], adj_ptr, adj, ew)
    }

    #[test]
    fn path_bisection_is_contiguous_and_cheap() {
        let g = path_graph(60);
        let mut rng = StdRng::seed_from_u64(4);
        let side = greedy_bisect(&g, 0.5, &mut rng);
        let part = crate::Partition::new(side.iter().map(|&s| s as u32).collect(), 2);
        // Greedy growing on a path yields one contiguous segment: cut ≤ 2.
        assert!(g.edge_cut(&part) <= 2, "cut {}", g.edge_cut(&part));
        let w = part.part_weights(&vec![1u64; 60]);
        assert!(w[0] >= 25 && w[0] <= 35, "weights {w:?}");
    }

    #[test]
    fn asymmetric_fraction_respected() {
        let g = path_graph(100);
        let mut rng = StdRng::seed_from_u64(5);
        let side = greedy_bisect(&g, 0.25, &mut rng);
        let w0: usize = side.iter().filter(|&&s| s == 0).count();
        assert!((20..=32).contains(&w0), "side-0 size {w0}");
    }

    #[test]
    fn disconnected_components_all_reachable() {
        // Two disjoint paths of 10; growth must jump components.
        let mut adj_ptr = vec![0usize];
        let mut adj = Vec::new();
        let mut ew = Vec::new();
        for v in 0..20u32 {
            let base = if v < 10 { 0 } else { 10 };
            if v > base {
                adj.push(v - 1);
                ew.push(1);
            }
            if v + 1 < base + 10 {
                adj.push(v + 1);
                ew.push(1);
            }
            adj_ptr.push(adj.len());
        }
        let g = WeightedGraph::new(vec![1; 20], adj_ptr, adj, ew);
        let mut rng = StdRng::seed_from_u64(6);
        let side = greedy_bisect(&g, 0.75, &mut rng);
        let w0 = side.iter().filter(|&&s| s == 0).count();
        assert!(w0 >= 13, "grew only {w0} of target 15");
    }
}
