//! Heavy-edge-matching coarsening.
//!
//! Vertices are visited in random order; each unmatched vertex merges with
//! its unmatched neighbor of largest edge weight. Merged vertices sum their
//! weights, parallel edges sum theirs, and self loops vanish — so the edge
//! cut of any coarse partition equals the cut of its projection, the
//! invariant multilevel partitioning rests on.

use crate::graph_model::WeightedGraph;
use pargcn_util::rng::SliceRandom;
use pargcn_util::rng::StdRng;

/// One level of heavy-edge matching. Returns the coarse graph and the
/// fine-vertex → coarse-vertex map.
pub fn coarsen_once(g: &WeightedGraph, rng: &mut StdRng) -> (WeightedGraph, Vec<u32>) {
    let n = g.n();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);

    let mut matched = vec![u32::MAX; n];
    let mut coarse_count = 0u32;
    for &v in &order {
        if matched[v as usize] != u32::MAX {
            continue;
        }
        // Heaviest unmatched neighbor.
        let mut best: Option<(u64, u32)> = None;
        for (&u, &w) in g
            .neighbors(v as usize)
            .iter()
            .zip(g.edge_weights_of(v as usize))
        {
            if u != v && matched[u as usize] == u32::MAX && best.is_none_or(|(bw, _)| w > bw) {
                best = Some((w, u));
            }
        }
        let c = coarse_count;
        coarse_count += 1;
        matched[v as usize] = c;
        if let Some((_, u)) = best {
            matched[u as usize] = c;
        }
    }

    // Build the coarse graph: aggregate vertex weights and edges.
    let nc = coarse_count as usize;
    let mut vertex_weights = vec![0u64; nc];
    for v in 0..n {
        vertex_weights[matched[v] as usize] += g.vertex_weights()[v];
    }
    // Collect coarse edges as (cu, cv, w) triplets and merge duplicates.
    let mut triplets: Vec<(u32, u32, u64)> = Vec::with_capacity(g.neighbors(0).len() * n / 2);
    for v in 0..n {
        let cv = matched[v];
        for (&u, &w) in g.neighbors(v).iter().zip(g.edge_weights_of(v)) {
            let cu = matched[u as usize];
            if cu != cv {
                triplets.push((cv, cu, w));
            }
        }
    }
    triplets.sort_unstable_by_key(|&(a, b, _)| ((a as u64) << 32) | b as u64);
    let mut row_of: Vec<u32> = Vec::with_capacity(triplets.len());
    let mut adj = Vec::with_capacity(triplets.len());
    let mut edge_weights = Vec::with_capacity(triplets.len());
    for (cv, cu, w) in triplets {
        if row_of.last() == Some(&cv) && adj.last() == Some(&cu) {
            *edge_weights.last_mut().unwrap() += w;
        } else {
            row_of.push(cv);
            adj.push(cu);
            edge_weights.push(w);
        }
    }
    let mut adj_ptr = vec![0usize; nc + 1];
    for &cv in &row_of {
        adj_ptr[cv as usize + 1] += 1;
    }
    for i in 0..nc {
        adj_ptr[i + 1] += adj_ptr[i];
    }
    (
        WeightedGraph::new(vertex_weights, adj_ptr, adj, edge_weights),
        matched,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Partition;
    use pargcn_util::rng::SeedableRng;

    fn path_graph(n: usize) -> WeightedGraph {
        let mut adj_ptr = vec![0usize];
        let mut adj = Vec::new();
        let mut ew = Vec::new();
        for v in 0..n {
            if v > 0 {
                adj.push((v - 1) as u32);
                ew.push(1);
            }
            if v + 1 < n {
                adj.push((v + 1) as u32);
                ew.push(1);
            }
            adj_ptr.push(adj.len());
        }
        WeightedGraph::new(vec![1; n], adj_ptr, adj, ew)
    }

    #[test]
    fn coarsening_shrinks_and_preserves_total_weight() {
        let g = path_graph(100);
        let mut rng = StdRng::seed_from_u64(0);
        let (coarse, map) = coarsen_once(&g, &mut rng);
        assert!(
            coarse.n() < 70,
            "matching too weak: {} vertices left",
            coarse.n()
        );
        assert_eq!(
            coarse.vertex_weights().iter().sum::<u64>(),
            g.vertex_weights().iter().sum::<u64>()
        );
        assert_eq!(map.len(), 100);
        assert!(map.iter().all(|&c| (c as usize) < coarse.n()));
    }

    #[test]
    fn cut_is_preserved_under_projection() {
        let g = path_graph(64);
        let mut rng = StdRng::seed_from_u64(1);
        let (coarse, map) = coarsen_once(&g, &mut rng);
        // Any coarse partition projects to a fine partition of equal cut.
        let coarse_part = Partition::new((0..coarse.n()).map(|v| (v % 2) as u32).collect(), 2);
        let fine_part = Partition::new(
            (0..g.n())
                .map(|v| coarse_part.part_of(map[v] as usize))
                .collect(),
            2,
        );
        assert_eq!(coarse.edge_cut(&coarse_part), g.edge_cut(&fine_part));
    }

    #[test]
    fn coarse_graph_has_no_self_loops() {
        let g = path_graph(40);
        let mut rng = StdRng::seed_from_u64(2);
        let (coarse, _) = coarsen_once(&g, &mut rng);
        for v in 0..coarse.n() {
            assert!(!coarse.neighbors(v).contains(&(v as u32)));
        }
    }

    #[test]
    fn parallel_edges_merge_with_summed_weight() {
        // Square 0-1-2-3-0: matching (0,1) and (2,3) gives a 2-vertex coarse
        // graph with a single edge of weight 2.
        let mut adj_ptr = vec![0usize];
        let mut adj = Vec::new();
        let mut ew = Vec::new();
        let nbrs = [[1u32, 3], [0, 2], [1, 3], [2, 0]];
        for vn in &nbrs {
            for &u in vn {
                adj.push(u);
                ew.push(1);
            }
            adj_ptr.push(adj.len());
        }
        let g = WeightedGraph::new(vec![1; 4], adj_ptr, adj, ew);
        // Try several seeds; whichever matching occurs, the coarse graph's
        // total edge weight halves to 2 (cut edges of the square).
        let mut rng = StdRng::seed_from_u64(3);
        let (coarse, _) = coarsen_once(&g, &mut rng);
        if coarse.n() == 2 {
            let w: u64 = coarse.edge_weights_of(0).iter().sum();
            assert_eq!(w, 2);
        }
    }
}
