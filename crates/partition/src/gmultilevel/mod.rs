//! Multilevel graph partitioner (the GP model's engine — a from-scratch
//! stand-in for METIS, see DESIGN.md §1).
//!
//! k-way partitioning is done by recursive bisection; each bisection runs
//! the classic multilevel pipeline: heavy-edge-matching coarsening
//! ([`coarsen`]), greedy-growing initial bisection ([`initial`]), and
//! Fiduccia–Mattheyses boundary refinement projected up through the levels
//! ([`fm`]).

pub mod coarsen;
pub mod fm;
pub mod initial;
pub mod kway;

use crate::graph_model::WeightedGraph;
use crate::Partition;
use pargcn_util::rng::SeedableRng;
use pargcn_util::rng::StdRng;

/// Ablation knobs for the multilevel pipeline (used by the `ablations`
/// bench to quantify what coarsening and FM refinement each contribute).
#[derive(Clone, Copy, Debug)]
pub struct Options {
    /// Run the coarsening hierarchy (false = flat initial + FM only).
    pub coarsen: bool,
    /// FM passes at the coarsest level (0 disables refinement there).
    pub fm_passes_coarsest: usize,
    /// FM passes at each uncoarsening level.
    pub fm_passes_uncoarsen: usize,
    /// Greedy direct k-way refinement passes after recursive bisection
    /// (0 disables; see [`kway`]).
    pub kway_passes: usize,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            coarsen: true,
            fm_passes_coarsest: 8,
            fm_passes_uncoarsen: 4,
            kway_passes: 2,
        }
    }
}

/// Partitions `g` into `p` parts with maximum imbalance ratio `epsilon`.
///
/// `epsilon` is enforced per bisection level, so the end-to-end imbalance
/// can slightly exceed it for large `p` — the same caveat applies to
/// recursive-bisection mode in METIS/PaToH.
pub fn partition(g: &WeightedGraph, p: usize, epsilon: f64, seed: u64) -> Partition {
    partition_with(g, p, epsilon, seed, Options::default())
}

/// As [`partition`] with explicit pipeline [`Options`].
pub fn partition_with(
    g: &WeightedGraph,
    p: usize,
    epsilon: f64,
    seed: u64,
    opts: Options,
) -> Partition {
    assert!(p >= 1, "need at least one part");
    let n = g.n();
    assert!(p <= n, "more parts than vertices");
    let mut assignment = vec![0u32; n];
    let mut rng = StdRng::seed_from_u64(seed);
    let all: Vec<u32> = (0..n as u32).collect();
    recurse(g, &all, 0, p, epsilon, opts, &mut rng, &mut assignment);
    let mut part = Partition::new(assignment, p);
    if opts.kway_passes > 0 && p > 1 {
        kway::refine(g, &mut part, epsilon.max(0.03), opts.kway_passes);
    }
    part
}

/// Recursively bisects the vertex subset `vertices` of `g` into parts
/// `[part_offset, part_offset + k)`.
// The recursion state is inherently eight-wide; bundling it into a struct
// would only rename the problem.
#[allow(clippy::too_many_arguments)]
fn recurse(
    g: &WeightedGraph,
    vertices: &[u32],
    part_offset: u32,
    k: usize,
    epsilon: f64,
    opts: Options,
    rng: &mut StdRng,
    assignment: &mut [u32],
) {
    if k == 1 {
        for &v in vertices {
            assignment[v as usize] = part_offset;
        }
        return;
    }
    let k0 = k / 2;
    let k1 = k - k0;
    let frac0 = k0 as f64 / k as f64;

    let sub = extract_subgraph(g, vertices);
    let side = bisect(&sub, frac0, epsilon, opts, rng);

    let mut left = Vec::new();
    let mut right = Vec::new();
    for (local, &v) in vertices.iter().enumerate() {
        if side[local] == 0 {
            left.push(v);
        } else {
            right.push(v);
        }
    }
    // Degenerate guard: greedy growing can in principle leave a side empty
    // on pathological weight distributions; fall back to an even split.
    if left.is_empty() || right.is_empty() {
        left.clear();
        right.clear();
        for (i, &v) in vertices.iter().enumerate() {
            if i * k < vertices.len() * k0 {
                left.push(v);
            } else {
                right.push(v);
            }
        }
    }
    recurse(g, &left, part_offset, k0, epsilon, opts, rng, assignment);
    recurse(
        g,
        &right,
        part_offset + k0 as u32,
        k1,
        epsilon,
        opts,
        rng,
        assignment,
    );
}

/// One multilevel bisection of `g`, returning side labels (0/1) with target
/// side-0 weight fraction `frac0`.
fn bisect(g: &WeightedGraph, frac0: f64, epsilon: f64, opts: Options, rng: &mut StdRng) -> Vec<u8> {
    // Coarsening phase.
    let mut levels: Vec<(WeightedGraph, Vec<u32>)> = Vec::new(); // (coarse graph, fine→coarse map)
    let mut current = g.clone();
    while opts.coarsen && current.n() > 96 {
        let (coarse, map) = coarsen::coarsen_once(&current, rng);
        // Stop when matching stalls (heavy-edge matching finds few pairs on
        // star-like graphs).
        if coarse.n() as f64 > current.n() as f64 * 0.95 {
            break;
        }
        levels.push((current, map));
        current = coarse;
    }

    // Initial bisection at the coarsest level.
    let mut side = initial::greedy_bisect(&current, frac0, rng);
    fm::refine(&current, &mut side, frac0, epsilon, opts.fm_passes_coarsest);

    // Uncoarsen with refinement at every level.
    while let Some((fine, map)) = levels.pop() {
        let mut fine_side = vec![0u8; fine.n()];
        for v in 0..fine.n() {
            fine_side[v] = side[map[v] as usize];
        }
        side = fine_side;
        fm::refine(&fine, &mut side, frac0, epsilon, opts.fm_passes_uncoarsen);
    }
    side
}

/// Extracts the vertex-induced subgraph on `vertices`, renumbering to local
/// ids and keeping only internal edges.
pub(crate) fn extract_subgraph(g: &WeightedGraph, vertices: &[u32]) -> WeightedGraph {
    let mut map = vec![u32::MAX; g.n()];
    for (local, &v) in vertices.iter().enumerate() {
        map[v as usize] = local as u32;
    }
    let mut vertex_weights = Vec::with_capacity(vertices.len());
    let mut adj_ptr = Vec::with_capacity(vertices.len() + 1);
    adj_ptr.push(0usize);
    let mut adj = Vec::new();
    let mut edge_weights = Vec::new();
    for &v in vertices {
        vertex_weights.push(g.vertex_weights()[v as usize]);
        for (&u, &w) in g
            .neighbors(v as usize)
            .iter()
            .zip(g.edge_weights_of(v as usize))
        {
            let m = map[u as usize];
            if m != u32::MAX {
                adj.push(m);
                edge_weights.push(w);
            }
        }
        adj_ptr.push(adj.len());
    }
    WeightedGraph::new(vertex_weights, adj_ptr, adj, edge_weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargcn_graph::gen::grid;

    fn grid_model(n: usize, seed: u64) -> WeightedGraph {
        let g = grid::road_network(n, seed);
        WeightedGraph::graph_model(&g.normalized_adjacency())
    }

    #[test]
    fn produces_valid_balanced_partition() {
        let g = grid_model(900, 1);
        let part = partition(&g, 4, 0.05, 7);
        assert_eq!(part.p(), 4);
        assert!(part.all_parts_nonempty());
        assert!(
            part.imbalance(g.vertex_weights()) < 0.25,
            "imbalance {}",
            part.imbalance(g.vertex_weights())
        );
    }

    #[test]
    fn beats_random_on_a_grid() {
        let g = grid_model(1600, 2);
        let part = partition(&g, 8, 0.05, 3);
        let rand_part = crate::random::partition(g.n(), 8, 3);
        let cut = g.edge_cut(&part);
        let rand_cut = g.edge_cut(&rand_part);
        assert!(
            (cut as f64) < rand_cut as f64 * 0.4,
            "multilevel cut {cut} not well below random cut {rand_cut}"
        );
    }

    #[test]
    fn single_part_is_trivial() {
        let g = grid_model(100, 3);
        let part = partition(&g, 1, 0.05, 0);
        assert!(part.assignment().iter().all(|&a| a == 0));
    }

    #[test]
    fn handles_non_power_of_two_parts() {
        let g = grid_model(900, 4);
        let part = partition(&g, 5, 0.1, 1);
        assert!(part.all_parts_nonempty());
        assert!(part.imbalance(g.vertex_weights()) < 0.5);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = grid_model(400, 5);
        assert_eq!(partition(&g, 4, 0.05, 9), partition(&g, 4, 0.05, 9));
    }

    #[test]
    fn disconnected_graph_is_fine() {
        // Two disjoint triangles plus isolated vertices.
        let vw = vec![1u64; 8];
        let mut adj_ptr = vec![0usize];
        let mut adj = Vec::new();
        let mut ew = Vec::new();
        let tri = [[1u32, 2], [0, 2], [0, 1], [4, 5], [3, 5], [3, 4]];
        for v in 0..8usize {
            if let Some(tv) = tri.get(v) {
                for &u in tv {
                    adj.push(u);
                    ew.push(1);
                }
            }
            adj_ptr.push(adj.len());
        }
        let g = WeightedGraph::new(vw, adj_ptr, adj, ew);
        let part = partition(&g, 2, 0.1, 0);
        assert!(part.all_parts_nonempty());
    }
}
