//! Direct k-way refinement on the edge-cut metric — the graph-partitioner
//! counterpart of `hmultilevel::kway` (METIS itself refines k-way
//! directly, so the GP engine should too).
//!
//! Greedy sweeps: each vertex may move to the neighboring part with the
//! highest positive gain, subject to the balance cap. Gain of moving `v`
//! from `a` to `b` is `w(v→b) − w(v→a)` where `w(v→x)` sums the edge
//! weights from `v` into part `x` — computed per vertex with a scratch
//! accumulation over its adjacency.

use crate::graph_model::WeightedGraph;
use crate::Partition;

/// Vertices with more neighbors than this are skipped (hub moves are
/// rarely profitable and dominate runtime on skewed graphs).
const DEGREE_CAP: usize = 512;

/// Greedy k-way refinement, `passes` sweeps. Returns the total edge-cut
/// improvement; the partition is modified in place and never worsened.
pub fn refine(g: &WeightedGraph, part: &mut Partition, epsilon: f64, passes: usize) -> u64 {
    let n = g.n();
    let p = part.p();
    if p < 2 || n == 0 {
        return 0;
    }
    let mut assignment: Vec<u32> = part.assignment().to_vec();
    let weights = g.vertex_weights();
    let total: u64 = weights.iter().sum();
    let cap = ((total as f64 / p as f64) * (1.0 + epsilon)).ceil() as u64;
    let mut part_weight = vec![0u64; p];
    for v in 0..n {
        part_weight[assignment[v] as usize] += weights[v];
    }

    // Scratch: connectivity of the current vertex to each touched part.
    let mut conn = vec![0i64; p];
    let mut touched: Vec<u32> = Vec::new();
    let mut total_gain = 0u64;

    for _pass in 0..passes {
        let mut pass_gain = 0u64;
        for v in 0..n {
            if g.degree(v) > DEGREE_CAP || g.degree(v) == 0 {
                continue;
            }
            let from = assignment[v];
            touched.clear();
            for (&u, &w) in g.neighbors(v).iter().zip(g.edge_weights_of(v)) {
                let q = assignment[u as usize];
                if conn[q as usize] == 0 {
                    touched.push(q);
                }
                conn[q as usize] += w as i64;
            }
            let internal = conn[from as usize];
            let mut best: Option<(i64, u32)> = None;
            for &q in &touched {
                if q == from || part_weight[q as usize] + weights[v] > cap {
                    continue;
                }
                let gain = conn[q as usize] - internal;
                if gain > 0 && best.is_none_or(|(bg, _)| gain > bg) {
                    best = Some((gain, q));
                }
            }
            for &q in &touched {
                conn[q as usize] = 0;
            }
            if let Some((gain, to)) = best {
                part_weight[from as usize] -= weights[v];
                part_weight[to as usize] += weights[v];
                assignment[v] = to;
                pass_gain += gain as u64;
            }
        }
        total_gain += pass_gain;
        if pass_gain == 0 {
            break;
        }
    }
    *part = Partition::new(assignment, p);
    total_gain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph_model::WeightedGraph;
    use crate::{gmultilevel, random};
    use pargcn_graph::gen::{community, grid};

    fn model(g: &pargcn_graph::Graph) -> WeightedGraph {
        WeightedGraph::graph_model(&g.normalized_adjacency())
    }

    #[test]
    fn never_worsens_and_reports_true_gain() {
        let g = community::copurchase(1000, 6.0, false, 1);
        let m = model(&g);
        let mut part = random::partition(m.n(), 8, 2);
        let before = m.edge_cut(&part);
        let gain = refine(&m, &mut part, 0.10, 3);
        let after = m.edge_cut(&part);
        assert_eq!(before - after, gain);
        assert!(gain > 0);
    }

    #[test]
    fn improves_recursive_bisection_output() {
        let g = grid::road_network(1500, 3);
        let m = model(&g);
        let mut part = gmultilevel::partition(&m, 16, 0.05, 1);
        let before = m.edge_cut(&part);
        let gain = refine(&m, &mut part, 0.10, 2);
        assert_eq!(before - gain, m.edge_cut(&part));
    }

    #[test]
    fn respects_balance() {
        let g = community::copurchase(800, 6.0, false, 5);
        let m = model(&g);
        let mut part = random::partition(m.n(), 6, 3);
        refine(&m, &mut part, 0.10, 4);
        assert!(part.imbalance(m.vertex_weights()) < 0.5);
        assert!(part.all_parts_nonempty());
    }

    #[test]
    fn noop_on_single_part() {
        let g = community::copurchase(100, 5.0, false, 7);
        let m = model(&g);
        let mut part = Partition::trivial(100);
        assert_eq!(refine(&m, &mut part, 0.1, 2), 0);
    }
}
