//! Fiduccia–Mattheyses bisection refinement for graphs.
//!
//! Classic pass structure: within a pass every vertex may move once; moves
//! are chosen best-gain-first subject to the balance constraint, applied
//! tentatively, and at the end of the pass the partition rolls back to the
//! best prefix seen. Gains are tracked with a lazy max-heap: popped entries
//! whose key disagrees with the current exact gain are re-pushed, which
//! avoids the classical bucket structure while keeping correctness obvious.

use crate::graph_model::WeightedGraph;
use std::collections::BinaryHeap;

/// Vertices with more neighbors than this do not propagate gain updates
/// eagerly (see the comment at the update site).
const UPDATE_DEGREE_CAP: usize = 128;

/// Per-pass bound on lazy-heap stale-key corrections per vertex.
const MAX_STALE_CORRECTIONS: u8 = 6;

/// Refines the side labels in place. `frac0` is the target side-0 weight
/// fraction, `epsilon` the allowed imbalance over the target, `max_passes`
/// bounds the number of full FM passes.
pub fn refine(g: &WeightedGraph, side: &mut [u8], frac0: f64, epsilon: f64, max_passes: usize) {
    let n = g.n();
    if n < 2 {
        return;
    }
    let total: u64 = g.vertex_weights().iter().sum();
    let cap0 = ((total as f64) * frac0 * (1.0 + epsilon)).ceil() as u64;
    let cap1 = ((total as f64) * (1.0 - frac0) * (1.0 + epsilon)).ceil() as u64;

    let mut side_weight = [0u64; 2];
    for v in 0..n {
        side_weight[side[v] as usize] += g.vertex_weights()[v];
    }

    for _pass in 0..max_passes {
        let mut locked = vec![false; n];
        // See the hypergraph FM: bound stale-key churn on hub vertices.
        let mut stale_corrections = vec![0u8; n];
        let mut heap: BinaryHeap<(i64, u32)> = BinaryHeap::new();
        for v in 0..n {
            heap.push((gain(g, side, v), v as u32));
        }

        // Tentative move log for rollback: (vertex, cumulative gain after move).
        let mut log: Vec<u32> = Vec::new();
        let mut cumulative = 0i64;
        let mut best_cumulative = 0i64;
        let mut best_len = 0usize;

        while let Some((key, v)) = heap.pop() {
            let v = v as usize;
            if locked[v] {
                continue;
            }
            let exact = gain(g, side, v);
            if exact != key {
                stale_corrections[v] = stale_corrections[v].saturating_add(1);
                if stale_corrections[v] <= MAX_STALE_CORRECTIONS {
                    heap.push((exact, v as u32));
                }
                continue;
            }
            // Balance feasibility of moving v to the other side.
            let from = side[v] as usize;
            let to = 1 - from;
            let w = g.vertex_weights()[v];
            let new_to = side_weight[to] + w;
            let cap_to = if to == 0 { cap0 } else { cap1 };
            if new_to > cap_to {
                // Infeasible now; skip (do not re-push — weights only grow
                // toward `to` if other moves go there, and a later pass
                // retries every vertex anyway).
                continue;
            }
            side[v] = to as u8;
            side_weight[from] -= w;
            side_weight[to] += w;
            locked[v] = true;
            cumulative += exact;
            log.push(v as u32);
            if cumulative > best_cumulative {
                best_cumulative = cumulative;
                best_len = log.len();
            }
            // Neighbors' gains changed; push fresh entries. Hubs skip the
            // eager propagation (quadratic on power-law graphs) — the
            // lazy-exact pop re-checks every gain before applying, so this
            // only delays when a neighbor gets re-examined.
            if g.degree(v) <= UPDATE_DEGREE_CAP {
                for &u in g.neighbors(v) {
                    // As in the hypergraph FM: no eager updates for hub
                    // neighbors, whose gain recompute is itself O(degree).
                    if !locked[u as usize] && g.degree(u as usize) <= UPDATE_DEGREE_CAP {
                        heap.push((gain(g, side, u as usize), u));
                    }
                }
            }
        }

        // Roll back to the best prefix.
        for &v in log.iter().skip(best_len).rev() {
            let v = v as usize;
            let from = side[v] as usize;
            let to = 1 - from;
            let w = g.vertex_weights()[v];
            side[v] = to as u8;
            side_weight[from] -= w;
            side_weight[to] += w;
        }
        if best_cumulative <= 0 {
            break;
        }
    }
}

/// Cut reduction achieved by moving `v` to the other side:
/// external minus internal connectivity.
#[inline]
fn gain(g: &WeightedGraph, side: &[u8], v: usize) -> i64 {
    let s = side[v];
    let mut ext = 0i64;
    let mut int = 0i64;
    for (&u, &w) in g.neighbors(v).iter().zip(g.edge_weights_of(v)) {
        if side[u as usize] == s {
            int += w as i64;
        } else {
            ext += w as i64;
        }
    }
    ext - int
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Partition;

    fn two_cliques() -> WeightedGraph {
        // Cliques {0..4} and {5..9} joined by one edge 4-5.
        let n = 10;
        let mut adj_ptr = vec![0usize];
        let mut adj = Vec::new();
        let mut ew = Vec::new();
        for v in 0..n as u32 {
            let (lo, hi) = if v < 5 { (0, 5) } else { (5, 10) };
            for u in lo..hi {
                if u != v {
                    adj.push(u);
                    ew.push(1);
                }
            }
            if v == 4 {
                adj.push(5);
                ew.push(1);
            }
            if v == 5 {
                adj.push(4);
                ew.push(1);
            }
            adj_ptr.push(adj.len());
        }
        let mut sorted_adj = adj.clone();
        // Keep adjacency sorted per row for readability (not required).
        for v in 0..n {
            let range = adj_ptr[v]..adj_ptr[v + 1];
            let mut pairs: Vec<(u32, u64)> = adj[range.clone()]
                .iter()
                .copied()
                .zip(ew[range.clone()].iter().copied())
                .collect();
            pairs.sort_unstable();
            for (k, (u, w)) in pairs.into_iter().enumerate() {
                sorted_adj[adj_ptr[v] + k] = u;
                ew[adj_ptr[v] + k] = w;
            }
        }
        WeightedGraph::new(vec![1; n], adj_ptr, sorted_adj, ew)
    }

    #[test]
    fn recovers_natural_clusters_from_bad_start() {
        let g = two_cliques();
        // Interleaved start: terrible cut.
        let mut side: Vec<u8> = (0..10).map(|v| (v % 2) as u8).collect();
        refine(&g, &mut side, 0.5, 0.05, 10);
        let part = Partition::new(side.iter().map(|&s| s as u32).collect(), 2);
        assert_eq!(g.edge_cut(&part), 1, "FM should find the single bridge cut");
    }

    #[test]
    fn respects_balance_cap() {
        let g = two_cliques();
        let mut side: Vec<u8> = (0..10).map(|v| if v < 5 { 0 } else { 1 }).collect();
        refine(&g, &mut side, 0.5, 0.05, 10);
        let w0 = side.iter().filter(|&&s| s == 0).count();
        assert!((4..=6).contains(&w0), "balance violated: {w0}");
    }

    #[test]
    fn never_worsens_the_cut() {
        let g = two_cliques();
        let mut side: Vec<u8> = vec![0, 1, 0, 1, 0, 1, 0, 1, 0, 1];
        let before = g.edge_cut(&Partition::new(side.iter().map(|&s| s as u32).collect(), 2));
        refine(&g, &mut side, 0.5, 0.1, 3);
        let after = g.edge_cut(&Partition::new(side.iter().map(|&s| s as u32).collect(), 2));
        assert!(after <= before, "cut worsened {before} → {after}");
    }

    #[test]
    fn gain_formula() {
        let g = two_cliques();
        let side: Vec<u8> = (0..10).map(|v| if v < 5 { 0 } else { 1 }).collect();
        // Vertex 0: 4 internal edges, 0 external → gain −4.
        assert_eq!(gain(&g, &side, 0), -4);
        // Vertex 4: 4 internal + 1 external → gain −3.
        assert_eq!(gain(&g, &side, 4), -3);
    }
}
