//! Random partitioning (RP) — the paper's baseline, which "evenly splits
//! the adjacency matrix by assigning rows to processors uniformly at random,
//! and is a competitive method for balancing computational load and
//! communications" (§5).

use crate::Partition;
use pargcn_util::rng::SeedableRng;
use pargcn_util::rng::SliceRandom;
use pargcn_util::rng::StdRng;

/// Assigns vertices to `p` parts by shuffling and dealing equally sized
/// chunks, so part *cardinalities* differ by at most one (the paper's RP
/// balances row counts; on power-law graphs per-part *work* still varies,
/// which is exactly the effect Table 2 shows).
pub fn partition(n: usize, p: usize, seed: u64) -> Partition {
    assert!(p >= 1 && p <= n, "need 1 <= p <= n");
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed));
    let mut assignment = vec![0u32; n];
    for (rank, &v) in order.iter().enumerate() {
        assignment[v as usize] = (rank % p) as u32;
    }
    Partition::new(assignment, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities_differ_by_at_most_one() {
        let part = partition(103, 8, 3);
        let sizes: Vec<usize> = part.members().iter().map(|m| m.len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "sizes {sizes:?}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(partition(50, 4, 7), partition(50, 4, 7));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(partition(50, 4, 1), partition(50, 4, 2));
    }

    #[test]
    fn single_part() {
        let part = partition(10, 1, 0);
        assert!(part.assignment().iter().all(|&a| a == 0));
    }
}
