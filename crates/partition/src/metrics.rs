//! Exact communication metrics of the parallel SpMM under a row partition —
//! the quantities Table 2 of the paper reports (per-processor send volume
//! and message counts, average and maximum).
//!
//! For each column `j` of the partitioned matrix, the owner of row `j`
//! sends row `H(j,:)` once to every *other* part that has a nonzero in
//! column `j` (Eq. 8–9 of the paper). These counts are ground truth: the
//! distributed runtime's instrumented counters must agree with them exactly
//! (tested in `pargcn-core`).

use crate::Partition;
use pargcn_matrix::Csr;

/// Per-processor communication statistics for one parallel SpMM sweep
/// (feedforward direction; backpropagation is identical by symmetry of the
/// comm plan).
#[derive(Clone, Debug, PartialEq)]
pub struct CommStats {
    /// Rows sent by each processor (volume in units of matrix rows).
    pub sent_rows: Vec<u64>,
    /// Messages sent by each processor (distinct destination count).
    pub sent_messages: Vec<u64>,
    /// Total volume over all processors.
    pub total_rows: u64,
    /// Total messages over all processors.
    pub total_messages: u64,
}

impl CommStats {
    pub fn avg_rows(&self) -> f64 {
        self.total_rows as f64 / self.sent_rows.len() as f64
    }

    pub fn max_rows(&self) -> u64 {
        self.sent_rows.iter().copied().max().unwrap_or(0)
    }

    pub fn avg_messages(&self) -> f64 {
        self.total_messages as f64 / self.sent_messages.len() as f64
    }

    pub fn max_messages(&self) -> u64 {
        self.sent_messages.iter().copied().max().unwrap_or(0)
    }
}

/// Computes the exact per-processor send volume and message counts of the
/// point-to-point SpMM `A · H` under the row partition `part`.
pub fn spmm_comm_stats(a: &Csr, part: &Partition) -> CommStats {
    assert_eq!(a.n_rows(), a.n_cols(), "needs a square matrix");
    assert_eq!(a.n_rows(), part.n(), "partition size mismatch");
    let p = part.p();
    let at = a.transpose();

    let mut sent_rows = vec![0u64; p];
    // pair_flags[m * p + n] = true when m sends at least one row to n.
    let mut pair_flags = vec![false; p * p];
    let mut mark = vec![u32::MAX; p];
    for j in 0..a.n_rows() {
        let owner = part.part_of(j) as usize;
        // Parts needing column j = parts owning any row with A(row, j) ≠ 0.
        for &row in at.row_indices(j) {
            let pr = part.part_of(row as usize) as usize;
            if pr != owner && mark[pr] != j as u32 {
                mark[pr] = j as u32;
                sent_rows[owner] += 1;
                pair_flags[owner * p + pr] = true;
            }
        }
    }
    let mut sent_messages = vec![0u64; p];
    for m in 0..p {
        sent_messages[m] = pair_flags[m * p..(m + 1) * p]
            .iter()
            .filter(|&&f| f)
            .count() as u64;
    }
    let total_rows = sent_rows.iter().sum();
    let total_messages = sent_messages.iter().sum();
    CommStats {
        sent_rows,
        sent_messages,
        total_rows,
        total_messages,
    }
}

/// Per-processor computational load: nonzeros of the locally-owned rows
/// (proportional to the SpMM multiply–add count of the rank's tasks).
pub fn compute_loads(a: &Csr, part: &Partition) -> Vec<u64> {
    let mut loads = vec![0u64; part.p()];
    for i in 0..a.n_rows() {
        loads[part.part_of(i) as usize] += a.row_nnz(i) as u64;
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypergraph::Hypergraph;

    fn sample_matrix() -> Csr {
        // 4 vertices, self loops + a few cross edges.
        Csr::from_coo(
            4,
            4,
            vec![
                (0, 0, 1.0),
                (1, 1, 1.0),
                (2, 2, 1.0),
                (3, 3, 1.0),
                (1, 0, 1.0), // row 1 needs col 0
                (2, 0, 1.0), // row 2 needs col 0
                (3, 2, 1.0), // row 3 needs col 2
            ],
        )
    }

    #[test]
    fn volume_counts_each_remote_part_once() {
        let a = sample_matrix();
        // Parts {0}, {1,2}, {3}.
        let part = Partition::new(vec![0, 1, 1, 2], 3);
        let stats = spmm_comm_stats(&a, &part);
        // Col 0 needed by rows 1,2 (both part 1): one send from part 0.
        // Col 2 needed by row 3 (part 2): one send from part 1.
        assert_eq!(stats.sent_rows, vec![1, 1, 0]);
        assert_eq!(stats.sent_messages, vec![1, 1, 0]);
        assert_eq!(stats.total_rows, 2);
    }

    #[test]
    fn trivial_partition_has_no_comm() {
        let a = sample_matrix();
        let stats = spmm_comm_stats(&a, &Partition::trivial(4));
        assert_eq!(stats.total_rows, 0);
        assert_eq!(stats.total_messages, 0);
    }

    #[test]
    fn volume_equals_hypergraph_connectivity_cut() {
        // The §4.3.2 claim, on a fixed example.
        let a = sample_matrix();
        let part = Partition::new(vec![0, 1, 2, 0], 3);
        let h = Hypergraph::column_net_model(&a);
        assert_eq!(
            spmm_comm_stats(&a, &part).total_rows,
            h.connectivity_cut(&part)
        );
    }

    #[test]
    fn compute_loads_sum_to_nnz() {
        let a = sample_matrix();
        let part = Partition::new(vec![0, 1, 1, 2], 3);
        let loads = compute_loads(&a, &part);
        assert_eq!(loads.iter().sum::<u64>(), a.nnz() as u64);
        assert_eq!(loads, vec![1, 4, 2]);
    }

    #[test]
    fn message_count_bounded_by_p_minus_one() {
        let a = sample_matrix();
        let part = Partition::new(vec![0, 1, 2, 3], 4);
        let stats = spmm_comm_stats(&a, &part);
        assert!(stats.sent_messages.iter().all(|&m| m <= 3));
    }
}
