//! Sparse-matrix partitioning models for distributed GCN training
//! (§4.3 of the paper).
//!
//! Four partitioning strategies decide the 1-D row distribution of the
//! adjacency/feature/gradient matrices:
//!
//! * **RP** — [`random`]: uniform random rows, the balance baseline;
//! * **GP** — [`gmultilevel`] over the [`graph_model::WeightedGraph`]
//!   §4.3.1 model (the METIS/DistDGL approach, which *overestimates*
//!   communication volume);
//! * **HP** — [`hmultilevel`] over the [`hypergraph::Hypergraph`]
//!   column-net model of §4.3.2, whose connectivity−1 cut equals the exact
//!   point-to-point communication volume;
//! * **SHP** — [`stochastic`]: the §4.3.3 stochastic hypergraph built from
//!   sampled mini-batches, minimizing *expected* mini-batch volume.
//!
//! [`metrics`] computes the exact per-processor send volumes and message
//! counts of the parallel SpMM under any partition — the ground truth that
//! Table 2 reports and that the models above approximate or capture.
//!
//! ```
//! use pargcn_graph::gen::grid;
//! use pargcn_partition::{metrics, partition_rows, Hypergraph, Method};
//!
//! let g = grid::road_network(400, 1);
//! let a = g.normalized_adjacency();
//! let part = partition_rows(&g, &a, Method::Hp, 4, 0.05, 1);
//!
//! // The paper's §4.3.2 claim: the column-net hypergraph's connectivity−1
//! // cut equals the exact point-to-point communication volume.
//! let h = Hypergraph::column_net_model(&a);
//! let stats = metrics::spmm_comm_stats(&a, &part);
//! assert_eq!(h.connectivity_cut(&part), stats.total_rows);
//! ```

pub mod gmultilevel;
pub mod graph_model;
pub mod hmultilevel;
pub mod hypergraph;
pub mod metrics;
pub mod partition;
pub mod random;
pub mod rcm;
pub mod stochastic;

pub use hypergraph::Hypergraph;
pub use partition::Partition;

use pargcn_graph::Graph;
use pargcn_matrix::Csr;

/// Partitioning method selector, mirroring the paper's abbreviations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Method {
    /// Random partitioning.
    Rp,
    /// Graph partitioning (METIS-style over the §4.3.1 model).
    Gp,
    /// Hypergraph partitioning (PaToH-style over the §4.3.2 column-net model).
    Hp,
    /// Stochastic hypergraph partitioning (§4.3.3) with the given sampler
    /// and number of sampled batches.
    Shp {
        sampler: stochastic::Sampler,
        batches: usize,
    },
    /// Block partitioning: RCM ordering + contiguous weight-balanced blocks
    /// (the cheap renumber-and-chunk alternative; see [`rcm`]).
    Bp,
}

impl Method {
    pub fn name(&self) -> &'static str {
        match self {
            Method::Rp => "RP",
            Method::Gp => "GP",
            Method::Hp => "HP",
            Method::Shp { .. } => "SHP",
            Method::Bp => "BP",
        }
    }
}

/// Default imbalance ratio used throughout the paper's experiments
/// ("we set the maximum imbalance ratio as ε = 0.01", §5).
pub const DEFAULT_EPSILON: f64 = 0.01;

/// Partitions the rows of the normalized adjacency `a` of `graph` into `p`
/// parts with the selected method.
///
/// `a` must be the matrix the training run will actually use (typically
/// `graph.normalized_adjacency()`); the GP/HP models derive vertex weights
/// and nets from its sparsity pattern.
pub fn partition_rows(
    graph: &Graph,
    a: &Csr,
    method: Method,
    p: usize,
    epsilon: f64,
    seed: u64,
) -> Partition {
    assert_eq!(a.n_rows(), graph.n(), "matrix/graph size mismatch");
    match method {
        Method::Rp => random::partition(a.n_rows(), p, seed),
        Method::Gp => {
            let model = graph_model::WeightedGraph::graph_model(a);
            gmultilevel::partition(&model, p, epsilon, seed)
        }
        Method::Hp => {
            let model = Hypergraph::column_net_model(a);
            hmultilevel::partition(&model, p, epsilon, seed)
        }
        Method::Shp { sampler, batches } => {
            stochastic::partition(graph, sampler, batches, p, epsilon, seed)
        }
        Method::Bp => rcm::partition(a, p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargcn_graph::gen::grid;

    #[test]
    fn all_methods_produce_valid_partitions() {
        let g = grid::road_network(400, 1);
        let a = g.normalized_adjacency();
        for method in [
            Method::Rp,
            Method::Gp,
            Method::Hp,
            Method::Shp {
                sampler: stochastic::Sampler::UniformVertex { batch_size: 80 },
                batches: 3,
            },
        ] {
            let part = partition_rows(&g, &a, method, 4, 0.05, 2);
            assert_eq!(part.n(), 400, "{}", method.name());
            assert_eq!(part.p(), 4, "{}", method.name());
            assert!(part.all_parts_nonempty(), "{}", method.name());
        }
    }

    #[test]
    fn hp_volume_at_most_gp_volume_on_structured_graph() {
        // The paper's Table 2 trend: HP ≤ GP in total volume (not a theorem
        // for every instance, but should hold on a locality-rich road grid).
        let g = grid::road_network(900, 3);
        let a = g.normalized_adjacency();
        let hp = partition_rows(&g, &a, Method::Hp, 8, 0.05, 4);
        let gp = partition_rows(&g, &a, Method::Gp, 8, 0.05, 4);
        let rp = partition_rows(&g, &a, Method::Rp, 8, 0.05, 4);
        let v_hp = metrics::spmm_comm_stats(&a, &hp).total_rows;
        let v_gp = metrics::spmm_comm_stats(&a, &gp).total_rows;
        let v_rp = metrics::spmm_comm_stats(&a, &rp).total_rows;
        assert!(v_hp < v_rp, "HP {v_hp} should beat RP {v_rp}");
        assert!(v_gp < v_rp, "GP {v_gp} should beat RP {v_rp}");
        assert!(
            (v_hp as f64) <= v_gp as f64 * 1.3,
            "HP {v_hp} should be comparable or better than GP {v_gp}"
        );
    }
}
