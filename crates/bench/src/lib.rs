//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the paper (see DESIGN.md §4 for the index).
//!
//! Each binary prints a human-readable table mirroring the paper's layout
//! and, when `--json <path>` is given, writes machine-readable rows so
//! EXPERIMENTS.md can be regenerated. Common flags:
//!
//! * `--quick` — smaller graphs and processor counts (CI-friendly);
//! * `--scale <div>` — extra scale divisor on top of each dataset's default;
//! * `--seed <n>` — RNG seed (default 1);
//! * `--threads <n>` — kernel thread-pool size per rank (default: the
//!   `PARGCN_THREADS` env var, else `available_parallelism / p`);
//! * `--kernel naive|blocked` — kernel engine (default: the
//!   `PARGCN_KERNEL` env var, else blocked). Never changes results.

use pargcn_core::baselines::cagnet::CagnetPlan;
use pargcn_core::{CommPlan, GcnConfig};
use pargcn_graph::{Dataset, GraphData, Scale};
use pargcn_matrix::{Csr, KernelKind};
use pargcn_partition::stochastic::Sampler;
use pargcn_partition::{partition_rows, Method, Partition, DEFAULT_EPSILON};
use pargcn_util::json::{self, Json};

/// Parsed common command-line options.
#[derive(Clone, Debug)]
pub struct Opts {
    pub quick: bool,
    pub extra_scale: u32,
    pub seed: u64,
    pub json: Option<String>,
    pub threads: Option<usize>,
    pub kernel: Option<KernelKind>,
}

impl Opts {
    /// Parses `std::env::args`, ignoring unknown flags (binaries parse their
    /// own extras from the same args).
    pub fn parse() -> Opts {
        let args: Vec<String> = std::env::args().collect();
        Opts::from_args(&args)
    }

    pub fn from_args(args: &[String]) -> Opts {
        let mut opts = Opts {
            quick: false,
            extra_scale: 1,
            seed: 1,
            json: None,
            threads: None,
            kernel: None,
        };
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => opts.quick = true,
                "--scale" => {
                    i += 1;
                    opts.extra_scale = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(1);
                }
                "--seed" => {
                    i += 1;
                    opts.seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(1);
                }
                "--json" => {
                    i += 1;
                    opts.json = args.get(i).cloned();
                }
                "--threads" => {
                    i += 1;
                    opts.threads = args.get(i).and_then(|s| s.parse().ok()).filter(|&t| t > 0);
                }
                "--kernel" => {
                    i += 1;
                    opts.kernel = args.get(i).and_then(|s| KernelKind::parse(s));
                }
                _ => {}
            }
            i += 1;
        }
        opts
    }

    /// Effective scale for a dataset: its default divisor times the extra
    /// factor, times 8 more in quick mode.
    pub fn scale_for(&self, ds: Dataset) -> Scale {
        let quick_factor = if self.quick { 8 } else { 1 };
        Scale(
            ds.default_scale()
                .0
                .saturating_mul(self.extra_scale)
                .saturating_mul(quick_factor),
        )
    }

    /// Loads a dataset at the effective scale.
    pub fn load(&self, ds: Dataset) -> GraphData {
        ds.generate(self.scale_for(ds), self.seed)
    }
}

/// A generic result row for JSON output.
#[derive(Clone, Debug, PartialEq)]
pub struct ResultRow {
    pub experiment: String,
    pub dataset: String,
    pub method: String,
    pub p: usize,
    pub metrics: std::collections::BTreeMap<String, f64>,
}

impl ResultRow {
    /// Field order matches the historical derive-based serialization, so
    /// regenerated result files diff cleanly against `results/*.json`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("experiment", Json::Str(self.experiment.clone())),
            ("dataset", Json::Str(self.dataset.clone())),
            ("method", Json::Str(self.method.clone())),
            ("p", Json::Num(self.p as f64)),
            ("metrics", json::from_metrics(&self.metrics)),
        ])
    }

    /// Inverse of [`ResultRow::to_json`]; used to read result files back
    /// when regenerating EXPERIMENTS.md tables.
    pub fn from_json(v: &Json) -> Option<ResultRow> {
        let metrics = match v.get("metrics")? {
            Json::Obj(fields) => fields
                .iter()
                .map(|(k, v)| Some((k.clone(), v.as_f64()?)))
                .collect::<Option<_>>()?,
            _ => return None,
        };
        Some(ResultRow {
            experiment: v.get("experiment")?.as_str()?.to_string(),
            dataset: v.get("dataset")?.as_str()?.to_string(),
            method: v.get("method")?.as_str()?.to_string(),
            p: v.get("p")?.as_f64()? as usize,
            metrics,
        })
    }
}

/// Writes rows as pretty JSON if a path was given.
pub fn write_json(opts: &Opts, rows: &[ResultRow]) {
    if let Some(path) = &opts.json {
        let body = Json::Arr(rows.iter().map(ResultRow::to_json).collect()).to_string_pretty();
        std::fs::write(path, body).expect("write json output");
        eprintln!("wrote {} rows to {path}", rows.len());
    }
}

/// The standard 2-layer training configuration used by the communication
/// experiments (Table 2, Fig. 3, Fig. 4a): d = 32 features, 32 hidden, 16
/// outputs. The paper runs "random vertex features and label data".
pub fn comm_experiment_config() -> GcnConfig {
    GcnConfig {
        dims: vec![32, 32, 16],
        learning_rate: 0.1,
        order: pargcn_core::LayerOrder::SpmmFirst,
        optimizer: pargcn_core::optim::Optimizer::Sgd,
    }
}

/// Partitions and builds both direction plans for a graph.
pub fn build_plans(
    data: &GraphData,
    a: &Csr,
    method: Method,
    p: usize,
    seed: u64,
) -> (Partition, CommPlan, CommPlan) {
    let part = partition_rows(&data.graph, a, method, p, DEFAULT_EPSILON, seed);
    let plan_f = CommPlan::build(a, &part);
    let plan_b = if data.graph.directed() {
        CommPlan::build(&a.transpose(), &part)
    } else {
        plan_f.clone()
    };
    (part, plan_f, plan_b)
}

/// Builds the CAGNET plans for both directions.
pub fn build_cagnet_plans(data: &GraphData, a: &Csr, part: &Partition) -> (CagnetPlan, CagnetPlan) {
    let f = CagnetPlan::build(a, part);
    let b = if data.graph.directed() {
        CagnetPlan::build(&a.transpose(), part)
    } else {
        f.clone()
    };
    (f, b)
}

/// The SHP method configured like the paper's Fig. 5 run, scaled to the
/// instance: batch size ≈ n/16 (paper: 20K of 335K ≈ n/17), `batches`
/// sampled batches merged into the stochastic hypergraph.
pub fn shp_method(n: usize, batches: usize) -> Method {
    Method::Shp {
        sampler: Sampler::UniformVertex {
            batch_size: (n / 16).max(8),
        },
        batches,
    }
}

/// Formats a count with thousands separators for table output.
pub fn fmt_count(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opts_parse_flags() {
        let args: Vec<String> = [
            "bin",
            "--quick",
            "--scale",
            "4",
            "--seed",
            "9",
            "--json",
            "/tmp/x.json",
            "--threads",
            "4",
            "--kernel",
            "naive",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = Opts::from_args(&args);
        assert!(o.quick);
        assert_eq!(o.extra_scale, 4);
        assert_eq!(o.seed, 9);
        assert_eq!(o.json.as_deref(), Some("/tmp/x.json"));
        assert_eq!(o.threads, Some(4));
        assert_eq!(o.kernel, Some(KernelKind::Naive));
    }

    #[test]
    fn quick_scale_is_8x() {
        let o = Opts::from_args(&["bin".to_string(), "--quick".to_string()]);
        assert_eq!(o.scale_for(Dataset::Cora).0, 8);
    }

    #[test]
    fn fmt_count_groups_digits() {
        assert_eq!(fmt_count(1234567), "1,234,567");
        assert_eq!(fmt_count(42), "42");
    }

    #[test]
    fn result_row_json_roundtrip() {
        let row = ResultRow {
            experiment: "fig3_cpu".into(),
            dataset: "amazon0601".into(),
            method: "HP".into(),
            p: 16,
            metrics: [("epoch_seconds".to_string(), 0.0025182201599999996)].into(),
        };
        let text = Json::Arr(vec![row.to_json()]).to_string_pretty();
        let parsed = json::parse(&text).unwrap();
        let back = ResultRow::from_json(&parsed.as_array().unwrap()[0]).unwrap();
        assert_eq!(back, row);
    }

    #[test]
    fn plans_build_for_all_methods() {
        let o = Opts {
            quick: true,
            extra_scale: 8,
            seed: 1,
            json: None,
            threads: None,
            kernel: None,
        };
        let data = o.load(Dataset::ComAmazon);
        let a = data.graph.normalized_adjacency();
        for m in [Method::Rp, Method::Hp] {
            let (part, pf, pb) = build_plans(&data, &a, m, 4, 1);
            assert_eq!(part.p(), 4);
            assert_eq!(pf.p, 4);
            assert_eq!(pb.p, 4);
        }
    }
}
