//! Table 4: per-epoch running time on Reddit vs published numbers of other
//! distributed GNN systems.
//!
//! ```text
//! cargo run -p pargcn-bench --release --bin table4_sota [-- --quick]
//! ```
//!
//! Only the HP row is *measured* (cost model on the Reddit-class generator,
//! A100×3-like profile, full-batch like the paper); the remaining rows are
//! constants the paper cites from each system's publication — reproduced
//! here verbatim for the comparison table, exactly as the paper does.

use pargcn_bench::{build_plans, comm_experiment_config, Opts, ResultRow};
use pargcn_comm::MachineProfile;
use pargcn_core::metrics::simulate_epoch;
use pargcn_graph::Dataset;
use pargcn_partition::Method;
use std::collections::BTreeMap;

/// `(system, seconds-per-epoch, setup, source)` as cited in the paper.
const CITED: &[(&str, f64, &str, &str)] = &[
    ("CAGNET", 0.11, "V100*4", "Fig 1 (c=1) [54]"),
    ("ROC", 0.20, "P100*4", "Fig 5 [22]"),
    ("Sancus", 0.09, "V100*4", "Table 4 (SCS-A) [43]"),
    ("PaGraph", 1.00, "1080Ti*1", "Fig 9 [34]"),
    ("Dorylus", 1.36, "V100*2", "Fig 5, Table 4 [52]"),
    ("DGCL", 0.15, "V100*4", "Fig 8(a) [4]"),
];

fn main() {
    let opts = Opts::parse();
    let ds = Dataset::Reddit;
    let data = opts.load(ds);
    let a = data.graph.normalized_adjacency();
    let config = comm_experiment_config();
    let profile = MachineProfile::gpu_cluster();
    let p = 3; // the paper's A100×3 setup

    let (_, plan_f, plan_b) = build_plans(&data, &a, Method::Hp, p, opts.seed);
    let t = simulate_epoch(&plan_f, &plan_b, &config, &profile).total;
    // Scale-adjusted estimate: the generator runs at 1/scale of Reddit, and
    // epoch cost is roughly linear in nnz at fixed p.
    let scale = opts.scale_for(ds).0 as f64;
    let t_full = t * scale;

    println!("Table 4: per-epoch running time on Reddit (paper setup: full-batch, A100*3)");
    println!(
        "{:<10} {:>14} {:<10} Reference",
        "Method", "time (s/epoch)", "Setup"
    );
    println!(
        "{:<10} {:>14.3} {:<10} measured (cost model; 1/{} scale extrapolated)",
        "HP", t_full, "A100*3", scale as u64
    );
    let mut rows = vec![{
        let mut metrics = BTreeMap::new();
        metrics.insert("epoch_seconds".into(), t_full);
        metrics.insert("epoch_seconds_scaled_instance".into(), t);
        ResultRow {
            experiment: "table4".into(),
            dataset: ds.name().into(),
            method: "HP".into(),
            p,
            metrics,
        }
    }];
    for &(system, secs, setup, reference) in CITED {
        println!("{:<10} {:>14.3} {:<10} {}", system, secs, setup, reference);
        let mut metrics = BTreeMap::new();
        metrics.insert("epoch_seconds_cited".into(), secs);
        rows.push(ResultRow {
            experiment: "table4".into(),
            dataset: ds.name().into(),
            method: system.into(),
            p: 0,
            metrics,
        });
    }
    pargcn_bench::write_json(&opts, &rows);
}
