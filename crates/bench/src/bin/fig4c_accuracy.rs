//! Figure 4c: predictive performance is unaffected by parallel training.
//!
//! Trains the Cora-class dataset for 30 epochs serially and distributed on
//! P = 1…27 ranks (real threaded execution, not the cost model) and prints
//! the test accuracy per P — the paper reports ≈75% at every setting.
//!
//! ```text
//! cargo run -p pargcn-bench --release --bin fig4c_accuracy [-- --quick]
//! ```

use pargcn_bench::{Opts, ResultRow};
use pargcn_core::dist::train_full_batch;
use pargcn_core::loss::accuracy;
use pargcn_core::serial::SerialTrainer;
use pargcn_core::GcnConfig;
use pargcn_graph::Dataset;
use pargcn_partition::{partition_rows, Method, DEFAULT_EPSILON};
use std::collections::BTreeMap;

fn main() {
    let opts = Opts::parse();
    let epochs = 30usize;
    let data = opts.load(Dataset::Cora);
    let features = data.features.expect("Cora has features");
    let labels = data.labels.expect("Cora has labels");
    let train_mask = data.train_mask.expect("Cora has a split");
    let test_mask: Vec<bool> = train_mask.iter().map(|&m| !m).collect();
    let config = GcnConfig::two_layer(features.cols(), 16, 7);

    println!(
        "Figure 4c: accuracy after {epochs} epochs on {} vertices",
        data.graph.n()
    );
    let mut rows = Vec::new();

    let mut serial = SerialTrainer::new(&data.graph, config.clone(), opts.seed);
    for _ in 0..epochs {
        serial.train_epoch(&features, &labels, &train_mask);
    }
    let serial_acc = accuracy(&serial.predict(&features), &labels, &test_mask);
    println!("{:<8} {:>10.4}", "serial", serial_acc);

    let a = data.graph.normalized_adjacency();
    let ps: Vec<usize> = if opts.quick {
        vec![3, 9]
    } else {
        vec![1, 3, 9, 15, 21, 27]
    };
    for p in ps {
        let part = if p == 1 {
            pargcn_partition::Partition::trivial(data.graph.n())
        } else {
            partition_rows(&data.graph, &a, Method::Hp, p, DEFAULT_EPSILON, opts.seed)
        };
        let out = train_full_batch(
            &data.graph,
            &features,
            &labels,
            &train_mask,
            &part,
            &config,
            epochs,
            opts.seed,
        );
        let acc = accuracy(&out.predictions, &labels, &test_mask);
        println!("{:<8} {:>10.4}", format!("P={p}"), acc);
        let mut metrics = BTreeMap::new();
        metrics.insert("accuracy".into(), acc);
        metrics.insert("serial_accuracy".into(), serial_acc);
        metrics.insert("final_loss".into(), *out.losses.last().unwrap());
        rows.push(ResultRow {
            experiment: "fig4c".into(),
            dataset: "Cora".into(),
            method: "HP".into(),
            p,
            metrics,
        });
    }
    pargcn_bench::write_json(&opts, &rows);
}
