//! Figure 3: strong scaling of full-batch training.
//!
//! Top row (paper): HP/GP/RP per-epoch time on P = 16…512 CPUs.
//! Bottom row: HP/GP/RP/CAGNET on P = 3…27 GPUs (NCCL profile).
//!
//! ```text
//! cargo run -p pargcn-bench --release --bin fig3_strong_scaling -- --machine cpu [--quick]
//! cargo run -p pargcn-bench --release --bin fig3_strong_scaling -- --machine gpu [--quick]
//! ```

use pargcn_bench::{build_cagnet_plans, build_plans, comm_experiment_config, Opts, ResultRow};
use pargcn_comm::MachineProfile;
use pargcn_core::baselines::cagnet;
use pargcn_core::metrics::simulate_epoch;
use pargcn_graph::Dataset;
use pargcn_partition::Method;
use std::collections::BTreeMap;

fn main() {
    let opts = Opts::parse();
    let args: Vec<String> = std::env::args().collect();
    let machine = args
        .iter()
        .position(|a| a == "--machine")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "cpu".into());

    let (profile, ps, with_cagnet): (MachineProfile, Vec<usize>, bool) = match machine.as_str() {
        "gpu" => (MachineProfile::gpu_cluster(), vec![3, 9, 15, 21, 27], true),
        _ => (
            MachineProfile::cpu_cluster(),
            if opts.quick {
                vec![16, 32, 64]
            } else {
                vec![16, 32, 64, 128, 256, 512]
            },
            false,
        ),
    };
    let config = comm_experiment_config();
    println!("Figure 3 ({machine}): per-epoch time (seconds) vs processor count");
    let mut rows = Vec::new();

    let datasets: &[Dataset] = if opts.quick {
        &[Dataset::ComAmazon, Dataset::RoadNetCa]
    } else {
        &Dataset::TABLE2
    };

    for &ds in datasets {
        let data = opts.load(ds);
        let a = data.graph.normalized_adjacency();
        print!("{:<18} {:<6}", ds.name(), "P:");
        for &p in &ps {
            print!(" {:>10}", p);
        }
        println!();
        for method in [Method::Hp, Method::Gp, Method::Rp] {
            print!("{:<18} {:<6}", "", method.name());
            for &p in &ps {
                let (_, plan_f, plan_b) = build_plans(&data, &a, method, p, opts.seed);
                let t = simulate_epoch(&plan_f, &plan_b, &config, &profile).total;
                print!(" {:>10.5}", t);
                let mut metrics = BTreeMap::new();
                metrics.insert("epoch_seconds".into(), t);
                rows.push(ResultRow {
                    experiment: format!("fig3_{machine}"),
                    dataset: ds.name().into(),
                    method: method.name().into(),
                    p,
                    metrics,
                });
            }
            println!();
        }
        if with_cagnet {
            print!("{:<18} {:<6}", "", "CN");
            for &p in &ps {
                let (part, _, _) = build_plans(&data, &a, Method::Rp, p, opts.seed);
                let (cf, cb) = build_cagnet_plans(&data, &a, &part);
                let t = cagnet::simulate_epoch(&cf, &cb, &config, &profile).total;
                print!(" {:>10.5}", t);
                let mut metrics = BTreeMap::new();
                metrics.insert("epoch_seconds".into(), t);
                rows.push(ResultRow {
                    experiment: format!("fig3_{machine}"),
                    dataset: ds.name().into(),
                    method: "CN".into(),
                    p,
                    metrics,
                });
            }
            println!();
        }
    }
    pargcn_bench::write_json(&opts, &rows);
}
