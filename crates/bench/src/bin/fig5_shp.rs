//! Figure 5: SHP vs HP for mini-batch training on com-Amazon — per-batch
//! expected communication volume and cost-model running time over
//! P = 3…27 (GPU profile, as in the paper).
//!
//! ```text
//! cargo run -p pargcn-bench --release --bin fig5_shp [-- --quick]
//! ```
//!
//! Shape to reproduce: HP induces ≈10% more mini-batch communication volume
//! than SHP on average, with the gap widening at higher processor counts.
//! The paper samples 10K batches of 20K vertices; we build the stochastic
//! hypergraph from 1600 batches (enough for SHP's estimate to converge at
//! this scale — see Eq. 14) and evaluate on 200 held-out batches.

use pargcn_bench::{comm_experiment_config, Opts, ResultRow};
use pargcn_comm::MachineProfile;
use pargcn_core::metrics::simulate_epoch;
use pargcn_core::minibatch::{expected_comm_volume, restrict_partition};
use pargcn_core::CommPlan;
use pargcn_graph::Dataset;
use pargcn_matrix::norm;
use pargcn_partition::stochastic::{sample_batches, Sampler};
use pargcn_partition::{partition_rows, Method, DEFAULT_EPSILON};
use std::collections::BTreeMap;

fn main() {
    let opts = Opts::parse();
    let data = opts.load(Dataset::ComAmazon);
    let n = data.graph.n();
    let batch_size = (n / 16).max(8); // paper: 20K of 335K ≈ n/17
    let build_batches = if opts.quick { 150 } else { 1600 }; // merged into the SHP hypergraph
    let eval_batches = if opts.quick { 20 } else { 200 };
    let ps: Vec<usize> = if opts.quick {
        vec![3, 9]
    } else {
        vec![3, 9, 15, 21, 27]
    };
    let config = comm_experiment_config();
    let profile = MachineProfile::gpu_cluster();

    println!(
        "Figure 5: SHP vs HP mini-batch on {} (n={n}, batch={batch_size}, {eval_batches} eval batches)",
        Dataset::ComAmazon.name()
    );
    println!(
        "{:<6} {:>14} {:>14} {:>9} | {:>12} {:>12}",
        "P", "HP vol", "SHP vol", "HP/SHP", "HP time", "SHP time"
    );
    let mut rows = Vec::new();
    let a = data.graph.normalized_adjacency();
    // Evaluation batches are shared across methods and P (seeded separately
    // from the SHP construction batches so SHP cannot overfit them).
    let eval = sample_batches(
        &data.graph,
        Sampler::UniformVertex { batch_size },
        eval_batches,
        opts.seed ^ 0xe5a1,
    );

    for &p in &ps {
        let hp = partition_rows(&data.graph, &a, Method::Hp, p, DEFAULT_EPSILON, opts.seed);
        let shp = partition_rows(
            &data.graph,
            &a,
            Method::Shp {
                sampler: Sampler::UniformVertex { batch_size },
                batches: build_batches,
            },
            p,
            DEFAULT_EPSILON,
            opts.seed,
        );
        let (hp_vol, _) = expected_comm_volume(&data.graph, &eval, &hp);
        let (shp_vol, _) = expected_comm_volume(&data.graph, &eval, &shp);

        // Cost-model time of one mini-batch step, averaged over a few
        // representative batches.
        let mut hp_time = 0.0;
        let mut shp_time = 0.0;
        let probe = eval.len().min(8);
        for batch in eval.iter().take(probe) {
            let sub = data.graph.induced_subgraph(batch);
            let sa = norm::normalize_adjacency(sub.adjacency());
            for (part, acc) in [(&hp, &mut hp_time), (&shp, &mut shp_time)] {
                let sp = restrict_partition(part, batch);
                let plan = CommPlan::build(&sa, &sp);
                *acc += simulate_epoch(&plan, &plan, &config, &profile).total / probe as f64;
            }
        }

        println!(
            "{:<6} {:>14} {:>14} {:>9.3} | {:>12.6} {:>12.6}",
            p,
            hp_vol,
            shp_vol,
            hp_vol as f64 / shp_vol.max(1) as f64,
            hp_time,
            shp_time
        );
        for (name, vol, time) in [("HP", hp_vol, hp_time), ("SHP", shp_vol, shp_time)] {
            let mut metrics = BTreeMap::new();
            metrics.insert("eval_volume_rows".into(), vol as f64);
            metrics.insert("batch_time_seconds".into(), time);
            rows.push(ResultRow {
                experiment: "fig5".into(),
                dataset: Dataset::ComAmazon.name().into(),
                method: name.into(),
                p,
                metrics,
            });
        }
    }
    pargcn_bench::write_json(&opts, &rows);
}
