//! Figure 4a: communication vs computation time breakdown on coPapersDBLP,
//! P = 16…512, for HP, GP, RP, and CAGNET (CN).
//!
//! ```text
//! cargo run -p pargcn-bench --release --bin fig4a_breakdown [-- --quick]
//! ```
//!
//! The paper's findings this must reproduce: P2P comm time *decreases* with
//! P while CAGNET's *increases*; HP has the lowest comm at high P (GP ~1.7×
//! and CN ~8× higher at P = 512); CAGNET also pays redundant computation.
//!
//! The first table is the cluster-profile *model* (like Fig. 3). A second
//! table then reports the *measured* split from real training runs on this
//! machine: per-rank `comm_seconds` (blocked in recv/allreduce) and
//! `compute_seconds` (its complement) from [`pargcn_comm::CommCounters`],
//! at small P with `--threads` kernel threads per rank.

use pargcn_bench::{build_cagnet_plans, build_plans, comm_experiment_config, Opts, ResultRow};
use pargcn_comm::MachineProfile;
use pargcn_core::baselines::cagnet;
use pargcn_core::dist;
use pargcn_core::metrics::simulate_epoch;
use pargcn_graph::Dataset;
use pargcn_matrix::{ComputeSpec, Dense};
use pargcn_partition::Method;
use pargcn_util::rng::{Rng, SeedableRng, StdRng};
use std::collections::BTreeMap;

fn main() {
    let opts = Opts::parse();
    let ps: Vec<usize> = if opts.quick {
        vec![16, 64]
    } else {
        vec![16, 32, 64, 128, 256, 512]
    };
    let config = comm_experiment_config();
    let profile = MachineProfile::cpu_cluster();
    let ds = Dataset::CoPapersDblp;
    let data = opts.load(ds);
    let a = data.graph.normalized_adjacency();

    println!(
        "Figure 4a: comm/comp split on {} (seconds per epoch)",
        ds.name()
    );
    println!(
        "{:<8} {:<8} {:>12} {:>12} {:>12}",
        "P", "Method", "total", "comm", "comp"
    );
    let mut rows = Vec::new();
    for &p in &ps {
        for method in [Method::Hp, Method::Gp, Method::Rp] {
            let (_, plan_f, plan_b) = build_plans(&data, &a, method, p, opts.seed);
            let t = simulate_epoch(&plan_f, &plan_b, &config, &profile);
            println!(
                "{:<8} {:<8} {:>12.5} {:>12.5} {:>12.5}",
                p,
                method.name(),
                t.total,
                t.comm,
                t.comp
            );
            let mut metrics = BTreeMap::new();
            metrics.insert("total".into(), t.total);
            metrics.insert("comm".into(), t.comm);
            metrics.insert("comp".into(), t.comp);
            rows.push(ResultRow {
                experiment: "fig4a".into(),
                dataset: ds.name().into(),
                method: method.name().into(),
                p,
                metrics,
            });
        }
        // CAGNET on the same (random) row distribution.
        let (part, _, _) = build_plans(&data, &a, Method::Rp, p, opts.seed);
        let (cf, cb) = build_cagnet_plans(&data, &a, &part);
        let t = cagnet::simulate_epoch(&cf, &cb, &config, &profile);
        println!(
            "{:<8} {:<8} {:>12.5} {:>12.5} {:>12.5}",
            p, "CN", t.total, t.comm, t.comp
        );
        let mut metrics = BTreeMap::new();
        metrics.insert("total".into(), t.total);
        metrics.insert("comm".into(), t.comm);
        metrics.insert("comp".into(), t.comp);
        rows.push(ResultRow {
            experiment: "fig4a".into(),
            dataset: ds.name().into(),
            method: "CN".into(),
            p,
            metrics,
        });
    }

    // Measured split: real training runs with the Table 2 setup (random
    // vertex features and label data), timed via the per-rank counters.
    let epochs = if opts.quick { 1 } else { 3 };
    let measured_ps: Vec<usize> = if opts.quick { vec![2] } else { vec![2, 4] };
    let n = data.graph.n();
    let (d_in, classes) = (config.dims[0], *config.dims.last().unwrap());
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let h0 = Dense::random(n, d_in, &mut rng);
    let labels: Vec<u32> = (0..n).map(|_| rng.gen_range(0..classes as u32)).collect();
    let mask = vec![true; n];

    println!();
    println!("Measured on this machine ({epochs} epochs, seconds per epoch, per-rank mean):");
    println!(
        "{:<8} {:<8} {:>12} {:>12} {:>12} {:>10}",
        "P", "Method", "wall", "comm", "comp", "GFLOP/s"
    );
    for &p in &measured_ps {
        for method in [Method::Hp, Method::Rp] {
            let (part, _, _) = build_plans(&data, &a, method, p, opts.seed);
            let out = dist::train_full_batch_spec(
                &data.graph,
                &h0,
                &labels,
                &mask,
                &part,
                &config,
                epochs,
                opts.seed,
                ComputeSpec {
                    threads: opts.threads,
                    kernel: opts.kernel,
                },
            );
            let per_rank = |v: f64| v / (p * epochs) as f64;
            let comm = per_rank(out.counters.iter().map(|c| c.comm_seconds).sum());
            let comp = per_rank(out.counters.iter().map(|c| c.compute_seconds).sum());
            let wall = out.rank_seconds.iter().cloned().fold(0.0, f64::max) / epochs as f64;
            // Sustained arithmetic rate across all ranks: shape-counted
            // kernel FLOPs over the non-blocked compute seconds.
            let flops: u64 = out.counters.iter().map(|c| c.compute_flops).sum();
            let comp_total: f64 = out.counters.iter().map(|c| c.compute_seconds).sum();
            let gflops = flops as f64 / comp_total.max(1e-9) / 1e9;
            println!(
                "{:<8} {:<8} {:>12.5} {:>12.5} {:>12.5} {:>10.2}",
                p,
                method.name(),
                wall,
                comm,
                comp,
                gflops
            );
            let mut metrics = BTreeMap::new();
            metrics.insert("wall".into(), wall);
            metrics.insert("comm".into(), comm);
            metrics.insert("comp".into(), comp);
            metrics.insert("gflops".into(), gflops);
            rows.push(ResultRow {
                experiment: "fig4a_measured".into(),
                dataset: ds.name().into(),
                method: method.name().into(),
                p,
                metrics,
            });
        }
    }
    pargcn_bench::write_json(&opts, &rows);
}
