//! Figure 4a: communication vs computation time breakdown on coPapersDBLP,
//! P = 16…512, for HP, GP, RP, and CAGNET (CN).
//!
//! ```text
//! cargo run -p pargcn-bench --release --bin fig4a_breakdown [-- --quick]
//! ```
//!
//! The paper's findings this must reproduce: P2P comm time *decreases* with
//! P while CAGNET's *increases*; HP has the lowest comm at high P (GP ~1.7×
//! and CN ~8× higher at P = 512); CAGNET also pays redundant computation.

use pargcn_bench::{build_cagnet_plans, build_plans, comm_experiment_config, Opts, ResultRow};
use pargcn_comm::MachineProfile;
use pargcn_core::baselines::cagnet;
use pargcn_core::metrics::simulate_epoch;
use pargcn_graph::Dataset;
use pargcn_partition::Method;
use std::collections::BTreeMap;

fn main() {
    let opts = Opts::parse();
    let ps: Vec<usize> = if opts.quick {
        vec![16, 64]
    } else {
        vec![16, 32, 64, 128, 256, 512]
    };
    let config = comm_experiment_config();
    let profile = MachineProfile::cpu_cluster();
    let ds = Dataset::CoPapersDblp;
    let data = opts.load(ds);
    let a = data.graph.normalized_adjacency();

    println!(
        "Figure 4a: comm/comp split on {} (seconds per epoch)",
        ds.name()
    );
    println!(
        "{:<8} {:<8} {:>12} {:>12} {:>12}",
        "P", "Method", "total", "comm", "comp"
    );
    let mut rows = Vec::new();
    for &p in &ps {
        for method in [Method::Hp, Method::Gp, Method::Rp] {
            let (_, plan_f, plan_b) = build_plans(&data, &a, method, p, opts.seed);
            let t = simulate_epoch(&plan_f, &plan_b, &config, &profile);
            println!(
                "{:<8} {:<8} {:>12.5} {:>12.5} {:>12.5}",
                p,
                method.name(),
                t.total,
                t.comm,
                t.comp
            );
            let mut metrics = BTreeMap::new();
            metrics.insert("total".into(), t.total);
            metrics.insert("comm".into(), t.comm);
            metrics.insert("comp".into(), t.comp);
            rows.push(ResultRow {
                experiment: "fig4a".into(),
                dataset: ds.name().into(),
                method: method.name().into(),
                p,
                metrics,
            });
        }
        // CAGNET on the same (random) row distribution.
        let (part, _, _) = build_plans(&data, &a, Method::Rp, p, opts.seed);
        let (cf, cb) = build_cagnet_plans(&data, &a, &part);
        let t = cagnet::simulate_epoch(&cf, &cb, &config, &profile);
        println!(
            "{:<8} {:<8} {:>12.5} {:>12.5} {:>12.5}",
            p, "CN", t.total, t.comm, t.comp
        );
        let mut metrics = BTreeMap::new();
        metrics.insert("total".into(), t.total);
        metrics.insert("comm".into(), t.comm);
        metrics.insert("comp".into(), t.comp);
        rows.push(ResultRow {
            experiment: "fig4a".into(),
            dataset: ds.name().into(),
            method: "CN".into(),
            p,
            metrics,
        });
    }
    pargcn_bench::write_json(&opts, &rows);
}
