//! Table 3: billion-scale training — HP vs RP on the ogbn-Papers100M-class
//! dataset at P = 27 (GPU profile), feature widths d ∈ {1, 2, 5}.
//!
//! ```text
//! cargo run -p pargcn-bench --release --bin table3_billion [-- --quick --scale 4]
//! ```
//!
//! Shapes to reproduce: HP's total communication volume ≈10× below RP's;
//! RP's running time degrades sharply as d grows while HP's stays nearly
//! flat (paper: 24.5→29.7 s for HP vs 34.7→65.1 s for RP). The generator
//! runs at 1/2048 of the paper's 111M vertices by default (DESIGN.md §5);
//! volumes below are for the scaled instance.

use pargcn_bench::{build_plans, Opts, ResultRow};
use pargcn_comm::MachineProfile;
use pargcn_core::metrics::simulate_epoch;
use pargcn_core::{GcnConfig, LayerOrder};
use pargcn_graph::Dataset;
use pargcn_partition::{metrics as pmetrics, Method};
use std::collections::BTreeMap;

fn main() {
    let opts = Opts::parse();
    let p = 27usize;
    let ds = Dataset::OgbnPapers100M;
    let data = opts.load(ds);
    let a = data.graph.normalized_adjacency();
    let profile = MachineProfile::gpu_cluster();

    println!(
        "Table 3: {} (n={}, nnz={}) on P={p} GPUs",
        ds.name(),
        data.graph.n(),
        a.nnz()
    );
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>16}",
        "Method", "t(d=1)", "t(d=2)", "t(d=5)", "comm volume"
    );
    let mut rows = Vec::new();
    for method in [Method::Hp, Method::Rp] {
        let (part, plan_f, plan_b) = build_plans(&data, &a, method, p, opts.seed);
        let stats = pmetrics::spmm_comm_stats(&a, &part);
        let mut times = Vec::new();
        for d in [1usize, 2, 5] {
            let config = GcnConfig {
                dims: vec![d, d, d],
                learning_rate: 0.1,
                order: LayerOrder::SpmmFirst,
                optimizer: pargcn_core::optim::Optimizer::Sgd,
            };
            times.push(simulate_epoch(&plan_f, &plan_b, &config, &profile).total);
        }
        println!(
            "{:<8} {:>12.6} {:>12.6} {:>12.6} {:>16}",
            method.name(),
            times[0],
            times[1],
            times[2],
            pargcn_bench::fmt_count(stats.total_rows)
        );
        let mut metrics = BTreeMap::new();
        metrics.insert("t_d1".into(), times[0]);
        metrics.insert("t_d2".into(), times[1]);
        metrics.insert("t_d5".into(), times[2]);
        metrics.insert("volume_rows".into(), stats.total_rows as f64);
        rows.push(ResultRow {
            experiment: "table3".into(),
            dataset: ds.name().into(),
            method: method.name().into(),
            p,
            metrics,
        });
    }
    pargcn_bench::write_json(&opts, &rows);
}
