//! Figure 4b: speedup over the single-node baseline on roadNet-CA at
//! P = 512, varying depth L = 2…8 and width d ∈ {50, 100}.
//!
//! ```text
//! cargo run -p pargcn-bench --release --bin fig4b_deeper [-- --quick]
//! ```
//!
//! Shapes to reproduce (paper): speedup does not degrade with depth (HP's
//! even grows), and halving d from 100 to 50 raises speedup because
//! communication volume scales with d.

use pargcn_bench::{build_plans, Opts, ResultRow};
use pargcn_comm::MachineProfile;
use pargcn_core::metrics::{simulate_epoch, simulate_serial_epoch};
use pargcn_core::{GcnConfig, LayerOrder};
use pargcn_graph::Dataset;
use pargcn_partition::Method;
use std::collections::BTreeMap;

fn main() {
    let opts = Opts::parse();
    let args: Vec<String> = std::env::args().collect();
    let p = args
        .iter()
        .position(|a| a == "--p")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(if opts.quick { 64 } else { 512 });
    let ds = Dataset::RoadNetCa;
    let data = opts.load(ds);
    let a = data.graph.normalized_adjacency();
    let profile = MachineProfile::cpu_cluster();
    let single = MachineProfile::single_node();

    println!("Figure 4b: speedup vs layers on {} at P={p}", ds.name());
    println!(
        "{:<6} {:<4} {:>10} {:>10} {:>10}",
        "d", "L", "HP", "GP", "RP"
    );
    let mut rows = Vec::new();
    // Partitions are depth-independent: build once per method.
    let plans: Vec<_> = [Method::Hp, Method::Gp, Method::Rp]
        .iter()
        .map(|&m| (m, build_plans(&data, &a, m, p, opts.seed)))
        .collect();

    for d in [50usize, 100] {
        for layers in 2..=8usize {
            let mut dims = vec![d; layers];
            dims.push(16); // classification head width
            let config = GcnConfig {
                dims,
                learning_rate: 0.1,
                order: LayerOrder::SpmmFirst,
                optimizer: pargcn_core::optim::Optimizer::Sgd,
            };
            let serial = simulate_serial_epoch(a.nnz(), data.graph.n(), &config, &single);
            print!("{:<6} {:<4}", d, layers);
            for (m, (_, plan_f, plan_b)) in &plans {
                let t = simulate_epoch(plan_f, plan_b, &config, &profile).total;
                let s = serial / t;
                print!(" {:>10.2}", s);
                let mut metrics = BTreeMap::new();
                metrics.insert("speedup".into(), s);
                metrics.insert("layers".into(), layers as f64);
                metrics.insert("d".into(), d as f64);
                rows.push(ResultRow {
                    experiment: "fig4b".into(),
                    dataset: ds.name().into(),
                    method: m.name().into(),
                    p,
                    metrics,
                });
            }
            println!();
        }
    }
    pargcn_bench::write_json(&opts, &rows);
}
