//! Table 2: HP vs GP vs RP at P = 512 — per-processor communication volume
//! and message counts (average and maximum, normalized to RP), the parallel
//! running-time ratio R (cost-model epoch time / RP's), and the speedup S
//! over the single-node DGL-class baseline.
//!
//! ```text
//! cargo run -p pargcn-bench --release --bin table2_comm_costs [-- --quick --p 512]
//! ```
//!
//! `--quick` drops to P = 64 on 8×-smaller graphs. The paper trains five
//! epochs with random features; epoch times here come from the cost model
//! over the exact per-rank plan costs (DESIGN.md §1), so epoch count
//! cancels out of every ratio.

use pargcn_bench::{build_plans, comm_experiment_config, Opts, ResultRow};
use pargcn_comm::MachineProfile;
use pargcn_core::metrics::{simulate_epoch, simulate_serial_epoch};
use pargcn_graph::Dataset;
use pargcn_partition::{metrics as pmetrics, Method};
use std::collections::BTreeMap;

fn main() {
    let opts = Opts::parse();
    let args: Vec<String> = std::env::args().collect();
    let p_flag: Option<usize> = args
        .iter()
        .position(|a| a == "--p")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok());
    // `--granularity-matched`: choose p per dataset so the scaled instance
    // keeps the paper's vertices-per-processor ratio (p = 512 / scale
    // divisor). The scaled graphs are 8–64× smaller than the real ones, so
    // literal P = 512 over-decomposes them — partition quality at matched
    // granularity is the fairer comparison against the paper's Table 2.
    let matched = args.iter().any(|a| a == "--granularity-matched");

    let config = comm_experiment_config();
    let cpu = MachineProfile::cpu_cluster();
    let single = MachineProfile::single_node();

    let default_p = if opts.quick { 64 } else { 512 };
    println!(
        "Table 2: HP/GP/RP comparison ({}; volume & messages normalized to RP)",
        if matched {
            "granularity-matched P per dataset".to_string()
        } else {
            format!("P={}", p_flag.unwrap_or(default_p))
        }
    );
    println!(
        "{:<18} {:<6} {:>7} {:>9} {:>9} {:>9} {:>9} {:>8}",
        "Dataset", "Method", "R", "Vol avg", "Vol max", "Msg avg", "Msg max", "S"
    );
    let mut rows = Vec::new();

    for ds in Dataset::TABLE2 {
        let p = if matched {
            (512 / opts.scale_for(ds).0 as usize).clamp(2, 512)
        } else {
            p_flag.unwrap_or(default_p)
        };
        let data = opts.load(ds);
        let a = data.graph.normalized_adjacency();
        let serial_time = simulate_serial_epoch(a.nnz(), data.graph.n(), &config, &single);

        // RP first: the normalizer.
        let mut per_method: Vec<(Method, f64, pmetrics::CommStats)> = Vec::new();
        for method in [Method::Rp, Method::Hp, Method::Gp] {
            let (part, plan_f, plan_b) = build_plans(&data, &a, method, p, opts.seed);
            let stats = pmetrics::spmm_comm_stats(&a, &part);
            let t = simulate_epoch(&plan_f, &plan_b, &config, &cpu).total;
            per_method.push((method, t, stats));
        }
        let (rp_t, rp_stats) = (per_method[0].1, per_method[0].2.clone());

        for (method, t, stats) in &per_method[1..] {
            let r = t / rp_t;
            let vol_avg = stats.avg_rows() / rp_stats.avg_rows().max(1e-12);
            let vol_max = stats.max_rows() as f64 / rp_stats.max_rows().max(1) as f64;
            let msg_avg = stats.avg_messages() / rp_stats.avg_messages().max(1e-12);
            let msg_max = stats.max_messages() as f64 / rp_stats.max_messages().max(1) as f64;
            let s = serial_time / t;
            println!(
                "{:<18} {:<6} {:>7.2} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>8.2}",
                ds.name(),
                method.name(),
                r,
                vol_avg,
                vol_max,
                msg_avg,
                msg_max,
                s
            );
            let mut metrics = BTreeMap::new();
            metrics.insert("R".into(), r);
            metrics.insert("vol_avg_norm".into(), vol_avg);
            metrics.insert("vol_max_norm".into(), vol_max);
            metrics.insert("msg_avg_norm".into(), msg_avg);
            metrics.insert("msg_max_norm".into(), msg_max);
            metrics.insert("speedup".into(), s);
            metrics.insert("epoch_seconds".into(), *t);
            rows.push(ResultRow {
                experiment: "table2".into(),
                dataset: ds.name().into(),
                method: method.name().into(),
                p,
                metrics,
            });
        }
        // RP's own row (R = 1 by definition), for the speedup column.
        let s_rp = serial_time / rp_t;
        println!(
            "{:<18} {:<6} {:>7.2} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>8.2}",
            ds.name(),
            "RP",
            1.0,
            1.0,
            1.0,
            1.0,
            1.0,
            s_rp
        );
        let mut metrics = BTreeMap::new();
        metrics.insert("R".into(), 1.0);
        metrics.insert("speedup".into(), s_rp);
        metrics.insert("epoch_seconds".into(), rp_t);
        metrics.insert("vol_avg_rows".into(), rp_stats.avg_rows());
        rows.push(ResultRow {
            experiment: "table2".into(),
            dataset: ds.name().into(),
            method: "RP".into(),
            p,
            metrics,
        });
    }
    pargcn_bench::write_json(&opts, &rows);
}
