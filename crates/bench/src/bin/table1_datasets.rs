//! Table 1: dataset properties — prints the paper's reported sizes next to
//! the generated synthetic stand-ins at the effective scale.
//!
//! ```text
//! cargo run -p pargcn-bench --release --bin table1_datasets [-- --quick]
//! ```

use pargcn_bench::{fmt_count, Opts, ResultRow};
use pargcn_graph::Dataset;

fn main() {
    let opts = Opts::parse();
    println!("Table 1: dataset properties (paper vs generated at 1/scale)");
    println!(
        "{:<18} {:>12} {:>14} {:>9} | {:>6} {:>10} {:>12} {:>8} {:>6}",
        "Dataset",
        "paper |V|",
        "paper |E|",
        "directed",
        "scale",
        "gen |V|",
        "gen |E|",
        "avgdeg",
        "skew"
    );
    let mut rows = Vec::new();
    for ds in Dataset::ALL {
        let (pv, pe, dir) = ds.paper_properties();
        let scale = opts.scale_for(ds);
        let data = ds.generate(scale, opts.seed);
        let stats = data.graph.degree_stats();
        println!(
            "{:<18} {:>12} {:>14} {:>9} | {:>6} {:>10} {:>12} {:>8.2} {:>6.1}",
            ds.name(),
            fmt_count(pv as u64),
            fmt_count(pe as u64),
            if dir { "yes" } else { "no" },
            scale.0,
            fmt_count(data.graph.n() as u64),
            fmt_count(data.graph.num_edges() as u64),
            stats.avg,
            stats.skew,
        );
        let mut metrics = std::collections::BTreeMap::new();
        metrics.insert("gen_vertices".into(), data.graph.n() as f64);
        metrics.insert("gen_edges".into(), data.graph.num_edges() as f64);
        metrics.insert("avg_degree".into(), stats.avg);
        metrics.insert("skew".into(), stats.skew);
        metrics.insert("scale".into(), scale.0 as f64);
        rows.push(ResultRow {
            experiment: "table1".into(),
            dataset: ds.name().into(),
            method: "generate".into(),
            p: 0,
            metrics,
        });
    }
    pargcn_bench::write_json(&opts, &rows);
}
