//! Microbenchmarks of the communication runtime's hot path: pooled
//! point-to-point round-trips, the binomial-tree collectives, and a full
//! SpMM exchange — the costs the pooled-buffer/log-tree redesign targets.
//!
//! Thread spawning dominates a single `Communicator::run`, so every
//! benchmark runs a *batch* of operations inside one communicator session
//! per iteration; divide by the batch constant for per-op figures.
//! Baseline medians live in `results/comm_bench.json`.

use pargcn_comm::Communicator;
use pargcn_core::dist::feedforward::spmm_exchange_into;
use pargcn_core::dist::ExchangeScratch;
use pargcn_core::CommPlan;
use pargcn_graph::gen::community;
use pargcn_matrix::{gather, ComputeCtx, Dense};
use pargcn_partition::{partition_rows, Method};
use pargcn_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pargcn_util::rng::SeedableRng;
use pargcn_util::rng::StdRng;

/// Messages / collective rounds executed per communicator session.
const BATCH: usize = 200;

/// Two ranks volley a pooled 4 KiB payload `BATCH` times — the pure
/// per-message overhead (pool acquire, channel hop, release return).
fn bench_pingpong(c: &mut Criterion) {
    let len = 1024;
    c.bench_function("comm_pingpong_1k_x200", |b| {
        b.iter(|| {
            Communicator::run(2, |ctx| {
                let peer = 1 - ctx.rank();
                ctx.prewarm(peer, 2, len);
                for round in 0..BATCH {
                    if ctx.rank() == 0 {
                        let mut payload = ctx.acquire(peer, len);
                        payload.resize(len, round as f32);
                        ctx.isend(peer, 0, payload);
                        let back = ctx.recv(peer, 1);
                        ctx.release(peer, back);
                    } else {
                        let got = ctx.recv(peer, 0);
                        ctx.release(peer, got);
                        let mut payload = ctx.acquire(peer, len);
                        payload.resize(len, round as f32);
                        ctx.isend(peer, 1, payload);
                    }
                }
            })
        })
    });
}

/// `BATCH` allreduces of a ΔW-sized buffer at several rank counts — the
/// O(log p) tree against which `costmodel::allreduce_time` is calibrated.
fn bench_allreduce(c: &mut Criterion) {
    let len = 16 * 16; // hidden×hidden ΔW
    let mut group = c.benchmark_group("comm_allreduce_256_x200");
    group.sample_size(10);
    for p in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("p", p), &p, |b, &p| {
            b.iter(|| {
                Communicator::run(p, |ctx| {
                    ctx.prewarm_collectives(2, len);
                    let mut buf = vec![ctx.rank() as f32; len];
                    for _ in 0..BATCH {
                        ctx.allreduce_sum(&mut buf);
                        // Rescale so values stay finite across rounds.
                        for v in &mut buf {
                            *v /= p as f32;
                        }
                    }
                    buf[0]
                })
            })
        });
    }
    group.finish();
}

/// `BATCH` broadcasts of a 1024-float block from rank 0 at several rank
/// counts (the CAGNET baseline's inner loop).
fn bench_broadcast(c: &mut Criterion) {
    let len = 1024;
    let mut group = c.benchmark_group("comm_broadcast_1k_x200");
    group.sample_size(10);
    for p in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("p", p), &p, |b, &p| {
            b.iter(|| {
                Communicator::run(p, |ctx| {
                    ctx.prewarm_collectives(2, len);
                    let mut buf = if ctx.rank() == 0 {
                        vec![1.0f32; len]
                    } else {
                        Vec::new()
                    };
                    for _ in 0..BATCH {
                        ctx.broadcast(0, &mut buf);
                    }
                    buf[0]
                })
            })
        });
    }
    group.finish();
}

/// Repeated SpMM exchanges over a real comm plan — the trainer's inner
/// loop: pooled sends, mailbox drain, plan-order accumulation.
fn bench_spmm_exchange(c: &mut Criterion) {
    let sweeps = 20;
    let g = community::copurchase(2000, 6.0, false, 3);
    let a = g.normalized_adjacency();
    let mut rng = StdRng::seed_from_u64(4);
    let h0 = Dense::random(g.n(), 16, &mut rng);
    let mut group = c.benchmark_group("comm_spmm_exchange_2k_x20");
    group.sample_size(10);
    for p in [4usize, 8] {
        let part = partition_rows(&g, &a, Method::Hp, p, 0.05, 1);
        let plan = CommPlan::build(&a, &part);
        let locals: Vec<Dense> = plan
            .ranks
            .iter()
            .map(|rp| gather::gather_rows(&h0, &rp.local_rows))
            .collect();
        group.bench_with_input(BenchmarkId::new("hp", p), &p, |b, &p| {
            b.iter(|| {
                Communicator::run(p, |ctx| {
                    let rp = &plan.ranks[ctx.rank()];
                    let cctx = ComputeCtx::for_ranks(p, Some(1));
                    let x = &locals[ctx.rank()];
                    for ss in &rp.send {
                        ctx.prewarm(ss.peer, 2, ss.local_indices.len() * x.cols());
                    }
                    let mut scratch = ExchangeScratch::new(p);
                    let mut ax = Dense::zeros(rp.n_local(), x.cols());
                    for sweep in 0..sweeps {
                        spmm_exchange_into(ctx, rp, x, sweep as u32, &cctx, &mut scratch, &mut ax);
                    }
                })
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pingpong,
    bench_allreduce,
    bench_broadcast,
    bench_spmm_exchange
);
criterion_main!(benches);
