//! Persistent mini-batch engine vs per-batch-spawn training (DESIGN.md
//! §11). The old path pays `Communicator::run` (thread spawn + join),
//! plan construction, and workspace/pool growth once *per batch*; the
//! engine pays them once per session and pipelines batch preparation
//! against rank compute. For small batches the fixed per-batch cost
//! dominates, which is where the engine's gain concentrates — the
//! acceptance figure (`results/minibatch_engine.json`) is the
//! small-batch group at p = 4.
//!
//! Each iteration trains the *whole* batch list so the reported
//! throughput (`Throughput::Elements`, one element = one batch) reads
//! directly as batches/second. Three methods per group:
//!   `spawn`      — `minibatch::train_spec`, the per-batch-spawn path;
//!   `persistent` — `train_spec_persistent`, engine built inside the
//!                  iteration (what a fresh training run pays);
//!   `steady`     — a long-lived engine re-fed the list, the
//!                  steady-state cost with pools and workspaces at
//!                  their high-water mark.

use pargcn_core::minibatch::{self, MinibatchEngine};
use pargcn_core::GcnConfig;
use pargcn_graph::gen::sbm::{self, SbmParams};
use pargcn_graph::Graph;
use pargcn_matrix::{ComputeSpec, Dense};
use pargcn_partition::stochastic::{sample_batches, Sampler};
use pargcn_partition::{partition_rows, Method, Partition};
use pargcn_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

/// Ranks — the acceptance criterion's p.
const P: usize = 4;

struct Fixture {
    graph: Graph,
    h0: Dense,
    labels: Vec<u32>,
    mask: Vec<bool>,
    part: Partition,
    config: GcnConfig,
    batches: Vec<Vec<u32>>,
    spec: ComputeSpec,
}

fn fixture(batch_size: usize, count: usize) -> Fixture {
    let d = sbm::generate(
        SbmParams {
            n: 1500,
            classes: 4,
            features: 16,
            ..Default::default()
        },
        17,
    );
    let a = d.graph.normalized_adjacency();
    let part = partition_rows(&d.graph, &a, Method::Hp, P, 0.1, 1);
    let config = GcnConfig::two_layer(16, 16, 4);
    let batches = sample_batches(&d.graph, Sampler::UniformVertex { batch_size }, count, 23);
    Fixture {
        graph: d.graph,
        h0: d.features,
        labels: d.labels,
        mask: d.train_mask,
        part,
        config,
        batches,
        // One worker thread per rank: the comparison targets the session
        // and plan machinery, not kernel parallelism, and a fixed thread
        // count keeps the two paths' compute identical.
        spec: ComputeSpec {
            threads: Some(1),
            kernel: None,
        },
    }
}

fn run_group(c: &mut Criterion, name: &str, batch_size: usize, count: usize) {
    let f = fixture(batch_size, count);
    let mut group = c.benchmark_group(name);
    group.sample_size(10);
    group.throughput(Throughput::Elements(f.batches.len() as u64));

    group.bench_function(BenchmarkId::new("spawn", P), |b| {
        b.iter(|| {
            minibatch::train_spec(
                &f.graph, &f.h0, &f.labels, &f.mask, &f.part, &f.config, &f.batches, 5, f.spec,
            )
        })
    });

    group.bench_function(BenchmarkId::new("persistent", P), |b| {
        b.iter(|| {
            minibatch::train_spec_persistent(
                &f.graph, &f.h0, &f.labels, &f.mask, &f.part, &f.config, &f.batches, 5, f.spec,
            )
        })
    });

    let mut engine = MinibatchEngine::new(
        &f.graph, &f.h0, &f.labels, &f.mask, &f.part, &f.config, 5, f.spec,
    );
    engine.train(&f.batches); // grow pools/workspaces to the high-water mark
    group.bench_function(BenchmarkId::new("steady", P), |b| {
        b.iter(|| engine.train(&f.batches))
    });

    group.finish();
}

/// Small batches: fixed per-batch cost (spawn, plan, allocation)
/// dominates — the engine's target regime and the acceptance figure.
fn bench_small_batches(c: &mut Criterion) {
    run_group(c, "minibatch_small_b48", 48, 16);
}

/// Large batches: per-batch compute amortizes the fixed cost, bounding
/// how much the engine can win; included so the gain is reported
/// honestly across regimes.
fn bench_large_batches(c: &mut Criterion) {
    run_group(c, "minibatch_large_b400", 400, 6);
}

criterion_group!(benches, bench_small_batches, bench_large_batches);
criterion_main!(benches);
