//! Criterion microbenchmarks for the matrix kernels driving GCN training:
//! SpMM (the convolution), DMM (parameter application), the `Xₘₙ ⊗ H` row
//! gather (message assembly), adjacency normalization, and the pooled
//! (multithreaded) kernel variants at 1/2/4 threads plus the bare pool
//! dispatch overhead.

use pargcn_graph::gen::{grid, rmat};
use pargcn_matrix::{gather, norm, ComputeCtx, Dense, KernelKind};
use pargcn_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pargcn_util::pool::Pool;
use pargcn_util::rng::SeedableRng;
use pargcn_util::rng::StdRng;

/// Thread counts exercised by the `_pool` kernel benchmarks. The `t = 1`
/// rows measure the pooled entry points' serial fallback, so the gap to
/// the plain kernels is the dispatch overhead, not the algorithm.
const THREADS: [usize; 3] = [1, 2, 4];

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm");
    for (name, graph) in [
        ("road_10k", grid::road_network(10_000, 1)),
        ("rmat_10k", rmat::generate_sized(10_000, 8.0, false, 1)),
    ] {
        let a = graph.normalized_adjacency();
        for d in [16usize, 64] {
            let mut rng = StdRng::seed_from_u64(2);
            let h = Dense::random(a.n_cols(), d, &mut rng);
            group.throughput(Throughput::Elements((a.nnz() * d) as u64));
            group.bench_with_input(BenchmarkId::new(name, d), &d, |b, _| {
                b.iter(|| a.spmm(std::hint::black_box(&h)))
            });
        }
    }
    group.finish();
}

fn bench_dmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("dmm");
    let mut rng = StdRng::seed_from_u64(3);
    for (rows, k, n) in [(10_000usize, 32usize, 32usize), (10_000, 64, 16)] {
        let a = Dense::random(rows, k, &mut rng);
        let w = Dense::random(k, n, &mut rng);
        group.throughput(Throughput::Elements((rows * k * n) as u64));
        group.bench_function(format!("{rows}x{k}x{n}"), |b| {
            b.iter(|| a.matmul(std::hint::black_box(&w)))
        });
    }
    group.finish();
}

fn bench_gather(c: &mut Criterion) {
    let mut group = c.benchmark_group("gather_rows");
    let mut rng = StdRng::seed_from_u64(4);
    let h = Dense::random(100_000, 32, &mut rng);
    for frac in [10usize, 2] {
        let idx: Vec<u32> = (0..100_000u32).step_by(frac).collect();
        group.throughput(Throughput::Bytes((idx.len() * 32 * 4) as u64));
        group.bench_function(format!("every_{frac}th"), |b| {
            let mut buf = Vec::new();
            b.iter(|| gather::gather_rows_into(std::hint::black_box(&h), &idx, &mut buf))
        });
    }
    group.finish();
}

fn bench_normalize(c: &mut Criterion) {
    let g = rmat::generate_sized(20_000, 8.0, false, 5);
    c.bench_function("normalize_adjacency_20k", |b| {
        b.iter(|| norm::normalize_adjacency(std::hint::black_box(g.adjacency())))
    });
}

/// Threaded SpMM over the skewed RMAT graph — the kernel the nnz-weighted
/// chunking exists for. Same shapes as `bench_spmm` so the speedup is
/// directly readable across groups.
fn bench_spmm_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm_threads");
    let graph = rmat::generate_sized(10_000, 8.0, false, 1);
    let a = graph.normalized_adjacency();
    let d = 64usize;
    let mut rng = StdRng::seed_from_u64(2);
    let h = Dense::random(a.n_cols(), d, &mut rng);
    group.throughput(Throughput::Elements((a.nnz() * d) as u64));
    for t in THREADS {
        let pool = Pool::new(t);
        group.bench_with_input(BenchmarkId::new("rmat_10k_d64", t), &t, |b, _| {
            b.iter(|| a.spmm_pool(std::hint::black_box(&h), &pool))
        });
    }
    group.finish();
}

/// Threaded DMM (forward `H·W`) and its backward transposed forms
/// (`AᵀB` for `ΔW`, `G·Wᵀ` for the input gradient).
fn bench_dmm_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("dmm_threads");
    let mut rng = StdRng::seed_from_u64(3);
    let (rows, k, n) = (10_000usize, 64usize, 16usize);
    let a = Dense::random(rows, k, &mut rng);
    let w = Dense::random(k, n, &mut rng);
    let g = Dense::random(rows, n, &mut rng);
    group.throughput(Throughput::Elements((rows * k * n) as u64));
    for t in THREADS {
        let pool = Pool::new(t);
        group.bench_with_input(BenchmarkId::new("matmul_10000x64x16", t), &t, |b, _| {
            b.iter(|| a.matmul_pool(std::hint::black_box(&w), &pool))
        });
        group.bench_with_input(BenchmarkId::new("matmul_at_10000x64x16", t), &t, |b, _| {
            b.iter(|| a.matmul_at_pool(std::hint::black_box(&g), &pool))
        });
        group.bench_with_input(BenchmarkId::new("matmul_bt_10000x16x64", t), &t, |b, _| {
            b.iter(|| g.matmul_bt_pool(std::hint::black_box(&w), &pool))
        });
    }
    group.finish();
}

/// Bare pool dispatch cost: post-to-workers + latch wait with an empty
/// body, versus the same trip count inline. This is the fixed price every
/// pooled kernel pays, and what `MIN_PARALLEL_WORK` amortizes away.
fn bench_pool_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_overhead");
    for t in THREADS {
        let pool = Pool::new(t);
        group.bench_with_input(BenchmarkId::new("empty_run", t), &t, |b, &t| {
            b.iter(|| pool.run(std::hint::black_box(t), |_| {}))
        });
    }
    group.bench_function("inline_loop_4", |b| {
        b.iter(|| {
            for i in 0..4usize {
                std::hint::black_box(i);
            }
        })
    });
    group.finish();
}

/// Naive vs blocked kernel engine head-to-head on GCN-typical skinny
/// shapes (`n × {16,64,128}` features), single thread — the single-core
/// arithmetic headroom the blocked engine exists for. Throughput is in
/// multiply-add elements, so `elements_per_s × 2 = FLOP/s` and the
/// naive/blocked ratio reads off directly at equal shapes. Results are
/// bitwise identical between engines (determinism suite), so this is a
/// pure speed comparison. Baseline: `results/kernels_blocked.json`.
fn bench_kernel_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_engine");
    let engines = [
        ("naive", ComputeCtx::serial().with_kernel(KernelKind::Naive)),
        (
            "blocked",
            ComputeCtx::serial().with_kernel(KernelKind::Blocked),
        ),
    ];
    let mut rng = StdRng::seed_from_u64(6);

    // Forward DMM H·W: tall-skinny × small square.
    let n = 8192usize;
    for d in [16usize, 64, 128] {
        let h = Dense::random(n, d, &mut rng);
        let w = Dense::random(d, d, &mut rng);
        group.throughput(Throughput::Elements((n * d * d) as u64));
        for (name, cctx) in &engines {
            group.bench_with_input(
                BenchmarkId::new(format!("gemm_{name}"), format!("{n}x{d}x{d}")),
                &d,
                |b, _| b.iter(|| cctx.matmul(std::hint::black_box(&h), &w)),
            );
        }
    }

    // Backward twins at the widest GCN shape: ΔW = HᵀG and S = G·Wᵀ.
    let d = 64usize;
    let h = Dense::random(n, d, &mut rng);
    let g = Dense::random(n, d, &mut rng);
    let w = Dense::random(d, d, &mut rng);
    group.throughput(Throughput::Elements((n * d * d) as u64));
    for (name, cctx) in &engines {
        group.bench_with_input(
            BenchmarkId::new(format!("gemm_at_{name}"), format!("{n}x{d}x{d}")),
            &d,
            |b, _| b.iter(|| cctx.matmul_at(std::hint::black_box(&h), &g)),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("gemm_bt_{name}"), format!("{n}x{d}x{d}")),
            &d,
            |b, _| b.iter(|| cctx.matmul_bt(std::hint::black_box(&g), &w)),
        );
    }

    // SpMM Â·H on the skewed RMAT graph across the same feature widths.
    let graph = rmat::generate_sized(10_000, 8.0, false, 1);
    let a = graph.normalized_adjacency();
    for d in [16usize, 64, 128] {
        let h = Dense::random(a.n_cols(), d, &mut rng);
        group.throughput(Throughput::Elements((a.nnz() * d) as u64));
        for (name, cctx) in &engines {
            group.bench_with_input(
                BenchmarkId::new(format!("spmm_{name}"), format!("rmat_10k_{d}")),
                &d,
                |b, _| b.iter(|| cctx.spmm(std::hint::black_box(&a), &h)),
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_spmm,
    bench_dmm,
    bench_gather,
    bench_normalize,
    bench_spmm_threads,
    bench_dmm_threads,
    bench_pool_overhead,
    bench_kernel_engine
);
criterion_main!(benches);
