//! Criterion microbenchmarks for the matrix kernels driving GCN training:
//! SpMM (the convolution), DMM (parameter application), the `Xₘₙ ⊗ H` row
//! gather (message assembly), and adjacency normalization.

use pargcn_graph::gen::{grid, rmat};
use pargcn_matrix::{gather, norm, Dense};
use pargcn_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pargcn_util::rng::SeedableRng;
use pargcn_util::rng::StdRng;

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm");
    for (name, graph) in [
        ("road_10k", grid::road_network(10_000, 1)),
        ("rmat_10k", rmat::generate_sized(10_000, 8.0, false, 1)),
    ] {
        let a = graph.normalized_adjacency();
        for d in [16usize, 64] {
            let mut rng = StdRng::seed_from_u64(2);
            let h = Dense::random(a.n_cols(), d, &mut rng);
            group.throughput(Throughput::Elements((a.nnz() * d) as u64));
            group.bench_with_input(BenchmarkId::new(name, d), &d, |b, _| {
                b.iter(|| a.spmm(std::hint::black_box(&h)))
            });
        }
    }
    group.finish();
}

fn bench_dmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("dmm");
    let mut rng = StdRng::seed_from_u64(3);
    for (rows, k, n) in [(10_000usize, 32usize, 32usize), (10_000, 64, 16)] {
        let a = Dense::random(rows, k, &mut rng);
        let w = Dense::random(k, n, &mut rng);
        group.throughput(Throughput::Elements((rows * k * n) as u64));
        group.bench_function(format!("{rows}x{k}x{n}"), |b| {
            b.iter(|| a.matmul(std::hint::black_box(&w)))
        });
    }
    group.finish();
}

fn bench_gather(c: &mut Criterion) {
    let mut group = c.benchmark_group("gather_rows");
    let mut rng = StdRng::seed_from_u64(4);
    let h = Dense::random(100_000, 32, &mut rng);
    for frac in [10usize, 2] {
        let idx: Vec<u32> = (0..100_000u32).step_by(frac).collect();
        group.throughput(Throughput::Bytes((idx.len() * 32 * 4) as u64));
        group.bench_function(format!("every_{frac}th"), |b| {
            let mut buf = Vec::new();
            b.iter(|| gather::gather_rows_into(std::hint::black_box(&h), &idx, &mut buf))
        });
    }
    group.finish();
}

fn bench_normalize(c: &mut Criterion) {
    let g = rmat::generate_sized(20_000, 8.0, false, 5);
    c.bench_function("normalize_adjacency_20k", |b| {
        b.iter(|| norm::normalize_adjacency(std::hint::black_box(g.adjacency())))
    });
}

criterion_group!(
    benches,
    bench_spmm,
    bench_dmm,
    bench_gather,
    bench_normalize
);
criterion_main!(benches);
