//! Criterion benchmarks for the partitioning substrate: RP, GP (mini-METIS),
//! HP (mini-PaToH), SHP, and comm-plan construction.

use pargcn_core::CommPlan;
use pargcn_graph::gen::{community, grid};
use pargcn_partition::stochastic::Sampler;
use pargcn_partition::{partition_rows, Method};
use pargcn_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_10k");
    group.sample_size(10);
    let g = grid::road_network(10_000, 1);
    let a = g.normalized_adjacency();
    for method in [
        Method::Rp,
        Method::Gp,
        Method::Hp,
        Method::Shp {
            sampler: Sampler::UniformVertex { batch_size: 1000 },
            batches: 4,
        },
    ] {
        group.bench_with_input(BenchmarkId::new("road", method.name()), &method, |b, &m| {
            b.iter(|| partition_rows(&g, &a, m, 16, 0.05, 1))
        });
    }
    group.finish();
}

fn bench_graph_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("hp_by_family");
    group.sample_size(10);
    for (name, g) in [
        ("road_8k", grid::road_network(8000, 2)),
        ("copurchase_8k", community::copurchase(8000, 6.0, false, 2)),
    ] {
        let a = g.normalized_adjacency();
        group.bench_function(name, |b| {
            b.iter(|| partition_rows(&g, &a, Method::Hp, 16, 0.05, 1))
        });
    }
    group.finish();
}

fn bench_plan_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("comm_plan_build");
    group.sample_size(10);
    let g = grid::road_network(20_000, 3);
    let a = g.normalized_adjacency();
    for p in [16usize, 64, 256] {
        let part = partition_rows(&g, &a, Method::Rp, p, 0.05, 1);
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            b.iter(|| CommPlan::build(std::hint::black_box(&a), &part))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_methods,
    bench_graph_families,
    bench_plan_build
);
criterion_main!(benches);
