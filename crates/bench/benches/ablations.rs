//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * multilevel pipeline components (coarsening on/off, FM passes) — both
//!   the partitioning *time* (criterion) and the achieved *cut quality*
//!   (printed once per configuration);
//! * comm/comp overlap on vs off in the cost model — the value of
//!   Algorithm 1's non-blocking sends.

use pargcn_comm::MachineProfile;
use pargcn_core::metrics::simulate_epoch;
use pargcn_core::{CommPlan, GcnConfig};
use pargcn_graph::gen::community;
use pargcn_partition::{hmultilevel, Hypergraph, Partition};
use pargcn_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn configs() -> Vec<(&'static str, hmultilevel::Options)> {
    vec![
        ("full", hmultilevel::Options::default()),
        (
            "no_coarsen",
            hmultilevel::Options {
                coarsen: false,
                ..Default::default()
            },
        ),
        (
            "no_fm",
            hmultilevel::Options {
                fm_passes_coarsest: 0,
                fm_passes_uncoarsen: 0,
                ..Default::default()
            },
        ),
        (
            "fm1",
            hmultilevel::Options {
                fm_passes_coarsest: 1,
                fm_passes_uncoarsen: 1,
                ..Default::default()
            },
        ),
    ]
}

fn bench_pipeline_ablation(c: &mut Criterion) {
    let g = community::copurchase(6000, 6.0, false, 1);
    let a = g.normalized_adjacency();
    let h = Hypergraph::column_net_model(&a);
    let mut group = c.benchmark_group("hp_pipeline_ablation");
    group.sample_size(10);
    for (name, opts) in configs() {
        // Report the cut once, so quality and speed can be traded visibly.
        let part = hmultilevel::partition_with(&h, 16, 0.05, 1, opts);
        eprintln!(
            "ablation {name}: connectivity-1 cut = {}, imbalance = {:.4}",
            h.connectivity_cut(&part),
            part.imbalance(h.vertex_weights())
        );
        group.bench_with_input(BenchmarkId::from_parameter(name), &opts, |b, &o| {
            b.iter(|| hmultilevel::partition_with(&h, 16, 0.05, 1, o))
        });
    }
    group.finish();
}

fn bench_overlap_ablation(c: &mut Criterion) {
    // Not a timing benchmark of our code but of the modeled epoch — measure
    // the model evaluation itself and print the overlap-on/off epoch times.
    let g = community::copurchase(6000, 6.0, false, 2);
    let a = g.normalized_adjacency();
    let h = Hypergraph::column_net_model(&a);
    let part: Partition = hmultilevel::partition(&h, 64, 0.05, 1);
    let plan = CommPlan::build(&a, &part);
    let config = GcnConfig::two_layer(32, 32, 16);
    let on = MachineProfile::cpu_cluster();
    let off = MachineProfile {
        overlap: false,
        ..on
    };
    eprintln!(
        "overlap ablation: epoch with overlap = {:.6}s, without = {:.6}s",
        simulate_epoch(&plan, &plan, &config, &on).total,
        simulate_epoch(&plan, &plan, &config, &off).total,
    );
    c.bench_function("simulate_epoch_eval", |b| {
        b.iter(|| simulate_epoch(&plan, &plan, &config, std::hint::black_box(&on)))
    });
}

criterion_group!(benches, bench_pipeline_ablation, bench_overlap_ablation);
criterion_main!(benches);
