//! Criterion benchmarks for end-to-end training steps: the serial oracle,
//! the distributed P2P trainer at several real rank counts, and the CAGNET
//! broadcast baseline — real threaded execution, not the cost model.

use pargcn_core::baselines::cagnet;
use pargcn_core::dist::train_full_batch;
use pargcn_core::serial::SerialTrainer;
use pargcn_core::GcnConfig;
use pargcn_graph::gen::community;
use pargcn_matrix::Dense;
use pargcn_partition::{partition_rows, Method};
use pargcn_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pargcn_util::rng::SeedableRng;
use pargcn_util::rng::StdRng;

fn setup() -> (pargcn_graph::Graph, Dense, Vec<u32>, Vec<bool>, GcnConfig) {
    let g = community::copurchase(4000, 6.0, false, 1);
    let mut rng = StdRng::seed_from_u64(2);
    let h0 = Dense::random(g.n(), 16, &mut rng);
    let labels: Vec<u32> = (0..g.n()).map(|i| (i % 4) as u32).collect();
    let mask = vec![true; g.n()];
    (g, h0, labels, mask, GcnConfig::two_layer(16, 16, 4))
}

fn bench_serial_epoch(c: &mut Criterion) {
    let (g, h0, labels, mask, config) = setup();
    c.bench_function("serial_epoch_4k", |b| {
        let mut t = SerialTrainer::new(&g, config.clone(), 1);
        b.iter(|| t.train_epoch(std::hint::black_box(&h0), &labels, &mask))
    });
}

fn bench_distributed_epoch(c: &mut Criterion) {
    let (g, h0, labels, mask, config) = setup();
    let a = g.normalized_adjacency();
    let mut group = c.benchmark_group("dist_epoch_4k");
    group.sample_size(10);
    for p in [2usize, 4, 8] {
        let part = partition_rows(&g, &a, Method::Hp, p, 0.05, 1);
        group.bench_with_input(BenchmarkId::new("hp", p), &p, |b, _| {
            b.iter(|| train_full_batch(&g, &h0, &labels, &mask, &part, &config, 1, 1))
        });
    }
    group.finish();
}

fn bench_cagnet_epoch(c: &mut Criterion) {
    let (g, h0, labels, mask, config) = setup();
    let a = g.normalized_adjacency();
    let part = partition_rows(&g, &a, Method::Hp, 4, 0.05, 1);
    let mut group = c.benchmark_group("cagnet_epoch_4k");
    group.sample_size(10);
    group.bench_function("p4", |b| {
        b.iter(|| cagnet::train_full_batch(&g, &h0, &labels, &mask, &part, &config, 1, 1))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_serial_epoch,
    bench_distributed_epoch,
    bench_cagnet_epoch
);
criterion_main!(benches);
