//! Mini-batch training with the stochastic hypergraph model (§4.3.3):
//! samples mini-batches, partitions with HP and with SHP, compares the
//! expected per-batch communication volume each induces, and trains with
//! mini-batch SGD under the SHP partition.
//!
//! ```text
//! cargo run --release -p pargcn-integration --example minibatch_shp
//! ```

use pargcn_core::minibatch;
use pargcn_core::GcnConfig;
use pargcn_graph::Dataset;
use pargcn_matrix::Dense;
use pargcn_partition::stochastic::{hoeffding_min_nets, sample_batches, Sampler};
use pargcn_partition::{partition_rows, Method, DEFAULT_EPSILON};
use pargcn_util::rng::SeedableRng;
use pargcn_util::rng::StdRng;

fn main() {
    let p = 8;
    let data = Dataset::ComAmazon.generate(pargcn_graph::Scale(32), 11);
    let n = data.graph.n();
    let batch_size = n / 16;
    let sampler = Sampler::UniformVertex { batch_size };
    println!(
        "{} at 1/32 scale: {} vertices; mini-batches of {} vertices on {} ranks\n",
        Dataset::ComAmazon.name(),
        n,
        batch_size,
        p
    );

    // Eq. 14: how many nets the stochastic hypergraph needs for a
    // θ-accurate expected-connectivity estimate at 1−δ confidence.
    println!(
        "Hoeffding bound (θ=0.1, δ=0.5): ≥ {} nets needed at p={p}",
        hoeffding_min_nets(p, 0.1, 0.5)
    );

    let a = data.graph.normalized_adjacency();
    let hp = partition_rows(&data.graph, &a, Method::Hp, p, DEFAULT_EPSILON, 2);
    let shp = partition_rows(
        &data.graph,
        &a,
        Method::Shp {
            sampler,
            batches: 500,
        },
        p,
        DEFAULT_EPSILON,
        2,
    );

    // Fresh evaluation batches, disjoint seed from SHP's construction set.
    let eval = sample_batches(&data.graph, sampler, 40, 999);
    let (hp_vol, _) = minibatch::expected_comm_volume(&data.graph, &eval, &hp);
    let (shp_vol, _) = minibatch::expected_comm_volume(&data.graph, &eval, &shp);
    println!(
        "expected per-batch volume over {} held-out batches:\n  HP : {:>8} rows\n  SHP: {:>8} rows  (HP/SHP = {:.3})\n",
        eval.len(),
        hp_vol,
        shp_vol,
        hp_vol as f64 / shp_vol.max(1) as f64
    );

    // Mini-batch training under the SHP partition.
    let mut rng = StdRng::seed_from_u64(4);
    let h0 = Dense::random(n, 16, &mut rng);
    let labels: Vec<u32> = (0..n).map(|i| (i % 4) as u32).collect();
    let mask = vec![true; n];
    let config = GcnConfig::two_layer(16, 16, 4);
    let train_batches = sample_batches(&data.graph, sampler, 30, 5);
    let out = minibatch::train(
        &data.graph,
        &h0,
        &labels,
        &mask,
        &shp,
        &config,
        &train_batches,
        6,
    );
    println!(
        "mini-batch training: {} steps, loss {:.4} → {:.4}, {} rows exchanged",
        out.losses.len(),
        out.losses.first().unwrap(),
        out.losses.last().unwrap(),
        out.total_volume_rows
    );
}
