//! Compares the four partitioning models (RP, GP, HP, SHP) on one graph:
//! exact point-to-point volume, message counts, model cut values, and the
//! graph model's systematic over-estimate (the paper's Figure 2 argument).
//!
//! ```text
//! cargo run --release -p pargcn-integration --example partition_comparison
//! ```

use pargcn_graph::Dataset;
use pargcn_partition::graph_model::WeightedGraph;
use pargcn_partition::stochastic::Sampler;
use pargcn_partition::{metrics, partition_rows, Hypergraph, Method, DEFAULT_EPSILON};

fn main() {
    let p = 16;
    let data = Dataset::ComAmazon.generate_default(3);
    let a = data.graph.normalized_adjacency();
    println!(
        "{} at 1/{} scale: {} vertices, {} adjacency nonzeros, {} parts\n",
        Dataset::ComAmazon.name(),
        Dataset::ComAmazon.default_scale().0,
        data.graph.n(),
        a.nnz(),
        p
    );

    let hypergraph = Hypergraph::column_net_model(&a);
    let graph_model = WeightedGraph::graph_model(&a);

    println!(
        "{:<6} {:>12} {:>10} {:>12} {:>14} {:>12}",
        "Method", "true volume", "messages", "imbalance", "hgraph cut", "2x graph cut"
    );
    for method in [
        Method::Rp,
        Method::Gp,
        Method::Hp,
        Method::Shp {
            sampler: Sampler::UniformVertex {
                batch_size: data.graph.n() / 16,
            },
            batches: 8,
        },
    ] {
        let part = partition_rows(&data.graph, &a, method, p, DEFAULT_EPSILON, 1);
        let stats = metrics::spmm_comm_stats(&a, &part);
        let hcut = hypergraph.connectivity_cut(&part);
        let gcut_estimate = 2 * graph_model.edge_cut(&part);
        println!(
            "{:<6} {:>12} {:>10} {:>12.4} {:>14} {:>12}",
            method.name(),
            stats.total_rows,
            stats.total_messages,
            part.imbalance(hypergraph.vertex_weights()),
            hcut,
            gcut_estimate
        );
        // §4.3.2: the hypergraph cut *is* the volume; §4.3.1: the graph
        // model's estimate is an upper bound.
        assert_eq!(hcut, stats.total_rows);
        assert!(gcut_estimate >= stats.total_rows);
    }
    println!(
        "\nThe hypergraph cut always equals the true volume; the graph model\n\
         over-estimates it (reciprocal edges + co-located neighbors),\n\
         which is why HP optimizes the right objective and GP does not."
    );
}
