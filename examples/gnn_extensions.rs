//! §4.4 of the paper claims the partitioning method and communication
//! scheme carry over to other GNN models unchanged. This example runs the
//! two case studies the repository implements on one dataset and one
//! hypergraph partition:
//!
//! * **SGC** (Wu et al., the paper's [58]): K propagation sweeps over the
//!   GCN comm plan, then *communication-free* training epochs;
//! * **GAT** (Veličković et al., the paper's [55]): transform-then-
//!   aggregate with attention — the exchange carries transformed rows over
//!   the *same* plan, and the attention math is purely local.
//!
//! ```text
//! cargo run --release -p pargcn-integration --example gnn_extensions
//! ```

use pargcn_core::gat::{self, GatLayer};
use pargcn_core::loss::accuracy;
use pargcn_core::{sgc, CommPlan};
use pargcn_graph::Dataset;
use pargcn_partition::{partition_rows, Method, DEFAULT_EPSILON};

fn main() {
    let data = Dataset::Cora.generate_default(7);
    let features = data.features.expect("labelled dataset");
    let labels = data.labels.expect("labelled dataset");
    let train_mask = data.train_mask.expect("labelled dataset");
    let test_mask: Vec<bool> = train_mask.iter().map(|&m| !m).collect();
    let p = 4;

    let a = data.graph.normalized_adjacency();
    let part = partition_rows(&data.graph, &a, Method::Hp, p, DEFAULT_EPSILON, 7);
    let plan = CommPlan::build(&a, &part);
    println!(
        "graph: {} vertices; HP partition on {p} ranks; plan volume {} rows/sweep\n",
        data.graph.n(),
        plan.total_volume_rows()
    );

    // --- SGC: K = 2 hops, then logistic regression. --------------------
    let out = sgc::train_distributed(
        &data.graph,
        &features,
        2,
        7,
        &labels,
        &train_mask,
        &part,
        60,
        0.5,
        1,
    );
    let sgc_acc = accuracy(&out.predictions, &labels, &test_mask);
    let p2p: u64 = out.counters.iter().map(|c| c.sent_bytes).sum();
    println!(
        "SGC : test accuracy {sgc_acc:.3}; total P2P traffic {:.2} KiB \
         (2 propagation sweeps only — 60 epochs added zero bytes)",
        p2p as f64 / 1024.0
    );
    let expected = plan.total_volume_rows() * features.cols() as u64 * 4 * 2;
    assert_eq!(p2p, expected, "SGC traffic must be exactly 2 plan sweeps");

    // --- GAT: 2 attention layers, forward pass. -------------------------
    let layers = vec![
        GatLayer::init(features.cols(), 16, 1),
        GatLayer::init(16, 7, 2),
    ];
    let serial = gat::forward_serial_multi(&data.graph, &features, &layers);
    let (dist, counters) = gat::forward_distributed(&data.graph, &features, &layers, &part);
    let gat_bytes: u64 = counters.iter().map(|c| c.sent_bytes).sum();
    println!(
        "GAT : distributed forward matches serial to {:.1e}; traffic {:.2} KiB \
         over the identical plan (rows now carry transformed features)",
        dist.max_abs_diff(&serial),
        gat_bytes as f64 / 1024.0
    );
    assert!(dist.approx_eq(&serial, 2e-3));
    println!("\nSame partition, same send/receive sets, three different GNNs.");
}
