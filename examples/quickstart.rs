//! Quickstart: train a 2-layer GCN on a Cora-like citation graph, first
//! serially, then distributed over 4 ranks with hypergraph partitioning,
//! and confirm both reach the same accuracy.
//!
//! ```text
//! cargo run --release -p pargcn-integration --example quickstart
//! ```

use pargcn_core::dist::train_full_batch;
use pargcn_core::loss::accuracy;
use pargcn_core::serial::SerialTrainer;
use pargcn_core::GcnConfig;
use pargcn_graph::Dataset;
use pargcn_partition::{partition_rows, Method, DEFAULT_EPSILON};

fn main() {
    // 1. A labelled dataset: the Cora-class planted-partition generator
    //    (2708 vertices, 7 classes, class-correlated features).
    let data = Dataset::Cora.generate_default(7);
    let features = data.features.expect("Cora is labelled");
    let labels = data.labels.expect("Cora is labelled");
    let train_mask = data.train_mask.expect("Cora has a split");
    let test_mask: Vec<bool> = train_mask.iter().map(|&m| !m).collect();
    println!(
        "graph: {} vertices, {} edges, avg degree {:.1}",
        data.graph.n(),
        data.graph.num_edges(),
        data.graph.degree_stats().avg
    );

    // 2. A 2-layer GCN: features → 16 hidden (ReLU) → 7 classes (softmax).
    let config = GcnConfig::two_layer(features.cols(), 16, 7);
    let epochs = 30;

    // 3. Serial training (the single-node baseline).
    let mut serial = SerialTrainer::new(&data.graph, config.clone(), 1);
    for epoch in 0..epochs {
        let loss = serial.train_epoch(&features, &labels, &train_mask);
        if epoch % 10 == 0 {
            println!("serial epoch {epoch:>2}: loss {loss:.4}");
        }
    }
    let serial_acc = accuracy(&serial.predict(&features), &labels, &test_mask);
    println!("serial test accuracy: {serial_acc:.3}");

    // 4. Distributed training: hypergraph-partition the rows onto 4 ranks
    //    (threads standing in for MPI processes) and train with
    //    non-blocking point-to-point communication (paper Algorithms 1–2).
    let a = data.graph.normalized_adjacency();
    let part = partition_rows(&data.graph, &a, Method::Hp, 4, DEFAULT_EPSILON, 7);
    let out = train_full_batch(
        &data.graph,
        &features,
        &labels,
        &train_mask,
        &part,
        &config,
        epochs,
        1, // same parameter seed as the serial run
    );
    let dist_acc = accuracy(&out.predictions, &labels, &test_mask);
    println!("distributed (p=4, HP) test accuracy: {dist_acc:.3}");

    // 5. The algorithm is exact: same losses, same predictions.
    let sent: u64 = out.counters.iter().map(|c| c.sent_bytes).sum();
    println!(
        "total point-to-point traffic: {:.2} MiB over {} messages",
        sent as f64 / (1 << 20) as f64,
        out.counters.iter().map(|c| c.sent_messages).sum::<u64>()
    );
    assert!(
        (serial_acc - dist_acc).abs() < 0.02,
        "parallel training must not change accuracy"
    );
    println!("OK: distributed training matches serial training.");
}
