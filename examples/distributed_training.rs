//! Distributed full-batch training walkthrough on a road network: shows the
//! per-rank communication the plan predicts, runs real multi-threaded
//! training, verifies the runtime counters match the prediction exactly,
//! and contrasts the P2P algorithm with the CAGNET broadcast baseline.
//!
//! ```text
//! cargo run --release -p pargcn-integration --example distributed_training
//! ```

use pargcn_core::baselines::cagnet;
use pargcn_core::dist::train_full_batch;
use pargcn_core::{CommPlan, GcnConfig};
use pargcn_graph::Dataset;
use pargcn_matrix::Dense;
use pargcn_partition::{partition_rows, Method, DEFAULT_EPSILON};
use pargcn_util::rng::SeedableRng;
use pargcn_util::rng::StdRng;

fn main() {
    let p = 8;
    let epochs = 5;
    let data = Dataset::RoadNetCa.generate(pargcn_graph::Scale(64), 5);
    let a = data.graph.normalized_adjacency();
    let config = GcnConfig::two_layer(32, 32, 8);
    println!(
        "{} at 1/64 scale: {} vertices, {} nonzeros, {} ranks, {} epochs\n",
        Dataset::RoadNetCa.name(),
        data.graph.n(),
        a.nnz(),
        p,
        epochs
    );

    // Partition with the hypergraph model and inspect the plan (Eqs. 8–9).
    let part = partition_rows(&data.graph, &a, Method::Hp, p, DEFAULT_EPSILON, 5);
    let plan = CommPlan::build(&a, &part);
    println!(
        "{:<6} {:>8} {:>12} {:>10} {:>10}",
        "rank", "rows", "local nnz", "sends", "recvs"
    );
    for rp in &plan.ranks {
        println!(
            "{:<6} {:>8} {:>12} {:>10} {:>10}",
            rp.rank,
            rp.n_local(),
            rp.a_own.nnz(),
            format!("{}→{}", rp.send.len(), rp.sent_rows()),
            format!("{}←{}", rp.a_remote.len(), rp.recv_rows()),
        );
    }
    println!(
        "\nplan: {} rows exchanged per SpMM sweep over {} messages\n",
        plan.total_volume_rows(),
        plan.total_messages()
    );

    // Random features/labels (the paper's Table 2 methodology).
    let mut rng = StdRng::seed_from_u64(9);
    let h0 = Dense::random(data.graph.n(), 32, &mut rng);
    let labels: Vec<u32> = (0..data.graph.n()).map(|i| (i % 8) as u32).collect();
    let mask = vec![true; data.graph.n()];

    let out = train_full_batch(&data.graph, &h0, &labels, &mask, &part, &config, epochs, 3);
    println!(
        "losses: {:?}",
        out.losses
            .iter()
            .map(|l| (l * 1e3).round() / 1e3)
            .collect::<Vec<_>>()
    );
    println!(
        "parallel wall time (slowest rank): {:.3}s",
        out.wall_seconds()
    );

    // The runtime counters must equal the plan's static prediction:
    // per epoch each layer sweeps once forward (d_in-wide) + once backward.
    let measured: u64 = out.counters.iter().map(|c| c.sent_bytes).sum();
    let vol = plan.total_volume_rows();
    let expected = (epochs as u64) * vol * 4 * ((32 + 32) + (32 + 8)) + vol * 4 * (32 + 32);
    assert_eq!(measured, expected, "runtime counters must match the plan");
    println!("runtime counters match the comm plan exactly ({measured} bytes).");

    // CAGNET moves every row to every rank each layer — count the difference.
    let bc = cagnet::train_full_batch(&data.graph, &h0, &labels, &mask, &part, &config, epochs, 3);
    let bc_bytes: u64 = bc.counters.iter().map(|c| c.collective_bytes).sum();
    println!(
        "\nbroadcast baseline traffic: {:.2} MiB vs P2P {:.2} MiB ({}x reduction)",
        bc_bytes as f64 / (1 << 20) as f64,
        measured as f64 / (1 << 20) as f64,
        (bc_bytes / measured.max(1)).max(1)
    );
    assert!(
        out.predictions.approx_eq(&bc.predictions, 1e-2),
        "both algorithms compute the same model"
    );
    println!("P2P and broadcast algorithms agree on the trained model.");
}
