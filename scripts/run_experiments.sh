#!/usr/bin/env bash
# Regenerates every table and figure of the paper into results/.
# Full mode takes tens of minutes (multilevel partitioning of all eight
# Table 2 datasets at P = 512); pass --quick for a CI-sized run.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results

EXTRA="${1:-}"

run() {
    local bin="$1"; shift
    echo "=== $bin $* ==="
    cargo run --release -q -p pargcn-bench --bin "$bin" -- "$@" $EXTRA \
        | tee "results/${bin}$(echo "$*" | tr ' /' '__').txt"
}

# Microbenchmark harness runs. The harness prints its stats to stderr
# (stdout stays clean for piping), so the provenance capture must merge
# the streams — a bare `| tee` records an empty file.
bench() {
    local name="$1"; shift
    echo "=== bench $name $* ==="
    cargo bench -q --offline --locked -p pargcn-bench --bench "$name" -- "$@" $EXTRA 2>&1 \
        | tee "results/${name}$(echo "$*" | tr ' /' '__').txt"
}

run table1_datasets --json results/table1.json
run table2_comm_costs --json results/table2.json
run table2_comm_costs --granularity-matched --json results/table2_matched.json
run fig3_strong_scaling --machine cpu --json results/fig3_cpu.json
run fig3_strong_scaling --machine gpu --json results/fig3_gpu.json
run fig4a_breakdown --json results/fig4a.json
run fig4b_deeper --json results/fig4b.json
run fig4c_accuracy --json results/fig4c.json
run fig5_shp --json results/fig5.json
run table3_billion --json results/table3.json
run table4_sota --json results/table4.json
bench comm --json results/comm_bench.json
bench minibatch --json results/minibatch_engine.json
bench kernels --quick --json results/kernels_threads.json
bench kernels --json results/kernels_blocked.json kernel_engine
echo "all experiments written to results/"
