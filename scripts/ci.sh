#!/usr/bin/env sh
# Local mirror of .github/workflows/ci.yml: the same four checks, in the
# same modes, so "scripts/ci.sh passes" means "CI will pass". Exits
# non-zero on the first failure.
#
# The workspace is dependency-free by design (see crates/util), so every
# step runs with --offline: no registry, no network, no surprises.

set -eu

cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --offline --locked
run cargo test -q --offline --locked
run cargo fmt --check
run cargo clippy --workspace --all-targets --offline --locked -- -D warnings

echo "==> all checks passed"
