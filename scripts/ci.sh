#!/usr/bin/env sh
# Local mirror of .github/workflows/ci.yml: the same checks, in the
# same modes, so "scripts/ci.sh passes" means "CI will pass". Exits
# non-zero on the first failure.
#
# The workspace is dependency-free by design (see crates/util), so every
# step runs with --offline: no registry, no network, no surprises.

set -eu

cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --offline --locked
# The whole suite twice: serial kernels, then 4 pool threads per rank.
# Every result is bitwise thread-count-independent, so both must pass
# identically (see the determinism_threads suites).
run env PARGCN_THREADS=1 cargo test -q --offline --locked
run env PARGCN_THREADS=4 cargo test -q --offline --locked
# Kernel-engine parity: the bitwise-determinism suites and the
# allocation contract must hold under both compute engines
# (PARGCN_KERNEL selects naive vs blocked GEMM/SpMM; every result is
# bitwise engine-independent — DESIGN.md §10).
for kernel in naive blocked; do
    run env PARGCN_KERNEL=$kernel \
        cargo test -q --offline --locked -p pargcn-matrix \
        --test determinism_threads --test kernel_engine
    run env PARGCN_KERNEL=$kernel \
        cargo test -q --offline --locked -p pargcn-core \
        --test determinism_threads --test no_alloc_steady_state \
        --test minibatch_engine
done
# Smoke-run the communication and kernel-engine microbenchmarks (a few
# samples each) so the bench harnesses can't rot between perf sessions.
run cargo bench -q --offline --locked -p pargcn-bench --bench comm -- --quick
run cargo bench -q --offline --locked -p pargcn-bench --bench kernels -- --quick kernel_engine
run cargo bench -q --offline --locked -p pargcn-bench --bench minibatch -- --quick
run cargo fmt --check
run cargo clippy --workspace --all-targets --offline --locked -- -D warnings

echo "==> all checks passed"
