#!/usr/bin/env sh
# Local mirror of .github/workflows/ci.yml: the same checks, in the
# same modes, so "scripts/ci.sh passes" means "CI will pass". Exits
# non-zero on the first failure.
#
# The workspace is dependency-free by design (see crates/util), so every
# step runs with --offline: no registry, no network, no surprises.

set -eu

cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --offline --locked
# The whole suite twice: serial kernels, then 4 pool threads per rank.
# Every result is bitwise thread-count-independent, so both must pass
# identically (see the determinism_threads suites).
run env PARGCN_THREADS=1 cargo test -q --offline --locked
run env PARGCN_THREADS=4 cargo test -q --offline --locked
# The allocation contract: steady-state epochs must do zero comm-path
# heap allocations (counting global allocator; see crates/core/tests).
# Part of the suite above, but run by name so a regression is loud.
run cargo test -q --offline --locked -p pargcn-core --test no_alloc_steady_state
# Smoke-run the communication microbenchmarks (one sample each) so the
# bench harness itself can't rot between perf sessions.
run cargo bench -q --offline --locked -p pargcn-bench --bench comm -- --quick
run cargo fmt --check
run cargo clippy --workspace --all-targets --offline --locked -- -D warnings

echo "==> all checks passed"
